"""GA-HITEC: hybrid deterministic/genetic sequential-circuit test generation.

A from-scratch reproduction of E. M. Rudnick and J. H. Patel, *"Combining
Deterministic and Genetic Approaches for Sequential Circuit Test
Generation"*, DAC 1995.  The package provides every substrate the paper's
system needs:

* :mod:`repro.circuit` — gate-level netlists, ISCAS89 ``.bench`` I/O;
* :mod:`repro.rtl` — word-level construction ("synthesis") of circuits;
* :mod:`repro.simulation` — bit-parallel 3-valued logic simulation and a
  PROOFS-style sequential fault simulator;
* :mod:`repro.faults` — single stuck-at fault model and collapsing;
* :mod:`repro.atpg` — PODEM over unrolled time frames, deterministic
  excitation/propagation, reverse-time state justification (HITEC-style);
* :mod:`repro.ga` — the simple GA and genetic state justification;
* :mod:`repro.hybrid` — the multi-pass GA-HITEC driver and its HITEC
  baseline (the paper's Table I schedule);
* :mod:`repro.campaign` — durable, resumable, multi-process campaign
  orchestration over many circuits' fault lists;
* :mod:`repro.circuits` — benchmark circuits (embedded s27, ISCAS89
  stand-ins, and the paper's four synthesised designs);
* :mod:`repro.analysis` — coverage reports and paper-style tables.

Quickstart::

    from repro import gahitec, gahitec_schedule, s27

    driver = gahitec(s27(), seed=1)
    result = driver.run(gahitec_schedule(x=12, time_scale=None))
    print(result.summary())
"""

from .circuit import (
    Circuit,
    CircuitError,
    Gate,
    GateType,
    insert_scan,
    load_bench,
    load_verilog,
    parse_bench,
    parse_verilog,
    save_bench,
    save_verilog,
    sweep,
    write_bench,
    write_verilog,
)
from .faults import Fault, collapse_faults, full_fault_list
from .simulation import (
    FaultSimulator,
    FrameSimulator,
    available_backends,
    fault_coverage,
    make_simulator,
)
from .atpg import (
    InputConstraints,
    Limits,
    PodemEngine,
    ScanAtpgParams,
    ScanTestGenerator,
    SequentialTestGenerator,
    TestGenStatus,
    justify_state,
)
from .ga import (
    GAAtpgParams,
    GAJustifyParams,
    GAParams,
    GASimulationTestGenerator,
    GAStateJustifier,
    GeneticAlgorithm,
)
from .baselines import (
    RandomAtpgParams,
    RandomTestGenerator,
    WeightedRandomTestGenerator,
)
from .hybrid import (
    HybridTestGenerator,
    PassConfig,
    RunResult,
    gahitec,
    gahitec_schedule,
    hitec_baseline,
    hitec_schedule,
)
from .telemetry import (
    RunReport,
    TelemetryRecorder,
    diff_reports,
    render_diff,
    validate_report,
)
from .rtl import RtlBuilder
from .circuits import (
    am2910,
    div16,
    iscas89,
    mult16,
    pcont2,
    s27,
    synthetic_sequential,
)
from .campaign import (
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
)
from .analysis import (
    FaultDictionary,
    TestProgram,
    build_test_program,
    compact_test_set,
    evaluate_test_set,
    random_baseline,
    render_table,
    seed_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "FaultDictionary",
    "GAAtpgParams",
    "GASimulationTestGenerator",
    "InputConstraints",
    "RandomAtpgParams",
    "RandomTestGenerator",
    "ScanAtpgParams",
    "ScanTestGenerator",
    "TestProgram",
    "WeightedRandomTestGenerator",
    "build_test_program",
    "compact_test_set",
    "insert_scan",
    "load_verilog",
    "parse_verilog",
    "save_verilog",
    "seed_sweep",
    "write_verilog",
    "CircuitError",
    "Fault",
    "FaultSimulator",
    "FrameSimulator",
    "GAJustifyParams",
    "GAParams",
    "GAStateJustifier",
    "Gate",
    "GateType",
    "GeneticAlgorithm",
    "HybridTestGenerator",
    "Limits",
    "PassConfig",
    "PodemEngine",
    "RtlBuilder",
    "RunReport",
    "RunResult",
    "SequentialTestGenerator",
    "TelemetryRecorder",
    "diff_reports",
    "render_diff",
    "validate_report",
    "TestGenStatus",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "am2910",
    "collapse_faults",
    "div16",
    "evaluate_test_set",
    "available_backends",
    "fault_coverage",
    "make_simulator",
    "full_fault_list",
    "gahitec",
    "gahitec_schedule",
    "hitec_baseline",
    "hitec_schedule",
    "iscas89",
    "justify_state",
    "load_bench",
    "mult16",
    "parse_bench",
    "pcont2",
    "random_baseline",
    "render_table",
    "s27",
    "save_bench",
    "sweep",
    "synthetic_sequential",
    "write_bench",
    "__version__",
]
