"""Result records for multi-pass test generation runs.

Mirrors the paper's Table II/III columns: after each pass we record the
cumulative number of detected faults (**Det**), generated test vectors
(**Vec**), elapsed time (**Time**), and identified untestable faults
(**Unt**), plus reproduction-only diagnostics (per-pass new detections,
justification outcomes, Figure-1 flow counters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..atpg.hitec import FlowCounters
from ..faults.model import Fault
from ..telemetry import RunReport


@dataclass
class PassStats:
    """Cumulative statistics at the end of one pass (one table row).

    Attributes:
        number: 1-based pass number.
        approach: ``"ga"`` or ``"deterministic"``.
        detected: cumulative faults detected (Det).
        vectors: cumulative test vectors generated (Vec).
        time_s: cumulative wall-clock seconds (Time).
        untestable: cumulative untestable faults identified (Unt).
        targeted: faults targeted during this pass.
        detected_new: faults newly detected during this pass (targeted or
            incidental).
        aborted: faults targeted but neither detected nor proven untestable.
        ga_justified / det_justified: successful justifications by kind.
        validation_failures: candidate sequences the fault simulator
            rejected (generated test did not actually detect its target).
    """

    number: int
    approach: str
    detected: int = 0
    vectors: int = 0
    time_s: float = 0.0
    untestable: int = 0
    targeted: int = 0
    detected_new: int = 0
    aborted: int = 0
    ga_justified: int = 0
    det_justified: int = 0
    validation_failures: int = 0

    def row(self) -> str:
        """Format as a paper-style table row fragment."""
        return (
            f"{self.detected:>7d} {self.vectors:>6d} "
            f"{format_time(self.time_s):>8s} {self.untestable:>5d}"
        )


@dataclass
class RunResult:
    """Complete outcome of a multi-pass run on one circuit.

    Attributes:
        circuit_name: name of the circuit under test.
        generator: ``"GA-HITEC"`` or ``"HITEC"``.
        total_faults: size of the (collapsed) target fault list.
        passes: one :class:`PassStats` per completed pass.
        test_set: every generated test vector (scalars in PI order).
        detected: faults detected, mapped to the index of the test vector
            block that caught them (-1 when unknown).
        untestable: faults proven untestable.
        blocks: starting offset in ``test_set`` of each accepted test
            sequence, in emission order (useful for compaction and for
            checking per-sequence constraints).
        flow: aggregated Figure-1 flow counters.
        report: structured telemetry report for the campaign (per-pass and
            per-fault detail, metrics snapshot, total wall/CPU time).
        deadline_expired: the run stopped early because the driver's
            wall-clock deadline passed (campaign per-item timeouts);
            committed tests and detections up to that point are kept.
        knowledge_stats: cross-fault state-knowledge effectiveness
            counters for this run (empty when knowledge reuse is off).
    """

    circuit_name: str
    generator: str
    total_faults: int
    passes: List[PassStats] = field(default_factory=list)
    test_set: List[List[int]] = field(default_factory=list)
    detected: Dict[Fault, int] = field(default_factory=dict)
    untestable: List[Fault] = field(default_factory=list)
    blocks: List[int] = field(default_factory=list)
    flow: FlowCounters = field(default_factory=FlowCounters)
    report: Optional[RunReport] = None
    deadline_expired: bool = False
    knowledge_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def fault_coverage(self) -> float:
        """Detected fraction of the target fault list."""
        if not self.total_faults:
            return 0.0
        return len(self.detected) / self.total_faults

    def summary(self) -> str:
        """Multi-line, paper-style result block for this circuit."""
        lines = [
            f"{self.circuit_name} ({self.generator}): "
            f"{self.total_faults} faults"
        ]
        for p in self.passes:
            lines.append(f"  pass {p.number} [{p.approach:>13s}] {p.row()}")
        lines.append(
            f"  coverage {100.0 * self.fault_coverage:.1f}%  "
            f"vectors {len(self.test_set)}  untestable {len(self.untestable)}"
        )
        return "\n".join(lines)


def format_time(seconds: float) -> str:
    """Render seconds the way the paper does (49.5s / 5.96m / 2.39h)."""
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    if seconds < 3600.0:
        return f"{seconds / 60.0:.2f}m"
    return f"{seconds / 3600.0:.2f}h"
