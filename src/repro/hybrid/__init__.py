"""Multi-pass hybrid test generation: GA-HITEC and the HITEC baseline."""

from .passes import (
    DETERMINISTIC,
    GA,
    PassConfig,
    gahitec_schedule,
    hitec_schedule,
)
from .results import PassStats, RunResult, format_time
from .driver import HybridTestGenerator, gahitec, hitec_baseline

__all__ = [
    "DETERMINISTIC",
    "GA",
    "HybridTestGenerator",
    "PassConfig",
    "PassStats",
    "RunResult",
    "format_time",
    "gahitec",
    "gahitec_schedule",
    "hitec_baseline",
    "hitec_schedule",
]
