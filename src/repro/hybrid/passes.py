"""Pass schedules (Table I of the paper).

GA-HITEC makes several passes through the fault list.  Passes 1 and 2 use
genetic state justification with a growing search space; passes 3 and
beyond use the deterministic reverse-time justifier with a ×10 time budget
per extra pass.  The baseline HITEC schedule is deterministic in every
pass, with its own ×10 growth of time and backtrack limits.

The paper's per-fault wall-clock limits (1 s / 10 s / 100 s) were chosen
for a 1995 SPARCstation-20 running compiled C++; a pure-Python simulator
is orders of magnitude slower per gate event, so limits here are scaled by
``time_scale`` (and can be disabled entirely for deterministic test runs
by passing ``time_scale=None``) while the pass *structure* — the ×10
ratios, the GA population/generation doubling, the sequence-length
doubling — is preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

#: Justification approach names.
GA = "ga"
DETERMINISTIC = "deterministic"

#: Paper values (Table I).
PASS1_TIME_S = 1.0
PASS2_TIME_S = 10.0
PASS3_TIME_S = 100.0
PASS1_POPULATION = 64
PASS2_POPULATION = 128
PASS1_GENERATIONS = 4
PASS2_GENERATIONS = 8
TIME_GROWTH = 10.0


@dataclass(frozen=True)
class PassConfig:
    """Settings for one pass through the fault list.

    Attributes:
        number: 1-based pass number.
        justification: ``"ga"`` or ``"deterministic"``.
        time_limit: per-fault wall-clock budget in seconds (None = none).
        max_backtracks: per-fault PODEM backtrack budget.
        population_size: GA population (GA passes only).
        generations: GA generations (GA passes only).
        seq_len: GA coded sequence length in vectors (GA passes only).
        justify_depth: deterministic reverse-time frame bound.
    """

    number: int
    justification: str
    time_limit: Optional[float]
    max_backtracks: int
    population_size: int = PASS1_POPULATION
    generations: int = PASS1_GENERATIONS
    seq_len: int = 0
    justify_depth: int = 16

    def __post_init__(self) -> None:
        if self.justification not in (GA, DETERMINISTIC):
            raise ValueError(f"unknown justification {self.justification!r}")
        if self.justification == GA and self.seq_len < 1:
            raise ValueError("GA passes need a positive sequence length")


def gahitec_schedule(
    x: int,
    num_passes: int = 3,
    time_scale: Optional[float] = 1.0,
    backtrack_base: int = 200,
    justify_depth: int = 16,
    population_scale: int = 1,
) -> List[PassConfig]:
    """Build the paper's GA-HITEC schedule (Table I).

    Args:
        x: user-supplied sequence length — a multiple of the circuit's
           sequential depth; pass 1 uses x/2, pass 2 uses x.
        num_passes: total passes (≥ 3 adds deterministic passes ×10 each).
        time_scale: multiplier on the paper's per-fault limits
            (``None`` disables wall-clock limits — deterministic runs).
        backtrack_base: pass-1 PODEM backtrack budget; grows ×4 per pass.
        justify_depth: deterministic justification frame bound.
        population_scale: divide populations by this (the paper uses 32
            instead of 64/128 for s35932 — ``population_scale=2``).
    """
    if x < 2:
        raise ValueError("sequence length x must be at least 2")

    def limit(seconds: float) -> Optional[float]:
        return None if time_scale is None else seconds * time_scale

    pop1 = max(2, PASS1_POPULATION // population_scale)
    pop2 = max(2, PASS2_POPULATION // population_scale)
    schedule = [
        PassConfig(
            number=1,
            justification=GA,
            time_limit=limit(PASS1_TIME_S),
            max_backtracks=backtrack_base,
            population_size=pop1,
            generations=PASS1_GENERATIONS,
            seq_len=max(1, x // 2),
            justify_depth=justify_depth,
        ),
        PassConfig(
            number=2,
            justification=GA,
            time_limit=limit(PASS2_TIME_S),
            max_backtracks=backtrack_base * 4,
            population_size=pop2,
            generations=PASS2_GENERATIONS,
            seq_len=x,
            justify_depth=justify_depth,
        ),
    ]
    seconds = PASS3_TIME_S
    backtracks = backtrack_base * 16
    for number in range(3, num_passes + 1):
        schedule.append(
            PassConfig(
                number=number,
                justification=DETERMINISTIC,
                time_limit=limit(seconds),
                max_backtracks=backtracks,
                justify_depth=justify_depth,
            )
        )
        seconds *= TIME_GROWTH
        backtracks *= 4
    return schedule[:num_passes]


def hitec_schedule(
    num_passes: int = 3,
    time_scale: Optional[float] = 1.0,
    backtrack_base: int = 200,
    justify_depth: int = 16,
) -> List[PassConfig]:
    """Build the baseline HITEC schedule.

    The paper: time and backtrack limits start at 1 second / 10,000
    backtracks and are multiplied by ten in each successive pass; state
    justification is always deterministic, always back to the all-unknown
    state.  Backtrack budgets here scale from ``backtrack_base`` instead
    of 10,000 (Python gate evaluations are far slower), preserving the
    growth structure.
    """
    schedule: List[PassConfig] = []
    seconds = 1.0
    backtracks = backtrack_base
    for number in range(1, num_passes + 1):
        schedule.append(
            PassConfig(
                number=number,
                justification=DETERMINISTIC,
                time_limit=None if time_scale is None else seconds * time_scale,
                max_backtracks=backtracks,
                justify_depth=justify_depth,
            )
        )
        seconds *= TIME_GROWTH
        backtracks *= 4
    return schedule
