"""Multi-pass test-generation drivers: GA-HITEC and the HITEC baseline.

:class:`HybridTestGenerator` implements the paper's overall flow: make
passes through the (collapsed) fault list per a schedule from
:mod:`repro.hybrid.passes`; in each pass, target every remaining fault
individually with deterministic excitation/propagation and the pass's
justifier; validate each candidate sequence by fault simulation before
accepting it; after every accepted test, fault-simulate the remaining
faults over the new vectors to credit incidental detections (faults are
dropped once detected, as in the paper).

The GA justifier starts from the *current* good-circuit state — the state
reached after all previously accepted tests — which is one of the paper's
key advantages over HITEC's always-from-unknown justification.
:func:`hitec_baseline` builds the same driver with deterministic-only
justification.

Every run is measured: the driver threads a
:class:`~repro.telemetry.metrics.Recorder` through the sequential engine,
the GA justifier, and the fault simulator, and assembles a
:class:`~repro.telemetry.report.RunReport` (per-pass statistics, per-fault
dispositions, kernel-compile and simulation volume, wall/CPU time) on the
returned :class:`~repro.hybrid.results.RunResult`.  With the default
no-op recorder only the report's own bookkeeping runs — a few dictionary
operations per fault.
"""

from __future__ import annotations

import random
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..atpg.constraints import InputConstraints, UNCONSTRAINED
from ..atpg.context import AtpgContext
from ..atpg.hitec import SequentialTestGenerator, TestGenStatus
from ..atpg.justify import JustifyResult, justify_state
from ..atpg.podem import Limits
from ..atpg.scoap import Testability
from ..circuit.netlist import Circuit
from ..clock import monotonic
from ..faults.model import DEFAULT_FAULT_MODEL, Fault
from ..ga.justification import GAJustifyParams, GAStateJustifier
from ..knowledge import KnowledgeError, StateKnowledge
from ..policy.features import fault_features
from ..policy.model import FaultPolicy
from ..policy.schedule import PolicyPlan, build_plan
from ..simulation import codegen, kernel_cache
from ..simulation.encoding import X
from ..telemetry import (
    FaultRecord,
    PassReport,
    Recorder,
    RunReport,
    TelemetryRecorder,
)
from .passes import GA, PassConfig
from .results import PassStats, RunResult


def _kernel_compile_totals() -> tuple[int, float]:
    """Total kernel/program compilations across simulation backends.

    The numpy backend is only consulted when already imported so that
    reporting never forces a numpy import on codegen/event runs.
    """
    count = int(codegen.COMPILE_STATS["kernels"])
    seconds = float(codegen.COMPILE_STATS["seconds"])
    npb = sys.modules.get("repro.simulation.numpy_backend")
    if npb is not None:
        count += int(npb.PROGRAM_STATS["programs"])
        seconds += float(npb.PROGRAM_STATS["seconds"])
    return count, seconds


class HybridTestGenerator:
    """Multi-pass sequential ATPG driver (GA-HITEC when given GA passes).

    Args:
        circuit: the circuit under test.
        seed: seed for every stochastic choice (GA populations, X-fill),
            making runs reproducible.
        width: simulator word width (faults per fault-sim pass, GA slots).
        max_frames: forward propagation window bound; defaults to
            ``2 * sequential_depth + 2`` clamped to [4, 16].
        max_solutions: propagation alternatives offered per fault.
        faults: explicit target fault list (defaults to the collapsed
            universe).
        generator_name: label recorded in results.
        use_current_state: when True (the paper's GA-HITEC behaviour), the
            GA justifier starts from the good-circuit state reached after
            all previously accepted tests; when False it starts from the
            all-unknown state like HITEC's justification (ablation knob).
        constraints: environment-imposed input constraints every generated
            vector must satisfy (Section VI of the paper); enforced during
            search, during don't-care fill, and re-checked at validation.
        backend: simulation backend for every simulator the driver builds
            (``"event"`` or ``"codegen"``); ``None`` defers to the
            ``REPRO_SIM_BACKEND`` environment variable.
        jobs: worker processes for validation fault simulation (1 =
            in-process).
        telemetry: metrics/trace recorder shared by every component the
            driver builds; defaults to the shared no-op recorder.
        clock: wall-clock source for every deadline and duration the
            driver measures (defaults to :data:`repro.clock.monotonic`).
            Injectable so timeout/retry paths are deterministic under test
            and campaign workers can enforce budgets against a fake clock.
        knowledge: cross-fault state-knowledge reuse.  ``True`` (default)
            creates a fresh per-run store; a preloaded
            :class:`~repro.knowledge.StateKnowledge` (e.g. from a campaign
            sidecar) is used directly after a circuit/fingerprint check;
            ``False`` disables reuse entirely.
        testability: precomputed SCOAP measures (e.g. from a campaign's
            warm fork state); computed lazily when omitted.
        policy: learned fault-scheduling policy (``repro.policy``).
            Either a trained :class:`~repro.policy.model.FaultPolicy`
            (a per-circuit plan is built when :meth:`run` knows the
            schedule) or a prebuilt
            :class:`~repro.policy.schedule.PolicyPlan` (e.g. from a
            campaign's warm state).  The plan reorders the fault list
            cheap-first and skips targeting faults in passes predicted
            not to resolve them; the schedule's final pass always
            targets everything remaining, so deferral can only move
            work later, never drop it.  ``None`` (default) preserves
            today's static behaviour exactly.
        fault_model: registered fault-model name the run targets
            (``"stuck_at"`` default, ``"transition"``).  Defines the
            default fault universe, the engines' detection semantics,
            and the knowledge environment fingerprint.
    """

    def __init__(
        self,
        circuit: Circuit,
        seed: int = 0,
        width: int = 64,
        max_frames: Optional[int] = None,
        max_solutions: int = 8,
        faults: Optional[Sequence[Fault]] = None,
        generator_name: str = "GA-HITEC",
        use_current_state: bool = True,
        constraints: Optional[InputConstraints] = None,
        backend: Optional[str] = None,
        jobs: int = 1,
        telemetry: Optional[Recorder] = None,
        clock: Optional[Callable[[], float]] = None,
        knowledge: "bool | StateKnowledge" = True,
        testability: Optional[Testability] = None,
        policy: "FaultPolicy | PolicyPlan | None" = None,
        fault_model: str = DEFAULT_FAULT_MODEL,
    ):
        self.circuit = circuit
        self.seed = seed
        self.rng = random.Random(seed)
        self.width = width
        self.clock = clock or monotonic
        if max_frames is None:
            max_frames = min(16, max(4, 2 * circuit.sequential_depth + 2))
        self.max_frames = max_frames
        self.constraints = constraints or UNCONSTRAINED
        self.constraints.validate(circuit)
        # One shared context owns the compiled circuit, testability,
        # simulator handles, and the knowledge store for every engine
        # this driver builds.
        self.ctx = AtpgContext(
            circuit,
            testability=testability,
            constraints=self.constraints,
            backend=backend,
            telemetry=telemetry,
            clock=self.clock,
            seed=seed,
            fault_model=fault_model,
        )
        self.cc = self.ctx.cc
        self.telemetry = self.ctx.telemetry
        self.meas = self.ctx.testability
        if isinstance(knowledge, StateKnowledge):
            if knowledge.circuit and knowledge.circuit != circuit.name:
                raise KnowledgeError(
                    f"knowledge store is for {knowledge.circuit!r}, "
                    f"not {circuit.name!r}"
                )
            if knowledge.fingerprint != self.ctx.knowledge_fingerprint:
                raise KnowledgeError(
                    "knowledge store was proven under constraint "
                    f"environment {knowledge.fingerprint!r}, not "
                    f"{self.ctx.knowledge_fingerprint!r}"
                )
            self.ctx.knowledge = knowledge
        elif knowledge:
            self.ctx.make_knowledge()
        self.knowledge = self.ctx.knowledge
        self.seqgen = SequentialTestGenerator(
            self.ctx,
            max_frames=max_frames,
            max_solutions=max_solutions,
        )
        self.fault_sim = self.ctx.fault_simulator(width=width, jobs=jobs)
        self.backend = self.fault_sim.backend
        self.jobs = self.fault_sim.jobs
        self.ga_justifier = GAStateJustifier(self.ctx, rng=self.rng)
        self.generator_name = generator_name
        self.use_current_state = use_current_state

        self.policy = policy
        self._plan: Optional[PolicyPlan] = None
        self.all_faults: List[Fault] = (
            list(faults) if faults is not None else self.ctx.faults
        )
        # mutable run state
        self.remaining: List[Fault] = []
        self.detected: Dict[Fault, int] = {}
        self.untestable: List[Fault] = []
        self.test_set: List[List[int]] = []
        self.blocks: List[int] = []
        self.good_state: List[int] = [X] * len(self.cc.ff_out)
        self.fault_states: Dict[Fault, List[int]] = {}
        self._records: Dict[Fault, FaultRecord] = {}
        self._deadline: Optional[float] = None
        #: set when :meth:`run` stopped early because its deadline passed
        self.deadline_expired: bool = False
        #: faults proven untestable by :meth:`prefilter_untestable`
        self.prefiltered_untestable: List[Fault] = []

    # ------------------------------------------------------------------
    def prefilter_untestable(
        self, max_backtracks: int = 500, time_limit: Optional[float] = None
    ) -> List[Fault]:
        """Prove combinationally redundant faults untestable up front.

        Runs the deterministic excitation/propagation phase with a
        justifier that always refuses, so only faults whose search space
        exhausts without any state requirement are removed — the
        preprocessing step Section VI of the paper recommends to stop the
        GA passes wasting time on untestable faults.  Returns the proven
        faults and removes them from the target list.
        """

        def refuse(_required: Dict[str, int]) -> JustifyResult:
            from ..atpg.justify import JustifyStatus

            return JustifyResult(JustifyStatus.BOUNDED)

        deadline = self.clock() + time_limit if time_limit else None
        proven: List[Fault] = []
        kept: List[Fault] = []
        with self.telemetry.span("hybrid.prefilter"):
            for fault in self.all_faults:
                limits = Limits(
                    max_backtracks=max_backtracks, deadline=deadline, clock=self.clock
                )
                res = self.seqgen.generate(fault, refuse, limits)
                if res.status is TestGenStatus.UNTESTABLE:
                    proven.append(fault)
                else:
                    kept.append(fault)
        self.telemetry.count("hybrid.prefiltered", len(proven))
        self.all_faults = kept
        self.prefiltered_untestable = proven
        return proven

    # ------------------------------------------------------------------
    def run(
        self,
        schedule: Sequence[PassConfig],
        deadline: Optional[float] = None,
    ) -> RunResult:
        """Execute the whole schedule; return statistics and a run report.

        Args:
            schedule: pass configurations to execute in order.
            deadline: absolute ``clock()`` instant after which no further
                fault is targeted — the run stops between faults, keeps
                everything committed so far, and flags the result with
                ``deadline_expired``.  Campaign workers use this to bound
                each work item's wall-clock cost.
        """
        tel = self.telemetry
        result = RunResult(
            circuit_name=self.circuit.name,
            generator=self.generator_name,
            total_faults=len(self.all_faults),
        )
        self._deadline = deadline
        self.deadline_expired = False
        knowledge_stats0 = (
            self.knowledge.snapshot_stats()
            if self.knowledge is not None
            else {}
        )
        self.remaining = list(self.all_faults)
        self.detected = {}
        self.untestable = []
        self.test_set = []
        self.blocks = []
        self.good_state = [X] * len(self.cc.ff_out)
        self.fault_states = {}
        self._records = {}
        self._plan = self._resolve_plan(schedule)
        if self._plan is not None:
            if self._plan.reorder:
                ordered = self._plan.order(self.remaining)
                moved = sum(1 for a, b in zip(ordered, self.remaining) if a is not b)
                if moved:
                    self.remaining = ordered
                    tel.count("atpg.policy.faults_reordered", moved)
            tel.count("atpg.policy.deferred", self._plan.deferred_count())

        report = RunReport(
            circuit=self.circuit.name,
            generator=self.generator_name,
            total_faults=len(self.all_faults),
            seed=self.seed,
            backend=self.backend,
            fault_model=self.ctx.fault_model,
            jobs=self.jobs,
            width=self.width,
        )
        compiles0, compile_s0 = _kernel_compile_totals()
        cache0 = kernel_cache.stats_snapshot()
        cache_counted0 = {
            name: tel.value(f"sim.kernel_cache.{name}") for name in cache0
        }
        wall0 = self.clock()
        cpu0 = time.process_time()
        for cfg in schedule:
            pass_start = self.clock()
            untestable_before = len(self.untestable)
            with tel.span(
                "hybrid.pass", number=cfg.number, approach=cfg.justification
            ):
                stats = self.run_pass(cfg)
            stats.detected = len(self.detected)
            stats.vectors = len(self.test_set)
            stats.untestable = len(self.untestable)
            stats.time_s = self.clock() - wall0
            result.passes.append(stats)
            report.passes.append(
                PassReport(
                    number=cfg.number,
                    approach=cfg.justification,
                    targeted=stats.targeted,
                    detected_new=stats.detected_new,
                    untestable_new=len(self.untestable) - untestable_before,
                    aborted=stats.aborted,
                    ga_justified=stats.ga_justified,
                    det_justified=stats.det_justified,
                    validation_failures=stats.validation_failures,
                    time_s=self.clock() - pass_start,
                )
            )
            if self.deadline_expired:
                break

        report.wall_time_s = self.clock() - wall0
        report.cpu_time_s = time.process_time() - cpu0
        compiles1, compile_s1 = _kernel_compile_totals()
        report.kernel_compiles = compiles1 - compiles0
        report.kernel_compile_s = compile_s1 - compile_s0
        # cache loads can happen at simulator construction, outside any
        # FaultSimulator.run window; count whatever the fault simulators
        # have not already attributed to this recorder
        for name, before in cache0.items():
            total = kernel_cache.CACHE_STATS[name] - before
            counted = (
                tel.value(f"sim.kernel_cache.{name}") - cache_counted0[name]
            )
            if total > counted:
                tel.count(f"sim.kernel_cache.{name}", total - counted)

        result.test_set = list(self.test_set)
        result.detected = dict(self.detected)
        result.untestable = list(self.untestable)
        result.blocks = list(self.blocks)
        result.deadline_expired = self.deadline_expired
        if self.knowledge is not None:
            result.knowledge_stats = self.knowledge.snapshot_stats()
            for name, value in result.knowledge_stats.items():
                delta = value - knowledge_stats0.get(name, 0)
                if delta:
                    tel.count(f"knowledge.{name}", delta)
            tel.observe("knowledge.entries", float(len(self.knowledge)))
        self._finalize_report(report)
        result.report = report
        return result

    def _resolve_plan(self, schedule: Sequence[PassConfig]) -> Optional[PolicyPlan]:
        """The per-circuit plan for this run, or ``None`` (static)."""
        if self.policy is None or not schedule:
            return None
        if isinstance(self.policy, PolicyPlan):
            plan = self.policy
            return plan if plan.circuit == self.circuit.name else None
        return build_plan(
            self.policy,
            self.cc,
            self.meas,
            self.all_faults,
            final_pass=schedule[-1].number,
        )

    def _finalize_report(self, report: RunReport) -> None:
        """Fill the campaign totals and per-fault dispositions."""
        for fault in self.prefiltered_untestable:
            report.faults.append(
                FaultRecord(
                    fault=str(fault),
                    status="prefiltered",
                    justification="deterministic",
                    features=fault_features(self.cc, self.meas, fault),
                )
            )
        mispredicted = 0
        for fault in self.all_faults:
            record = self._record_for(fault)
            record.features = fault_features(self.cc, self.meas, fault)
            report.faults.append(record)
            if self._plan is not None:
                plan = self._plan.plan_for(fault)
                if plan is not None and (
                    (plan.deferred and record.status == "detected")
                    or (not plan.deferred and record.status == "aborted")
                ):
                    mispredicted += 1
        if self._plan is not None and mispredicted:
            self.telemetry.count("atpg.policy.mispredictions", mispredicted)
        report.detected = len(self.detected)
        report.untestable = len(self.untestable)
        report.vectors = len(self.test_set)
        report.fault_coverage = (
            len(self.detected) / report.total_faults
            if report.total_faults
            else 0.0
        )
        if isinstance(self.telemetry, TelemetryRecorder):
            report.metrics = self.telemetry.registry.to_dict()

    # ------------------------------------------------------------------
    def _knowledge_hit_total(self) -> int:
        """Sum of the store's hit-style counters (per-fault deltas)."""
        stats = self.knowledge.stats if self.knowledge is not None else {}
        return (
            stats.get("justified_hits", 0)
            + stats.get("unjustifiable_hits", 0)
            + stats.get("podem_pruned", 0)
        )

    def _record_for(self, fault: Fault) -> FaultRecord:
        record = self._records.get(fault)
        if record is None:
            record = self._records[fault] = FaultRecord(
                fault=str(fault), status="aborted"
            )
        return record

    def run_pass(self, cfg: PassConfig) -> PassStats:
        """Make one pass through the remaining fault list."""
        stats = PassStats(number=cfg.number, approach=cfg.justification)
        before = len(self.detected)
        for fault in list(self.remaining):
            if fault in self.detected:
                continue  # dropped incidentally earlier in this pass
            if self._plan is not None and not self._plan.eligible(fault, cfg.number):
                # the policy predicts this pass cannot resolve the
                # fault; a later pass (at worst the mop-up) targets it
                self.telemetry.count("atpg.policy.pass_skips")
                continue
            if self._deadline is not None and self.clock() >= self._deadline:
                self.deadline_expired = True
                break
            stats.targeted += 1
            self._target_fault(fault, cfg, stats)
        stats.detected_new = len(self.detected) - before
        for fault in self.detected:
            record = self._record_for(fault)
            if record.status != "detected":
                record.status = "detected"
                record.incidental = True
                record.pass_number = cfg.number
        return stats

    def _target_fault(
        self, fault: Fault, cfg: PassConfig, stats: PassStats
    ) -> None:
        tel = self.telemetry
        record = self._record_for(fault)
        record.targeted += 1
        record.pass_number = cfg.number
        ga_generations0 = tel.value("ga.generations")
        knowledge0 = self._knowledge_hit_total() if self.knowledge is not None else 0
        started = self.clock()

        deadline = (
            self.clock() + cfg.time_limit
            if cfg.time_limit is not None
            else None
        )
        if self._deadline is not None:
            deadline = (
                self._deadline if deadline is None else min(deadline, self._deadline)
            )
        limits = Limits(
            max_backtracks=cfg.max_backtracks, deadline=deadline, clock=self.clock
        )
        justifier = self._make_justifier(fault, cfg, limits)
        result = self.seqgen.generate(
            fault,
            justifier,
            limits,
            start_good_state=list(self.good_state),
            start_fault_state=self.fault_states.get(fault),
        )
        record.backtracks += result.backtracks
        record.ga_generations += tel.value("ga.generations") - ga_generations0
        if self.knowledge is not None:
            record.knowledge_hits += self._knowledge_hit_total() - knowledge0

        if result.status is TestGenStatus.DETECTED:
            sequence = [self._fill_x(vec) for vec in result.sequence]
            if not self.constraints.is_trivial:
                self.constraints.apply_to_vectors(self.circuit, sequence)
            if self._validate_and_commit(fault, sequence):
                record.status = "detected"
                if result.justification_frames:
                    record.justification = (
                        "ga" if cfg.justification == GA else "deterministic"
                    )
                if cfg.justification == GA and result.justification_frames:
                    stats.ga_justified += 1
                elif result.justification_frames:
                    stats.det_justified += 1
            else:
                stats.aborted += 1
                stats.validation_failures += 1
        elif result.status is TestGenStatus.UNTESTABLE:
            record.status = "untestable"
            self.untestable.append(fault)
            self.remaining.remove(fault)
        else:
            stats.aborted += 1
        record.time_s += self.clock() - started

    # ------------------------------------------------------------------
    def _make_justifier(
        self, fault: Fault, cfg: PassConfig, limits: Limits
    ) -> Callable[[Dict[str, int]], JustifyResult]:
        if cfg.justification == GA:
            population = cfg.population_size
            generations = cfg.generations
            if self._plan is not None:
                plan = self._plan.plan_for(fault)
                if plan is not None and plan.ga_scale < 1.0:
                    population = max(2, int(population * plan.ga_scale))
                    generations = max(1, int(generations * plan.ga_scale))
                    self.telemetry.count("atpg.policy.budgets_shrunk")
            params = GAJustifyParams(
                population_size=population,
                generations=generations,
                seq_len=cfg.seq_len,
                word_width=self.width,
            )

            def ga_justify(required: Dict[str, int]) -> JustifyResult:
                start = self.good_state if self.use_current_state else None
                with self.telemetry.span("justify.ga"):
                    return self.ga_justifier.justify(
                        required,
                        params,
                        fault=fault,
                        current_good_state=start,
                    )

            return ga_justify

        def det_justify(required: Dict[str, int]) -> JustifyResult:
            with self.telemetry.span("justify.det"):
                return justify_state(
                    self.cc,
                    required,
                    max_depth=cfg.justify_depth,
                    limits=limits,
                    testability=self.meas,
                    constraints=(
                        None
                        if self.constraints.is_trivial
                        else self.constraints
                    ),
                    knowledge=self.knowledge,
                )

        return det_justify

    def _fill_x(self, vector: Sequence[int]) -> List[int]:
        """Replace don't-cares with random bits (reproducible via the seed)."""
        return [self.rng.getrandbits(1) if v == X else v for v in vector]

    def _validate_and_commit(
        self, target: Fault, sequence: List[List[int]]
    ) -> bool:
        """Fault-simulate the candidate; commit only if the target drops.

        The candidate is applied from the current good state.  On success,
        every remaining fault is credited with any incidental detection and
        per-fault faulty states roll forward; on failure nothing changes.
        """
        trial_states = {f: list(s) for f, s in self.fault_states.items()}
        self.telemetry.count("hybrid.validations")
        with self.telemetry.span("hybrid.validate"):
            sim = self.fault_sim.run(
                sequence,
                self.remaining,
                good_state=self.good_state,
                fault_states=trial_states,
            )
        if target not in sim.detected:
            return False
        self.telemetry.count("hybrid.commits")
        base = len(self.test_set)
        self.blocks.append(base)
        self.test_set.extend(sequence)
        self.good_state = sim.good_state
        self.fault_states = {
            f: s for f, s in trial_states.items() if f not in sim.detected
        }
        for fault in sim.detected:
            self.detected[fault] = base
        self.remaining = [f for f in self.remaining if f not in sim.detected]
        return True


def gahitec(circuit: Circuit, **kwargs) -> HybridTestGenerator:
    """Construct a GA-HITEC driver (GA passes enabled via the schedule)."""
    return HybridTestGenerator(circuit, generator_name="GA-HITEC", **kwargs)


def hitec_baseline(circuit: Circuit, **kwargs) -> HybridTestGenerator:
    """Construct the HITEC baseline driver.

    The baseline differs from GA-HITEC only through its schedule
    (:func:`repro.hybrid.passes.hitec_schedule`): deterministic
    justification in every pass, always from the all-unknown state.
    """
    return HybridTestGenerator(circuit, generator_name="HITEC", **kwargs)
