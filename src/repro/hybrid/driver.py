"""Multi-pass test-generation drivers: GA-HITEC and the HITEC baseline.

:class:`HybridTestGenerator` implements the paper's overall flow: make
passes through the (collapsed) fault list per a schedule from
:mod:`repro.hybrid.passes`; in each pass, target every remaining fault
individually with deterministic excitation/propagation and the pass's
justifier; validate each candidate sequence by fault simulation before
accepting it; after every accepted test, fault-simulate the remaining
faults over the new vectors to credit incidental detections (faults are
dropped once detected, as in the paper).

The GA justifier starts from the *current* good-circuit state — the state
reached after all previously accepted tests — which is one of the paper's
key advantages over HITEC's always-from-unknown justification.
:func:`hitec_baseline` builds the same driver with deterministic-only
justification.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..atpg.hitec import (
    SequentialTestGenerator,
    TestGenStatus,
)
from ..atpg.constraints import InputConstraints, UNCONSTRAINED
from ..atpg.justify import JustifyResult, justify_state
from ..atpg.podem import Limits
from ..atpg.scoap import compute_testability
from ..circuit.netlist import Circuit
from ..faults.collapse import collapse_faults
from ..faults.model import Fault
from ..ga.justification import GAJustifyParams, GAStateJustifier
from ..simulation.compiled import compile_circuit
from ..simulation.encoding import X
from ..simulation.fault_sim import FaultSimulator
from .passes import DETERMINISTIC, GA, PassConfig
from .results import PassStats, RunResult


class HybridTestGenerator:
    """Multi-pass sequential ATPG driver (GA-HITEC when given GA passes).

    Args:
        circuit: the circuit under test.
        seed: seed for every stochastic choice (GA populations, X-fill),
            making runs reproducible.
        width: simulator word width (faults per fault-sim pass, GA slots).
        max_frames: forward propagation window bound; defaults to
            ``2 * sequential_depth + 2`` clamped to [4, 16].
        max_solutions: propagation alternatives offered per fault.
        faults: explicit target fault list (defaults to the collapsed
            universe).
        generator_name: label recorded in results.
        use_current_state: when True (the paper's GA-HITEC behaviour), the
            GA justifier starts from the good-circuit state reached after
            all previously accepted tests; when False it starts from the
            all-unknown state like HITEC's justification (ablation knob).
        constraints: environment-imposed input constraints every generated
            vector must satisfy (Section VI of the paper); enforced during
            search, during don't-care fill, and re-checked at validation.
        backend: simulation backend for every simulator the driver builds
            (``"event"`` or ``"codegen"``); ``None`` defers to the
            ``REPRO_SIM_BACKEND`` environment variable.
        jobs: worker processes for validation fault simulation (1 =
            in-process).
    """

    def __init__(
        self,
        circuit: Circuit,
        seed: int = 0,
        width: int = 64,
        max_frames: Optional[int] = None,
        max_solutions: int = 8,
        faults: Optional[Sequence[Fault]] = None,
        generator_name: str = "GA-HITEC",
        use_current_state: bool = True,
        constraints: Optional[InputConstraints] = None,
        backend: Optional[str] = None,
        jobs: int = 1,
    ):
        self.circuit = circuit
        self.cc = compile_circuit(circuit)
        self.rng = random.Random(seed)
        self.width = width
        if max_frames is None:
            max_frames = min(16, max(4, 2 * circuit.sequential_depth + 2))
        self.max_frames = max_frames
        self.meas = compute_testability(self.cc)
        self.constraints = constraints or UNCONSTRAINED
        self.constraints.validate(circuit)
        active_constraints = (
            None if self.constraints.is_trivial else self.constraints
        )
        self.seqgen = SequentialTestGenerator(
            self.cc,
            max_frames=max_frames,
            max_solutions=max_solutions,
            testability=self.meas,
            constraints=active_constraints,
            backend=backend,
        )
        self.fault_sim = FaultSimulator(
            self.cc, width=width, backend=backend, jobs=jobs
        )
        self.backend = self.fault_sim.backend
        self.jobs = self.fault_sim.jobs
        self.ga_justifier = GAStateJustifier(
            self.cc, rng=self.rng, constraints=active_constraints,
            backend=backend,
        )
        self.generator_name = generator_name
        self.use_current_state = use_current_state

        self.all_faults: List[Fault] = (
            list(faults) if faults is not None else collapse_faults(circuit)
        )
        # mutable run state
        self.remaining: List[Fault] = []
        self.detected: Dict[Fault, int] = {}
        self.untestable: List[Fault] = []
        self.test_set: List[List[int]] = []
        self.blocks: List[int] = []
        self.good_state: List[int] = [X] * len(self.cc.ff_out)
        self.fault_states: Dict[Fault, List[int]] = {}
        #: faults proven untestable by :meth:`prefilter_untestable`
        self.prefiltered_untestable: List[Fault] = []

    # ------------------------------------------------------------------
    def prefilter_untestable(
        self, max_backtracks: int = 500, time_limit: Optional[float] = None
    ) -> List[Fault]:
        """Prove combinationally redundant faults untestable up front.

        Runs the deterministic excitation/propagation phase with a
        justifier that always refuses, so only faults whose search space
        exhausts without any state requirement are removed — the
        preprocessing step Section VI of the paper recommends to stop the
        GA passes wasting time on untestable faults.  Returns the proven
        faults and removes them from the target list.
        """
        def refuse(_required: Dict[str, int]) -> JustifyResult:
            from ..atpg.justify import JustifyStatus

            return JustifyResult(JustifyStatus.BOUNDED)

        deadline = time.monotonic() + time_limit if time_limit else None
        proven: List[Fault] = []
        kept: List[Fault] = []
        for fault in self.all_faults:
            limits = Limits(max_backtracks=max_backtracks, deadline=deadline)
            res = self.seqgen.generate(fault, refuse, limits)
            if res.status is TestGenStatus.UNTESTABLE:
                proven.append(fault)
            else:
                kept.append(fault)
        self.all_faults = kept
        self.prefiltered_untestable = proven
        return proven

    # ------------------------------------------------------------------
    def run(self, schedule: Sequence[PassConfig]) -> RunResult:
        """Execute the whole schedule and return per-pass statistics."""
        result = RunResult(
            circuit_name=self.circuit.name,
            generator=self.generator_name,
            total_faults=len(self.all_faults),
        )
        self.remaining = list(self.all_faults)
        self.detected = {}
        self.untestable = []
        self.test_set = []
        self.blocks = []
        self.good_state = [X] * len(self.cc.ff_out)
        self.fault_states = {}

        elapsed = 0.0
        for cfg in schedule:
            start = time.monotonic()
            stats = self.run_pass(cfg)
            elapsed += time.monotonic() - start
            stats.detected = len(self.detected)
            stats.vectors = len(self.test_set)
            stats.untestable = len(self.untestable)
            stats.time_s = elapsed
            result.passes.append(stats)

        result.test_set = list(self.test_set)
        result.detected = dict(self.detected)
        result.untestable = list(self.untestable)
        result.blocks = list(self.blocks)
        return result

    # ------------------------------------------------------------------
    def run_pass(self, cfg: PassConfig) -> PassStats:
        """Make one pass through the remaining fault list."""
        stats = PassStats(number=cfg.number, approach=cfg.justification)
        before = len(self.detected)
        for fault in list(self.remaining):
            if fault in self.detected:
                continue  # dropped incidentally earlier in this pass
            stats.targeted += 1
            self._target_fault(fault, cfg, stats)
        stats.detected_new = len(self.detected) - before
        return stats

    def _target_fault(self, fault: Fault, cfg: PassConfig, stats: PassStats) -> None:
        deadline = (
            time.monotonic() + cfg.time_limit if cfg.time_limit is not None else None
        )
        limits = Limits(max_backtracks=cfg.max_backtracks, deadline=deadline)
        justifier = self._make_justifier(fault, cfg, limits)
        result = self.seqgen.generate(
            fault,
            justifier,
            limits,
            start_good_state=list(self.good_state),
            start_fault_state=self.fault_states.get(fault),
        )

        if result.status is TestGenStatus.DETECTED:
            sequence = [self._fill_x(vec) for vec in result.sequence]
            if not self.constraints.is_trivial:
                self.constraints.apply_to_vectors(self.circuit, sequence)
            if self._validate_and_commit(fault, sequence):
                if cfg.justification == GA and result.justification_frames:
                    stats.ga_justified += 1
                elif result.justification_frames:
                    stats.det_justified += 1
                return
            stats.aborted += 1
            stats.validation_failures += 1
            return
        if result.status is TestGenStatus.UNTESTABLE:
            self.untestable.append(fault)
            self.remaining.remove(fault)
            return
        stats.aborted += 1

    # ------------------------------------------------------------------
    def _make_justifier(
        self, fault: Fault, cfg: PassConfig, limits: Limits
    ) -> Callable[[Dict[str, int]], JustifyResult]:
        if cfg.justification == GA:
            params = GAJustifyParams(
                population_size=cfg.population_size,
                generations=cfg.generations,
                seq_len=cfg.seq_len,
                word_width=self.width,
            )

            def ga_justify(required: Dict[str, int]) -> JustifyResult:
                start = self.good_state if self.use_current_state else None
                return self.ga_justifier.justify(
                    required,
                    params,
                    fault=fault,
                    current_good_state=start,
                )

            return ga_justify

        def det_justify(required: Dict[str, int]) -> JustifyResult:
            return justify_state(
                self.cc,
                required,
                max_depth=cfg.justify_depth,
                limits=limits,
                testability=self.meas,
                constraints=(
                    None if self.constraints.is_trivial else self.constraints
                ),
            )

        return det_justify

    def _fill_x(self, vector: Sequence[int]) -> List[int]:
        """Replace don't-cares with random bits (reproducible via the seed)."""
        return [self.rng.getrandbits(1) if v == X else v for v in vector]

    def _validate_and_commit(self, target: Fault, sequence: List[List[int]]) -> bool:
        """Fault-simulate the candidate; commit only if the target drops.

        The candidate is applied from the current good state.  On success,
        every remaining fault is credited with any incidental detection and
        per-fault faulty states roll forward; on failure nothing changes.
        """
        trial_states = {f: list(s) for f, s in self.fault_states.items()}
        sim = self.fault_sim.run(
            sequence,
            self.remaining,
            good_state=self.good_state,
            fault_states=trial_states,
        )
        if target not in sim.detected:
            return False
        base = len(self.test_set)
        self.blocks.append(base)
        self.test_set.extend(sequence)
        self.good_state = sim.good_state
        self.fault_states = {
            f: s for f, s in trial_states.items() if f not in sim.detected
        }
        for fault in sim.detected:
            self.detected[fault] = base
        self.remaining = [f for f in self.remaining if f not in sim.detected]
        return True


def gahitec(circuit: Circuit, **kwargs) -> HybridTestGenerator:
    """Construct a GA-HITEC driver (GA passes enabled via the schedule)."""
    return HybridTestGenerator(circuit, generator_name="GA-HITEC", **kwargs)


def hitec_baseline(circuit: Circuit, **kwargs) -> HybridTestGenerator:
    """Construct the HITEC baseline driver.

    The baseline differs from GA-HITEC only through its schedule
    (:func:`repro.hybrid.passes.hitec_schedule`): deterministic
    justification in every pass, always from the all-unknown state.
    """
    return HybridTestGenerator(circuit, generator_name="HITEC", **kwargs)
