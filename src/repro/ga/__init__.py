"""Genetic algorithm engine and GA state justification."""

from .engine import (
    GAParams,
    GAResult,
    GeneticAlgorithm,
    TournamentSelector,
    mutate,
    uniform_crossover,
)
from .atpg import GAAtpgParams, GASimulationTestGenerator
from .justification import (
    FAULTY_WEIGHT,
    GOOD_WEIGHT,
    GAJustifyParams,
    GAStateJustifier,
)

__all__ = [
    "FAULTY_WEIGHT",
    "GAAtpgParams",
    "GASimulationTestGenerator",
    "GAJustifyParams",
    "GAParams",
    "GAResult",
    "GAStateJustifier",
    "GOOD_WEIGHT",
    "GeneticAlgorithm",
    "TournamentSelector",
    "mutate",
    "uniform_crossover",
]
