"""Genetic state justification (Section IV of the paper).

Each GA individual encodes a candidate input sequence: ``seq_len`` vectors
of ``n_pi`` bits laid out contiguously along the binary string (vector 0
in the lowest bits).  A whole population slice is simulated at once —
individual ``i`` rides bit slot ``i`` of the packed simulator words — for
both the good circuit (starting from the *current* good state, the state
reached after all previously generated tests) and the faulty circuit
(starting all-unknown, as the paper prescribes, with the target fault
injected in every slot).

The state is compared against the requirement after **every** vector, so a
successful sequence may be shorter than the coded length.  When no
individual matches, fitness drives evolution toward the target:

    fitness = 9/10 · (# matching flip-flops, good circuit)
            + 1/10 · (# matching flip-flops, faulty circuit)

A flip-flop matches when the requirement is a don't-care or the values are
equal; a full match in both circuits scores exactly ``n_ff``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..atpg.constraints import InputConstraints, UNCONSTRAINED
from ..atpg.context import AtpgContext
from ..atpg.justify import JustifyResult, JustifyStatus
from ..circuit.netlist import Circuit
from ..faults.model import Fault
from ..knowledge import StateKnowledge
from ..simulation.compiled import CompiledCircuit, compile_circuit
from ..simulation.encoding import X, full_mask, pack, pack_const
from ..simulation.fault_sim import injection_for
from ..simulation.logic_sim import make_simulator, resolve_backend
from ..telemetry import NULL_RECORDER, Recorder
from .engine import GAParams, GeneticAlgorithm

#: Fitness weights for the good and faulty circuit goals (paper: 9/10, 1/10).
GOOD_WEIGHT = 0.9
FAULTY_WEIGHT = 0.1


@dataclass
class GAJustifyParams:
    """Knobs for one GA justification attempt.

    Attributes:
        population_size: individuals per generation (pass 1: 64, pass 2: 128).
        generations: evolution budget (pass 1: 4, pass 2: 8).
        seq_len: coded sequence length in vectors (a multiple of the
            circuit's sequential depth, per the paper).
        word_width: simulation slots per batch.
        good_weight / faulty_weight: fitness weights (ablation knob).
    """

    population_size: int = 64
    generations: int = 4
    seq_len: int = 8
    word_width: int = 64
    good_weight: float = GOOD_WEIGHT
    faulty_weight: float = FAULTY_WEIGHT


class GAStateJustifier:
    """Evolves input sequences that drive the circuit into a required state.

    Args:
        circuit: an :class:`~repro.atpg.context.AtpgContext`, or (legacy
            shim) a circuit / compiled form plus the keyword arguments
            below, which are folded into a private context.
        rng: random source shared across attempts (seed for reproducibility).
        constraints: environment input constraints applied by construction
            (legacy shim; lives on the context).
        backend: frame-simulator backend for fitness evaluation (``"event"``
            or ``"codegen"``); ``None`` defers to ``REPRO_SIM_BACKEND``
            (legacy shim; lives on the context).
        telemetry: metrics recorder (legacy shim; lives on the context).

    When the context carries a :class:`~repro.knowledge.StateKnowledge`
    store, part of the initial GA population is seeded from its pool of
    previously successful sequences (the rest stays random), and
    successful all-X-start justifications are recorded back.
    """

    def __init__(
        self,
        circuit: "Circuit | CompiledCircuit | AtpgContext",
        rng: Optional[random.Random] = None,
        constraints: Optional[InputConstraints] = None,
        backend: Optional[str] = None,
        telemetry: Optional[Recorder] = None,
    ):
        self.ctx = AtpgContext.ensure(
            circuit,
            constraints=constraints,
            backend=backend,
            telemetry=telemetry,
        )
        self.cc = self.ctx.cc
        self.rng = rng or random.Random()
        self.telemetry = self.ctx.telemetry
        self.backend = resolve_backend(self.ctx.backend)
        self.n_pi = len(self.cc.pi)
        self.n_ff = len(self.cc.ff_out)
        self.constraints = self.ctx.constraints
        # pin categories for constrained sequence decoding
        name_of = {i: self.cc.net_names[idx] for i, idx in enumerate(self.cc.pi)}
        self._fixed_pins: Dict[int, int] = {
            pin: self.constraints.fixed[name_of[pin]]
            for pin in range(self.n_pi)
            if name_of[pin] in self.constraints.fixed
        }
        self._hold_pins = {
            pin for pin in range(self.n_pi)
            if name_of[pin] in self.constraints.hold
        }

    @property
    def knowledge(self) -> Optional[StateKnowledge]:
        return self.ctx.knowledge

    # ------------------------------------------------------------------
    def justify(
        self,
        required_good: Dict[str, int],
        params: GAJustifyParams,
        fault: Optional[Fault] = None,
        required_faulty: Optional[Dict[str, int]] = None,
        current_good_state: Optional[Sequence[int]] = None,
    ) -> JustifyResult:
        """Search for a sequence that justifies the required state.

        Args:
            required_good: cared good-circuit flip-flop values {net: 0/1}.
            params: GA parameters for this attempt.
            fault: target fault, injected during faulty-circuit simulation.
            required_faulty: cared faulty-circuit values (defaults to the
                good requirement, matching the hybrid engine's frame-0
                assignments).
            current_good_state: good-circuit starting state (scalars in
                flip-flop order); defaults to all-X.

        Returns:
            A :class:`~repro.atpg.justify.JustifyResult`; on success its
            vectors justify the state starting from ``current_good_state``.
            Failure status is always ``BOUNDED`` — a GA can never prove
            unjustifiability.
        """
        required_faulty = (
            required_faulty if required_faulty is not None else dict(required_good)
        )
        start_good = (
            list(current_good_state)
            if current_good_state is not None
            else [X] * self.n_ff
        )

        # The paper checks before searching: if the current good state
        # already satisfies the requirement and the all-unknown faulty
        # state does too (i.e. no cared faulty bits), nothing to justify.
        if self._state_matches(required_good, start_good) and not required_faulty:
            self.telemetry.count("ga.justify.trivial")
            return JustifyResult(JustifyStatus.JUSTIFIED, [])

        n_bits = max(1, params.seq_len * self.n_pi)
        evaluator = _SequenceEvaluator(
            self, params, fault, required_good, required_faulty, start_good
        )
        ga: GeneticAlgorithm = GeneticAlgorithm(
            n_bits,
            GAParams(
                population_size=params.population_size,
                generations=params.generations,
            ),
            evaluator.evaluate,
            rng=self.rng,
            telemetry=self.telemetry,
        )
        initial = self._seeded_population(ga, params)
        with self.telemetry.span("ga.justify"):
            result = ga.run(initial=initial)
        if result.payload is not None:
            self.telemetry.count("ga.justify.successes")
            know = self.knowledge
            if know is not None:
                # The pool seeds future populations regardless of start
                # state; the (a) table only takes all-X-start proofs,
                # which hold from every concrete start state.
                know.add_seed(result.payload)
                if current_good_state is None:
                    know.record_justified(required_good, result.payload)
            return JustifyResult(JustifyStatus.JUSTIFIED, result.payload)
        return JustifyResult(JustifyStatus.BOUNDED)

    def _seeded_population(
        self, ga: GeneticAlgorithm, params: GAJustifyParams
    ) -> Optional[List[int]]:
        """Random population with up to a quarter drawn from knowledge.

        Only *preloaded* stores (sidecar / cross-run reuse) seed
        populations: sequences learned within the current run stay in
        the pool for persistence but are not fed back, so a fresh
        knowledge-enabled run follows the exact GA trajectory of a
        knowledge-off run.
        """
        know = self.knowledge
        if know is None or not know.preloaded:
            return None
        seeds = know.seed_sequences(max(1, params.population_size // 4))
        if not seeds:
            return None
        population = ga.random_population()
        genomes: List[int] = []
        for seq in seeds:
            genome = self.encode(seq, params.seq_len)
            if genome not in genomes:
                genomes.append(genome)
        population[: len(genomes)] = genomes
        know.stats["ga_seeded"] += len(genomes)
        self.telemetry.count("ga.justify.seeded", len(genomes))
        return population

    # ------------------------------------------------------------------
    def _state_matches(
        self, required: Dict[str, int], state: Sequence[int]
    ) -> bool:
        for name, want in required.items():
            pos = self.cc.ff_out.index(self.cc.index[name])
            if state[pos] != want:
                return False
        return True

    def decode(self, genome: int, seq_len: int, n_vectors: int) -> List[List[int]]:
        """Decode the first ``n_vectors`` vectors of a genome.

        Constraints are applied by construction: fixed pins always decode
        to their constant, hold pins reuse their vector-0 bit in every
        later vector, so every candidate the GA evaluates (and every
        sequence it returns) satisfies the environment by design — the
        forward-only advantage Section VI of the paper highlights.
        """
        vectors = []
        for v in range(n_vectors):
            base = v * self.n_pi
            vec = []
            for j in range(self.n_pi):
                if j in self._fixed_pins:
                    vec.append(self._fixed_pins[j])
                elif j in self._hold_pins:
                    vec.append((genome >> j) & 1)  # vector-0 bit
                else:
                    vec.append((genome >> (base + j)) & 1)
            vectors.append(vec)
        return vectors

    def encode(self, vectors: Sequence[Sequence[int]], seq_len: int) -> int:
        """Inverse of :meth:`decode`: fold a sequence into a genome.

        Used to seed GA populations from knowledge-pool sequences.  When
        the sequence is longer than ``seq_len`` the tail is kept (the
        final vectors are what drive the state); X bits encode as 0.
        Fixed pins have no genome bits, hold pins take their vector-0
        value — so decode(encode(s)) satisfies the constraints by
        construction even when ``s`` predates them.
        """
        genome = 0
        for v, vec in enumerate(list(vectors)[-max(1, seq_len):]):
            base = v * self.n_pi
            for j in range(self.n_pi):
                if j in self._fixed_pins or j >= len(vec):
                    continue
                if vec[j] != 1:
                    continue
                if j in self._hold_pins:
                    if v == 0:
                        genome |= 1 << j
                else:
                    genome |= 1 << (base + j)
        return genome


class _SequenceEvaluator:
    """Bit-parallel fitness evaluation of one population."""

    def __init__(
        self,
        justifier: GAStateJustifier,
        params: GAJustifyParams,
        fault: Optional[Fault],
        required_good: Dict[str, int],
        required_faulty: Dict[str, int],
        start_good: Sequence[int],
    ):
        self.j = justifier
        self.params = params
        self.fault = fault
        self.start_good = start_good
        cc = justifier.cc
        # per-flip-flop requirement scalars, in flip-flop order (X = don't care)
        self.req_good = [X] * justifier.n_ff
        for name, val in required_good.items():
            self.req_good[cc.ff_out.index(cc.index[name])] = val
        self.req_faulty = [X] * justifier.n_ff
        for name, val in required_faulty.items():
            self.req_faulty[cc.ff_out.index(cc.index[name])] = val

    def evaluate(
        self, genomes: Sequence[int]
    ) -> Tuple[List[float], Optional[List[List[int]]]]:
        """Score every genome; return a justifying sequence if one appears."""
        fitnesses: List[float] = []
        for start in range(0, len(genomes), self.params.word_width):
            batch = genomes[start : start + self.params.word_width]
            scores, payload = self._evaluate_batch(batch)
            if payload is not None:
                fitnesses.extend(scores)
                fitnesses.extend([0.0] * (len(genomes) - len(fitnesses)))
                return fitnesses, payload
            fitnesses.extend(scores)
        return fitnesses, None

    # ------------------------------------------------------------------
    def _evaluate_batch(
        self, batch: Sequence[int]
    ) -> Tuple[List[float], Optional[List[List[int]]]]:
        j = self.j
        cc = j.cc
        w = len(batch)
        mask = full_mask(w)
        good_sim = make_simulator(cc, width=w, backend=j.backend)
        good_sim.set_state([pack_const(v, w) for v in self.start_good])
        injections = (
            [injection_for(cc, self.fault, mask)] if self.fault else []
        )
        faulty_sim = make_simulator(cc, width=w, injections=injections,
                                    backend=j.backend)
        # faulty circuit starts all-unknown (paper, Section IV-A)

        seq_len = max(1, self.params.seq_len)
        n_pi = j.n_pi
        fixed = j._fixed_pins
        hold = j._hold_pins
        for v in range(seq_len):
            vector = []
            base = v * n_pi
            for pin in range(n_pi):
                if pin in fixed:
                    vector.append(pack_const(fixed[pin], w))
                    continue
                bit = pin if pin in hold else base + pin
                p1 = 0
                for slot, genome in enumerate(batch):
                    p1 |= ((genome >> bit) & 1) << slot
                vector.append((p1, (~p1) & mask))
            good_sim.step(vector)
            faulty_sim.step(vector)
            good_match = self._match_counts(good_sim.get_state(), self.req_good, w)
            faulty_match = self._match_counts(
                faulty_sim.get_state(), self.req_faulty, w
            )
            for slot in range(w):
                if (
                    good_match[slot] == j.n_ff
                    and faulty_match[slot] == j.n_ff
                ):
                    return (
                        [0.0] * w,
                        j.decode(batch[slot], seq_len, v + 1),
                    )
        fitnesses = [
            self.params.good_weight * good_match[slot]
            + self.params.faulty_weight * faulty_match[slot]
            for slot in range(w)
        ]
        return fitnesses, None

    @staticmethod
    def _match_counts(
        state: Sequence[Tuple[int, int]], required: Sequence[int], w: int
    ) -> List[int]:
        """Per-slot count of flip-flops satisfying the requirement."""
        counts = [0] * w
        for (p1, p0), want in zip(state, required):
            if want == X:
                for slot in range(w):
                    counts[slot] += 1
                continue
            if want == 1:
                ok = p1 & ~p0
            else:
                ok = p0 & ~p1
            for slot in range(w):
                if ok & (1 << slot):
                    counts[slot] += 1
        return counts
