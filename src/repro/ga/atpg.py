"""Purely simulation-based GA test generation (GATEST/CRIS style).

The paper's premise is that *hybrid* beats both pure approaches: its
introduction cites simulation-based GA test generators (refs [15–18],
including the authors' own GATEST) whose strengths and weaknesses motivate
GA-HITEC.  This module implements that missing comparator so the
repository can reproduce the three-way story: GA-only versus
deterministic-only (HITEC) versus hybrid (GA-HITEC).

The generator targets *many faults at once*, forward simulation only:

1. A GA population of candidate vector sequences is evolved; the fitness
   of a sequence is the number of remaining faults it newly detects when
   appended to the test set, plus partial credit for faults whose
   flip-flop state diverges between good and faulty machines (fault
   *activation*, the standard simulation-based guidance).
2. The best sequence is committed, detected faults are dropped, per-fault
   states roll forward, and the loop repeats until several consecutive
   rounds add nothing.

No backtracing, no time frames, no untestability proofs — exactly the
profile the paper describes for simulation-based generators.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..circuit.netlist import Circuit
from ..clock import monotonic
from ..faults.collapse import collapse_faults
from ..faults.model import Fault
from ..hybrid.results import PassStats, RunResult
from ..simulation.compiled import CompiledCircuit, compile_circuit
from ..simulation.encoding import X
from ..simulation.fault_sim import FaultSimulator
from .engine import GAParams, GeneticAlgorithm


@dataclass
class GAAtpgParams:
    """Knobs for the simulation-based generator.

    Attributes:
        population_size: candidate sequences per generation.
        generations: GA generations per committed sequence.
        seq_len: vectors per candidate sequence.
        stale_rounds: stop after this many rounds without a new detection.
        max_vectors: hard cap on the emitted test-set length.
        activity_weight: fitness credit per state-divergent fault,
            relative to 1.0 per detected fault.
    """

    population_size: int = 16
    generations: int = 4
    seq_len: int = 8
    stale_rounds: int = 3
    max_vectors: int = 2000
    activity_weight: float = 0.05


class GASimulationTestGenerator:
    """Forward-only, multi-fault, GA-driven test generation.

    Args:
        circuit: circuit under test.
        seed: seed for all stochastic choices.
        width: fault-simulation word width.
    """

    def __init__(self, circuit: Circuit, seed: int = 0, width: int = 64):
        self.circuit = circuit
        self.cc: CompiledCircuit = compile_circuit(circuit)
        self.rng = random.Random(seed)
        self.sim = FaultSimulator(self.cc, width=width)
        self.n_pi = len(self.cc.pi)

    # ------------------------------------------------------------------
    def run(
        self,
        params: Optional[GAAtpgParams] = None,
        faults: Optional[Sequence[Fault]] = None,
        time_limit: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> RunResult:
        """Generate a test set; returns paper-style cumulative statistics."""
        params = params or GAAtpgParams()
        tick = clock or monotonic
        start_time = tick()
        remaining: List[Fault] = (
            list(faults) if faults is not None else collapse_faults(self.circuit)
        )
        total = len(remaining)
        result = RunResult(
            circuit_name=self.circuit.name,
            generator="GA-SIM",
            total_faults=total,
        )
        test_set: List[List[int]] = []
        good_state: List[int] = [X] * len(self.cc.ff_out)
        fault_states: Dict[Fault, List[int]] = {}
        detected: Dict[Fault, int] = {}

        stale = 0
        round_no = 0
        while (
            remaining
            and stale < params.stale_rounds
            and len(test_set) < params.max_vectors
        ):
            if (
                time_limit is not None
                and tick() - start_time >= time_limit
            ):
                break
            round_no += 1
            sequence = self._evolve_sequence(
                params, remaining, good_state, fault_states
            )
            # trial states: only committed sequences may advance the real
            # per-fault states, or they desynchronise from the test set
            trial_states = {f: list(s) for f, s in fault_states.items()}
            outcome = self.sim.run(
                sequence, remaining,
                good_state=list(good_state), fault_states=trial_states,
            )
            if outcome.detected:
                base = len(test_set)
                test_set.extend(sequence)
                good_state = outcome.good_state
                fault_states = trial_states
                for fault in outcome.detected:
                    detected[fault] = base
                remaining = [f for f in remaining if f not in outcome.detected]
                stale = 0
            else:
                stale += 1  # discard: states stay aligned with the test set

            result.passes.append(
                PassStats(
                    number=round_no,
                    approach="ga-sim",
                    detected=len(detected),
                    vectors=len(test_set),
                    time_s=tick() - start_time,
                    untestable=0,  # simulation alone can prove nothing
                )
            )

        result.test_set = test_set
        result.detected = detected
        return result

    # ------------------------------------------------------------------
    def _evolve_sequence(
        self,
        params: GAAtpgParams,
        remaining: Sequence[Fault],
        good_state: Sequence[int],
        fault_states: Dict[Fault, List[int]],
    ) -> List[List[int]]:
        n_bits = params.seq_len * self.n_pi

        def evaluator(genomes):
            scores = []
            for genome in genomes:
                sequence = self._decode(genome, params.seq_len)
                trial_states = {f: list(s) for f, s in fault_states.items()}
                outcome = self.sim.run(
                    sequence,
                    remaining,
                    good_state=list(good_state),
                    fault_states=trial_states,
                    stop_on_all_detected=False,
                )
                active = sum(
                    1
                    for f, state in trial_states.items()
                    if f not in outcome.detected
                    and self._diverged(state, outcome.good_state)
                )
                scores.append(
                    len(outcome.detected) + params.activity_weight * active
                )
            return scores, None

        ga: GeneticAlgorithm = GeneticAlgorithm(
            n_bits,
            GAParams(
                population_size=params.population_size,
                generations=params.generations,
            ),
            evaluator,
            rng=self.rng,
        )
        outcome = ga.run()
        return self._decode(outcome.best_genome, params.seq_len)

    def _decode(self, genome: int, seq_len: int) -> List[List[int]]:
        return [
            [(genome >> (v * self.n_pi + i)) & 1 for i in range(self.n_pi)]
            for v in range(seq_len)
        ]

    @staticmethod
    def _diverged(fault_state: Sequence[int], good_state: Sequence[int]) -> bool:
        """True when some flip-flop provably differs between the machines."""
        return any(
            f != g and f != X and g != X
            for f, g in zip(fault_state, good_state)
        )
