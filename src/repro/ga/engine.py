"""The simple genetic algorithm from the paper (Goldberg-style).

Individuals are fixed-length binary strings stored as Python integers.
The population evolves with the exact operators the paper specifies:

* **tournament selection without replacement** — pairs are drawn randomly
  and removed from the selection pool, the fitter of each pair becomes a
  parent, and the pool is only refilled once it empties;
* **uniform crossover** with crossover probability 1 — each bit position
  swaps between the two parents with probability 1/2;
* **bitwise mutation** with probability 1/64 per bit;
* **non-overlapping generations** — the offspring replace the entire
  parent population — with the best individual ever seen saved aside.

Fitness evaluation is delegated to a batch evaluator so the caller can
score a whole population with bit-parallel simulation and signal early
termination the moment a satisfying individual appears.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Generic, List, Optional, Sequence, Tuple, TypeVar

from ..telemetry import NULL_RECORDER, Recorder

T = TypeVar("T")

#: Batch evaluator: genomes -> (fitness per genome, early-exit payload).
#: A non-``None`` payload stops evolution immediately.
Evaluator = Callable[[Sequence[int]], Tuple[List[float], Optional[T]]]


@dataclass
class GAParams:
    """Evolution parameters (paper defaults).

    Attributes:
        population_size: number of individuals (a multiple of the
            simulator word width keeps every simulation slot busy).
        generations: generations to evolve before giving up.
        mutation_rate: per-bit flip probability.
        crossover_rate: probability a selected pair is crossed (the paper
            uses 1: parents are always crossed).
    """

    population_size: int = 64
    generations: int = 4
    mutation_rate: float = 1.0 / 64.0
    crossover_rate: float = 1.0


@dataclass
class GAResult(Generic[T]):
    """Outcome of a GA run.

    Attributes:
        best_genome: highest-fitness individual observed in any generation.
        best_fitness: its fitness.
        payload: early-exit payload from the evaluator, or ``None`` when
            the run completed all generations without success.
        generations_run: generations actually evaluated.
        evaluations: total individuals scored.
    """

    best_genome: int
    best_fitness: float
    payload: Optional[T]
    generations_run: int
    evaluations: int


def mutate(genome: int, n_bits: int, rate: float, rng: random.Random) -> int:
    """Flip each of ``n_bits`` with probability ``rate`` (geometric skips)."""
    if rate <= 0.0:
        return genome
    if rate >= 1.0:
        return genome ^ ((1 << n_bits) - 1)
    i = 0
    # jump from flipped bit to flipped bit instead of testing every bit
    while True:
        u = rng.random()
        if u <= 0.0:
            u = 1e-12
        skip = int(math.log(u) / math.log(1.0 - rate))
        i += skip
        if i >= n_bits:
            return genome
        genome ^= 1 << i
        i += 1


def uniform_crossover(
    a: int, b: int, n_bits: int, rng: random.Random
) -> Tuple[int, int]:
    """Swap each bit position between two parents with probability 1/2."""
    swap_mask = rng.getrandbits(n_bits) if n_bits else 0
    child_a = (a & ~swap_mask) | (b & swap_mask)
    child_b = (b & ~swap_mask) | (a & swap_mask)
    return child_a, child_b


class TournamentSelector:
    """Tournament selection *without replacement*, as the paper specifies.

    Two individuals are drawn at random and removed from the pool; the
    fitter one is selected.  Individuals return to the pool only after the
    whole population has been consumed, so every individual competes
    exactly once per refill.
    """

    def __init__(self, rng: random.Random):
        self._rng = rng
        self._pool: List[int] = []

    def select(self, fitnesses: Sequence[float]) -> int:
        """Return the index of the next selected parent."""
        n = len(fitnesses)
        if len(self._pool) < 2:
            self._pool = list(range(n))
            self._rng.shuffle(self._pool)
        a = self._pool.pop()
        b = self._pool.pop()
        return a if fitnesses[a] >= fitnesses[b] else b

    def reset(self) -> None:
        """Empty the pool (called between generations)."""
        self._pool = []


class GeneticAlgorithm(Generic[T]):
    """The paper's simple GA over fixed-length binary genomes.

    Args:
        n_bits: genome length in bits.
        params: evolution parameters.
        evaluator: batch fitness function with early-exit payload.
        rng: random source (seed it for reproducible runs).
        telemetry: metrics recorder (defaults to the shared no-op).
    """

    def __init__(
        self,
        n_bits: int,
        params: GAParams,
        evaluator: Evaluator,
        rng: Optional[random.Random] = None,
        telemetry: Optional[Recorder] = None,
    ):
        if n_bits <= 0:
            raise ValueError("genomes need at least one bit")
        if params.population_size < 2 or params.population_size % 2:
            raise ValueError("population size must be even and at least 2")
        self.n_bits = n_bits
        self.params = params
        self.evaluator = evaluator
        self.rng = rng or random.Random()
        self.telemetry = telemetry or NULL_RECORDER

    def random_population(self) -> List[int]:
        """Uniform random initial population."""
        return [
            self.rng.getrandbits(self.n_bits)
            for _ in range(self.params.population_size)
        ]

    def run(self, initial: Optional[Sequence[int]] = None) -> GAResult[T]:
        """Evolve until the evaluator signals success or generations run out."""
        population = list(initial) if initial else self.random_population()
        if len(population) != self.params.population_size:
            raise ValueError("initial population has the wrong size")
        best_genome, best_fitness = population[0], float("-inf")
        evaluations = 0
        selector = TournamentSelector(self.rng)

        result: Optional[GAResult[T]] = None
        for generation in range(self.params.generations):
            fitnesses, payload = self.evaluator(population)
            evaluations += len(population)
            for genome, fit in zip(population, fitnesses):
                if fit > best_fitness:
                    best_genome, best_fitness = genome, fit
            if payload is not None:
                result = GAResult(
                    best_genome, best_fitness, payload, generation + 1, evaluations
                )
                break
            population = self._next_generation(population, fitnesses, selector)

        if result is None:
            result = GAResult(
                best_genome, best_fitness, None, self.params.generations,
                evaluations,
            )
        telemetry = self.telemetry
        telemetry.count("ga.runs")
        telemetry.count("ga.generations", result.generations_run)
        telemetry.count("ga.evaluations", result.evaluations)
        return result

    def _next_generation(
        self,
        population: List[int],
        fitnesses: List[float],
        selector: TournamentSelector,
    ) -> List[int]:
        rng = self.rng
        params = self.params
        selector.reset()
        offspring: List[int] = []
        while len(offspring) < params.population_size:
            pa = population[selector.select(fitnesses)]
            pb = population[selector.select(fitnesses)]
            if rng.random() < params.crossover_rate:
                ca, cb = uniform_crossover(pa, pb, self.n_bits, rng)
            else:
                ca, cb = pa, pb
            offspring.append(mutate(ca, self.n_bits, params.mutation_rate, rng))
            offspring.append(mutate(cb, self.n_bits, params.mutation_rate, rng))
        return offspring[: params.population_size]
