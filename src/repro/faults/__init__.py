"""Fault models (stuck-at, transition), universes, and collapsing."""

from .model import (
    DEFAULT_FAULT_MODEL,
    Fault,
    FaultModel,
    FaultModelError,
    fault_model_names,
    fault_site_known,
    full_fault_list,
    parse_fault,
    register_fault_model,
    resolve_fault_model,
)
from .collapse import collapse_faults, collapse_ratio, equivalence_classes

__all__ = [
    "DEFAULT_FAULT_MODEL",
    "Fault",
    "FaultModel",
    "FaultModelError",
    "collapse_faults",
    "collapse_ratio",
    "equivalence_classes",
    "fault_model_names",
    "fault_site_known",
    "full_fault_list",
    "parse_fault",
    "register_fault_model",
    "resolve_fault_model",
]
