"""Single stuck-at fault model, fault universes, and equivalence collapsing."""

from .model import Fault, fault_site_known, full_fault_list
from .collapse import collapse_faults, collapse_ratio, equivalence_classes

__all__ = [
    "Fault",
    "collapse_faults",
    "collapse_ratio",
    "equivalence_classes",
    "fault_site_known",
    "full_fault_list",
]
