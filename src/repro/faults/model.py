"""Fault sites, fault objects, and the pluggable fault-model registry.

A fault sits either on a net itself (a *stem* fault, affecting every
reader) or on one gate's input pin (a *branch* fault on a fanout stem,
affecting only that gate).  Branch faults are enumerated only where the
source net actually fans out to more than one observation point — more
than one reading gate, or one reading gate on a net that is *also* a
primary output; on single-observer nets the branch is structurally
identical to the stem.

Sites are shared across fault models; what a fault *means* at a site is
the model's business, captured by a registered :class:`FaultModel`:

* ``stuck_at`` (the default, and the paper's model) — the site is forced
  to a constant; detection is single-frame observation of the D value.
* ``transition`` (gross-delay) — the site is too slow to change: its
  value in frame ``t`` is the stuck-direction combination of frames
  ``t`` and ``t-1`` (slow-to-rise keeps a 0 one extra frame, slow-to-fall
  keeps a 1).  Detection needs a launch/capture *pair* of frames: one to
  set the initial value, one to attempt the transition and observe.

The printed grammar is model-qualified and :func:`parse_fault` is its
exact inverse::

    NET s-a-V              stem stuck-at-V
    NET->GATE.PIN s-a-V    branch stuck-at-V
    NET s-t-r              stem slow-to-rise (initial value 0)
    NET->GATE.PIN s-t-f    branch slow-to-fall (initial value 1)

``stuck`` doubles as the transition polarity: ``stuck=0`` is slow-to-rise
(the site lingers at 0), ``stuck=1`` slow-to-fall.  That reuse keeps
every downstream consumer of ``fault.stuck`` (excitation objectives,
SCOAP features, D-value orientation) meaningful under both models: to
*excite* the fault you must drive the site to ``1 - stuck`` — for
stuck-at against the constant, for transition against the lingering
initial value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..circuit.netlist import Circuit

#: The model every fault belongs to unless it says otherwise.
DEFAULT_FAULT_MODEL = "stuck_at"

#: Printed suffix per (model, stuck) — extended by register_fault_model().
_SUFFIX: Dict[Tuple[str, int], str] = {
    ("stuck_at", 0): "s-a-0",
    ("stuck_at", 1): "s-a-1",
    ("transition", 0): "s-t-r",
    ("transition", 1): "s-t-f",
}
#: Inverse of _SUFFIX, for parse_fault().
_PARSE: Dict[str, Tuple[str, int]] = {v: k for k, v in _SUFFIX.items()}
#: Model names Fault.__post_init__ accepts (registry-backed).
_MODEL_NAMES = {"stuck_at", "transition"}


class FaultModelError(ValueError):
    """An unknown fault-model name was requested."""


@dataclass(frozen=True, order=True)
class Fault:
    """A single fault under some registered fault model.

    Attributes:
        net: the net the fault site rides on.
        stuck: the stuck logic value (stuck-at), or the lingering initial
            value (transition: 0 = slow-to-rise, 1 = slow-to-fall).
        gate: output net of the reading gate for a branch fault
            (empty string for a stem fault).
        pin: input pin index on that gate (-1 for a stem fault).
        model: registered fault-model name.  Appended with a default so
            stuck-at fault ordering, equality, and construction are
            unchanged from the model-less days.
    """

    net: str
    stuck: int
    gate: str = ""
    pin: int = -1
    model: str = DEFAULT_FAULT_MODEL

    def __post_init__(self) -> None:
        if self.stuck not in (0, 1):
            raise ValueError(f"stuck value must be 0 or 1, got {self.stuck!r}")
        if self.model not in _MODEL_NAMES:
            raise FaultModelError(
                f"unknown fault model {self.model!r} "
                f"(registered: {', '.join(sorted(_MODEL_NAMES))})"
            )

    @property
    def is_branch(self) -> bool:
        """True for a fault on a specific gate input pin."""
        return bool(self.gate)

    @property
    def site(self) -> str:
        """The printed site part: ``NET`` or ``NET->GATE.PIN``."""
        return f"{self.net}->{self.gate}.{self.pin}" if self.is_branch else self.net

    def __str__(self) -> str:
        return f"{self.site} {_SUFFIX[(self.model, self.stuck)]}"


def parse_fault(text: str) -> Fault:
    """Exact inverse of ``str(Fault)`` over the model-qualified grammar.

    Accepts ``NET s-a-V``, ``NET->GATE.PIN s-a-V``, ``NET s-t-r``,
    ``NET s-t-f`` and the branch forms thereof.  Raises ``ValueError``
    for anything else (including negative or non-numeric pin indices).
    """
    name = text.strip()
    site, sep, suffix = name.rpartition(" ")
    if not sep or suffix not in _PARSE:
        raise ValueError(
            f"unparseable fault {text!r}: expected "
            f"'SITE {{{'|'.join(sorted(_PARSE))}}}'"
        )
    model, stuck = _PARSE[suffix]
    if "->" not in site:
        if not site:
            raise ValueError(f"unparseable fault {text!r}: empty site")
        return Fault(site, stuck, model=model)
    net, _, rest = site.partition("->")
    gate, dot, pin_text = rest.rpartition(".")
    if not net or not dot or not gate or not pin_text.isdigit():
        raise ValueError(f"unparseable branch fault {text!r}")
    return Fault(net, stuck, gate=gate, pin=int(pin_text), model=model)


def _site_fault_list(circuit: Circuit, model: str) -> List[Fault]:
    """Enumerate the uncollapsed per-site fault universe under ``model``.

    Two faults per net (both polarities), plus two branch faults per gate
    input pin whose source net has more than one observation point —
    either fanout greater than one, or fanout of one on a net that is
    *also* a primary output (the PO observes the stem directly, so the
    branch into the gate is a distinct fault).  The list order is
    deterministic: nets in declaration order, stems before branches.
    """
    faults: List[Fault] = []
    fanout = circuit.fanout
    po_set = set(circuit.outputs)
    for net in circuit.nets:
        faults.append(Fault(net, 0, model=model))
        faults.append(Fault(net, 1, model=model))
    for net in circuit.nets:
        readers = fanout[net]
        if len(readers) + (1 if net in po_set else 0) <= 1:
            continue
        for gate_out, pin in readers:
            faults.append(Fault(net, 0, gate=gate_out, pin=pin, model=model))
            faults.append(Fault(net, 1, gate=gate_out, pin=pin, model=model))
    return faults


def full_fault_list(
    circuit: Circuit, model: str = DEFAULT_FAULT_MODEL
) -> List[Fault]:
    """Enumerate the uncollapsed fault universe of a circuit under ``model``."""
    return resolve_fault_model(model).full_faults(circuit)


def fault_site_known(circuit: Circuit, fault: Fault) -> bool:
    """Check that the fault references real structure (for input validation).

    A stem fault must name a driven or primary-input net and carry no
    stray pin index; a branch fault must additionally name a real reading
    gate and the exact pin the net feeds.  A branch into a gate fed by a
    net that is also a primary output is a valid site (the PO is the
    second observation point that makes the branch distinct).
    """
    if fault.net not in circuit.inputs and fault.net not in circuit.gates:
        return False
    if not fault.is_branch:
        # reject malformed stem faults carrying a pin index
        return fault.pin == -1
    g = circuit.gates.get(fault.gate)
    if g is None:
        return False
    if fault.pin < 0 or fault.pin >= len(g.inputs):
        return False
    return g.inputs[fault.pin] == fault.net


# ----------------------------------------------------------------------
# fault-model registry
# ----------------------------------------------------------------------


class FaultModel:
    """What a fault *means*: enumeration, collapse, and detection shape.

    Everything a layer needs to stay model-agnostic is a field or method
    here; the simulation backends additionally dispatch on
    ``Injection.model`` for the per-frame activation condition (see
    :mod:`repro.simulation.logic_sim`).

    Attributes:
        name: registry key, also the value of ``Fault.model``.
        suffixes: printed fault-string suffix per polarity.
        min_window: smallest unrolled window (in frames) that can detect
            a fault — 1 for single-frame observation (stuck-at), 2 for a
            launch/capture pair (transition).
        inject_from_frame: first unrolled frame the engine's faulty
            machine diverges in.  0 for stuck-at (always active); 1 for
            transition, where frame 0 sets the pre-transition value and
            the launch happens at the frame boundary.
        local_collapse: whether gate-local structural-equivalence rules
            (controlling-value, BUF/NOT folding) are sound.  They are not
            for transition faults — a test for a slow-to-rise gate input
            need not launch a transition on the gate output.
        untestable_proofs: whether the unrolled engine's untestability
            proofs are sound under this model.  False for transition:
            the engine searches an approximation of the two-frame
            semantics, so exhaustion proves nothing.
    """

    name: str = ""
    suffixes: Mapping[int, str] = {}
    min_window: int = 1
    inject_from_frame: int = 0
    local_collapse: bool = True
    untestable_proofs: bool = True

    def full_faults(self, circuit: Circuit) -> List[Fault]:
        """The uncollapsed fault universe for ``circuit``."""
        return _site_fault_list(circuit, self.name)

    def collapse(self, circuit: Circuit) -> List[Fault]:
        """One representative per equivalence class, sorted."""
        raise NotImplementedError


class StuckAtModel(FaultModel):
    """Single stuck-at: the site is a constant, observed in any frame."""

    name = "stuck_at"
    suffixes = {0: "s-a-0", 1: "s-a-1"}
    min_window = 1
    inject_from_frame = 0
    local_collapse = True
    untestable_proofs = True

    def collapse(self, circuit: Circuit) -> List[Fault]:
        from .collapse import _collapse_stuck_at

        return _collapse_stuck_at(circuit)


class TransitionModel(FaultModel):
    """Gross-delay transition: the site holds its previous frame's value
    one frame too long in the stuck direction.  Launch/capture detection.
    """

    name = "transition"
    suffixes = {0: "s-t-r", 1: "s-t-f"}
    min_window = 2
    inject_from_frame = 1
    local_collapse = False
    untestable_proofs = False

    def collapse(self, circuit: Circuit) -> List[Fault]:
        # no sound gate-local equivalences: a slow input pin and a slow
        # gate output delay *different* transitions.  Dedupe + sort only.
        return sorted(set(self.full_faults(circuit)))


_MODELS: Dict[str, FaultModel] = {}


def register_fault_model(model: FaultModel) -> FaultModel:
    """Register ``model`` under ``model.name`` (idempotent by name)."""
    if not model.name:
        raise FaultModelError("fault model must have a name")
    _MODELS[model.name] = model
    _MODEL_NAMES.add(model.name)
    for stuck, suffix in model.suffixes.items():
        _SUFFIX[(model.name, stuck)] = suffix
        _PARSE.setdefault(suffix, (model.name, stuck))
    return model


def resolve_fault_model(name: str) -> FaultModel:
    """Look up a registered fault model by name."""
    try:
        return _MODELS[name]
    except KeyError:
        raise FaultModelError(
            f"unknown fault model {name!r} "
            f"(registered: {', '.join(sorted(_MODELS))})"
        ) from None


def fault_model_names() -> List[str]:
    """Names of all registered fault models, sorted."""
    return sorted(_MODELS)


register_fault_model(StuckAtModel())
register_fault_model(TransitionModel())
