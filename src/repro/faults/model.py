"""Single stuck-at fault model.

A fault sits either on a net itself (a *stem* fault, affecting every
reader) or on one gate's input pin (a *branch* fault on a fanout stem,
affecting only that gate).  Branch faults are enumerated only where the
source net actually fans out to more than one reader; on single-fanout
nets the branch is structurally identical to the stem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..circuit.netlist import Circuit


@dataclass(frozen=True, order=True)
class Fault:
    """A single stuck-at fault.

    Attributes:
        net: the net the fault value rides on.
        stuck: the stuck logic value, 0 or 1.
        gate: output net of the reading gate for a branch fault
            (empty string for a stem fault).
        pin: input pin index on that gate (-1 for a stem fault).
    """

    net: str
    stuck: int
    gate: str = ""
    pin: int = -1

    def __post_init__(self) -> None:
        if self.stuck not in (0, 1):
            raise ValueError(f"stuck value must be 0 or 1, got {self.stuck!r}")

    @property
    def is_branch(self) -> bool:
        """True for a fault on a specific gate input pin."""
        return bool(self.gate)

    def __str__(self) -> str:
        site = f"{self.net}->{self.gate}.{self.pin}" if self.is_branch else self.net
        return f"{site} s-a-{self.stuck}"


def full_fault_list(circuit: Circuit) -> List[Fault]:
    """Enumerate the uncollapsed stuck-at fault universe of a circuit.

    Two stem faults per net, plus two branch faults per gate input pin
    whose source net has more than one observation point — either fanout
    greater than one, or fanout of one on a net that is *also* a primary
    output (the PO observes the stem directly, so the branch into the gate
    is a distinct fault).  The list order is deterministic: nets in
    declaration order, stems before branches.
    """
    faults: List[Fault] = []
    fanout = circuit.fanout
    po_set = set(circuit.outputs)
    for net in circuit.nets:
        faults.append(Fault(net, 0))
        faults.append(Fault(net, 1))
    for net in circuit.nets:
        readers = fanout[net]
        if len(readers) + (1 if net in po_set else 0) <= 1:
            continue
        for gate_out, pin in readers:
            faults.append(Fault(net, 0, gate=gate_out, pin=pin))
            faults.append(Fault(net, 1, gate=gate_out, pin=pin))
    return faults


def fault_site_known(circuit: Circuit, fault: Fault) -> bool:
    """Check that the fault references real structure (for input validation)."""
    if fault.net not in circuit.inputs and fault.net not in circuit.gates:
        return False
    if fault.is_branch:
        g = circuit.gates.get(fault.gate)
        if g is None or fault.pin < 0 or fault.pin >= len(g.inputs):
            return False
        if g.inputs[fault.pin] != fault.net:
            return False
    return True
