"""Structural fault-equivalence collapsing.

Two faults are structurally equivalent when every test for one detects the
other.  The classic local rules implemented here are *stuck-at* rules:

* a controlling input value ``c`` on an AND/NAND/OR/NOR gate is equivalent
  to the output stuck at ``c XOR inversion``;
* BUF/NOT/DFF input faults are equivalent to the corresponding (possibly
  inverted) output faults — the DFF case is sequential equivalence, as
  HITEC-era tools collapse it;
* a branch fault on a single-fanout net is identical to the stem fault
  (we never enumerate those in the first place).

Equivalence classes are built with union-find; the returned representative
of each class is the lexicographically smallest member, so collapsing is
deterministic.

Other fault models bring their own collapse rules:
:func:`collapse_faults` dispatches through the
:mod:`repro.faults.model` registry for any non-default ``model`` (the
transition model, for instance, has *no* sound gate-local equivalences
and only deduplicates its site list).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..circuit.gates import CONTROLLING_VALUE, INVERSION, GateType
from ..circuit.netlist import Circuit
from .model import DEFAULT_FAULT_MODEL, Fault, resolve_fault_model
from .model import _site_fault_list


class _UnionFind:
    def __init__(self):
        self.parent: Dict[Fault, Fault] = {}

    def find(self, f: Fault) -> Fault:
        parent = self.parent
        parent.setdefault(f, f)
        root = f
        while parent[root] != root:
            root = parent[root]
        while parent[f] != root:  # path compression
            parent[f], f = root, parent[f]
        return root

    def union(self, a: Fault, b: Fault) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # keep the smaller fault as the class root for determinism
            lo, hi = (ra, rb) if ra < rb else (rb, ra)
            self.parent[hi] = lo

    def add(self, f: Fault) -> None:
        self.parent.setdefault(f, f)


def _input_fault(circuit: Circuit, gate_out: str, pin: int, stuck: int) -> Fault:
    """The fault object seen at one gate input pin.

    On a net with a single observation point the pin fault *is* the stem
    fault; with multiple observation points (fanout > 1, or a primary
    output that is also read by a gate) it is the branch fault.
    """
    src = circuit.gates[gate_out].inputs[pin]
    observers = len(circuit.fanout[src]) + (1 if src in circuit.outputs else 0)
    if observers <= 1:
        return Fault(src, stuck)
    return Fault(src, stuck, gate=gate_out, pin=pin)


def equivalence_classes(circuit: Circuit) -> Dict[Fault, Fault]:
    """Map every stuck-at fault in the full universe to its representative."""
    uf = _UnionFind()
    for f in _site_fault_list(circuit, DEFAULT_FAULT_MODEL):
        uf.add(f)

    for g in circuit.gates.values():
        gtype = g.gtype
        if gtype in (GateType.BUF, GateType.NOT, GateType.DFF):
            inv = INVERSION[gtype]
            for stuck in (0, 1):
                fin = _input_fault(circuit, g.output, 0, stuck)
                fout = Fault(g.output, stuck ^ inv)
                uf.add(fin)
                uf.union(fin, fout)
            continue
        ctrl = CONTROLLING_VALUE.get(gtype)
        if ctrl is None:
            continue  # XOR/XNOR/constants: no local equivalence
        inv = INVERSION[gtype]
        fout = Fault(g.output, ctrl ^ inv)
        for pin in range(len(g.inputs)):
            fin = _input_fault(circuit, g.output, pin, ctrl)
            uf.add(fin)
            uf.union(fin, fout)

    return {f: uf.find(f) for f in list(uf.parent)}


def _collapse_stuck_at(circuit: Circuit) -> List[Fault]:
    """The stuck-at collapse (union-find over the local rules)."""
    mapping = equivalence_classes(circuit)
    return sorted(set(mapping.values()))


def collapse_faults(
    circuit: Circuit, model: str = DEFAULT_FAULT_MODEL
) -> List[Fault]:
    """Return one representative fault per equivalence class under ``model``.

    The list is sorted, so downstream fault-list processing is reproducible
    run to run.
    """
    if model == DEFAULT_FAULT_MODEL:
        return _collapse_stuck_at(circuit)
    return resolve_fault_model(model).collapse(circuit)


def collapse_ratio(
    circuit: Circuit, model: str = DEFAULT_FAULT_MODEL
) -> Tuple[int, int]:
    """Return ``(full_universe_size, collapsed_size)`` for reporting."""
    fm = resolve_fault_model(model)
    return len(fm.full_faults(circuit)), len(fm.collapse(circuit))
