"""Registry of ISCAS89 benchmark stand-ins.

The real ISCAS89 netlists are distribution-restricted; apart from s27
(embedded verbatim in :mod:`repro.circuits.s27`), every circuit returned
here is a deterministic synthetic stand-in with the original's interface
statistics — PI/PO/flip-flop counts from the benchmark documentation,
approximate gate count, and the sequential depth the paper reports in
Table II.  The styles mark which originals are control-dominant (FSM
benchmarks, where deterministic ATPG shines) versus data-dominant
(counter/datapath benchmarks, where simulation-based justification
shines), so the stand-ins reproduce the paper's qualitative split.

See DESIGN.md §3 for why this substitution preserves the experiment: both
generators under comparison run on identical circuits, exercising the
identical code paths the paper compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..circuit.netlist import Circuit
from .generators import synthetic_sequential
from .s27 import s27


@dataclass(frozen=True)
class CircuitSpec:
    """Interface statistics and paper metadata for one benchmark.

    Attributes:
        name: benchmark name (e.g. ``"s298"``).
        n_pi / n_po / n_ff / n_gates: interface statistics of the original.
        seq_depth: sequential depth as reported in the paper's Table II.
        style: generator style (control / data / mixed).
        paper_total_faults: the paper's "Total Faults" column.
        paper_seq_scale: (pass-1, pass-2) test-sequence lengths as a
            multiple of the sequential depth (Table II uses 4× and 8× for
            most circuits, ¼× and ½× for s5378 and s35932).
    """

    name: str
    n_pi: int
    n_po: int
    n_ff: int
    n_gates: int
    seq_depth: int
    style: str
    paper_total_faults: int
    paper_seq_scale: "tuple[float, float]" = (4.0, 8.0)


#: Interface statistics (ISCAS89 documentation) + Table II metadata.
ISCAS89_SPECS: Dict[str, CircuitSpec] = {
    spec.name: spec
    for spec in [
        CircuitSpec("s27", 4, 1, 3, 10, 3, "control", 52),
        CircuitSpec("s298", 3, 6, 14, 119, 8, "control", 308),
        CircuitSpec("s344", 9, 11, 15, 160, 6, "mixed", 342),
        CircuitSpec("s349", 9, 11, 15, 161, 6, "mixed", 350),
        CircuitSpec("s382", 3, 6, 21, 158, 11, "control", 399),
        CircuitSpec("s386", 7, 7, 6, 159, 5, "control", 384),
        CircuitSpec("s400", 3, 6, 21, 162, 11, "control", 426),
        CircuitSpec("s444", 3, 6, 21, 181, 11, "control", 474),
        CircuitSpec("s526", 3, 6, 21, 193, 11, "control", 555),
        CircuitSpec("s641", 35, 24, 19, 379, 6, "mixed", 467),
        CircuitSpec("s713", 35, 23, 19, 393, 6, "mixed", 581),
        CircuitSpec("s820", 18, 19, 5, 289, 4, "control", 850),
        CircuitSpec("s832", 18, 19, 5, 287, 4, "control", 870),
        CircuitSpec("s1196", 14, 14, 18, 529, 4, "mixed", 1242),
        CircuitSpec("s1238", 14, 14, 18, 508, 4, "mixed", 1355),
        CircuitSpec("s1423", 17, 5, 74, 657, 10, "data", 1515),
        CircuitSpec("s1488", 8, 19, 6, 653, 5, "control", 1486),
        CircuitSpec("s1494", 8, 19, 6, 647, 5, "control", 1506),
        CircuitSpec("s5378", 35, 49, 179, 2779, 36, "mixed", 4603, (0.25, 0.5)),
        CircuitSpec("s35932", 35, 320, 1728, 16065, 35, "data", 39094, (0.25, 0.5)),
    ]
}

#: Circuits small enough for quick test/benchmark runs (pure Python ATPG).
QUICK_SET: List[str] = ["s27", "s298", "s344", "s386", "s382"]


def iscas89(name: str) -> Circuit:
    """Build the named benchmark (s27 verbatim; others as stand-ins).

    Raises:
        KeyError: for names outside the ISCAS89 set used in the paper.
    """
    spec = ISCAS89_SPECS[name]
    if name == "s27":
        return s27()
    return synthetic_sequential(
        name=spec.name,
        n_pi=spec.n_pi,
        n_po=spec.n_po,
        n_ff=spec.n_ff,
        n_gates=spec.n_gates,
        seq_depth=spec.seq_depth,
        seed=int(spec.name[1:]),
        style=spec.style,
    )


def available() -> List[str]:
    """Benchmark names in Table II order."""
    return list(ISCAS89_SPECS)
