"""16-bit divider by repeated subtraction (the paper's ``div`` circuit).

The paper describes ``div`` as "a 16-bit divider which uses repeated
subtraction to perform division".  This implementation latches the
dividend into a remainder register and the divisor into a divisor
register on ``start``; while the remainder is at least the divisor (and
the divisor is non-zero), it subtracts and increments the quotient, then
drops ``busy``.

Interface::

    inputs : start, dividend[16], divisor[16]
    outputs: quotient[16], remainder[16], done, div_by_zero
"""

from __future__ import annotations

from ...circuit.netlist import Circuit
from ...rtl.builder import RtlBuilder


def div16(width: int = 16, name: str = "div") -> Circuit:
    """Build the repeated-subtraction divider (parameterised width)."""
    b = RtlBuilder(name)
    start = b.input_bit("start")
    dividend = b.input_bus("dividend", width)
    divisor = b.input_bus("divisor", width)

    rem = b.register_loop(width, "rem")
    quo = b.register_loop(width, "quo")
    dreg = b.register_loop(width, "dvr")
    busy = b.register_loop(1, "busy")

    diff, geq = b.sub(rem.q, dreg.q)  # geq: no borrow, i.e. rem >= divisor
    dzero = b.is_zero(dreg.q)
    stepping = b.and_(busy.q[0], geq, b.not_(dzero))

    # next-state muxes: start overrides everything
    rem_step = b.mux2(stepping, rem.q, diff)
    rem.drive(b.mux2(start, rem_step, dividend))

    quo_step = b.mux2(stepping, quo.q, b.inc(quo.q))
    quo.drive(b.mux2(start, quo_step, b.const_bus(0, width)))

    dreg.drive(b.mux2(start, dreg.q, divisor))

    busy_next = b.or_(start, stepping)
    busy.drive([busy_next])

    b.output_bus(quo.q, "quotient")
    b.output_bus(rem.q, "remainder")
    b.output_bit(b.not_(busy.q[0]))
    b.output_bit(b.and_(dzero, busy.q[0]))
    return b.build()
