"""12-bit microprogram sequencer modelled on the AMD Am2910.

The paper's Am2910 circuit is "a 12-bit microprogram sequencer similar to
the one described in [the AMD data book]".  This implementation follows
the classic architecture: a microprogram counter (uPC), a register/counter
(R), a five-deep subroutine/loop stack, and a next-address mux selecting
among uPC, the direct input D, the register R, and the stack top, decoded
from a 4-bit instruction.  The stack is the common shift-register
realisation (push shifts down, pop shifts up) plus a depth counter for the
FULL flag.

All sixteen instructions are implemented with their conventional
behaviour (JZ, CJS, JMAP, CJP, PUSH, JSRP, CJV, JRP, RFCT, RPCT, CRTN,
CJPP, LDCT, LOOP, CONT, TWB); ``cc`` is the already-polarised
condition-pass signal (the CCEN/CC input network of the real part).

Interface::

    inputs : instr[4], d[12], cc
    outputs: y[12], pl, map, vect, full
"""

from __future__ import annotations

from typing import List

from ...circuit.netlist import Circuit
from ...rtl.builder import Bus, RtlBuilder

#: Instruction opcodes, per the Am2910 data sheet ordering.
JZ, CJS, JMAP, CJP, PUSH, JSRP, CJV, JRP = range(8)
RFCT, RPCT, CRTN, CJPP, LDCT, LOOP, CONT, TWB = range(8, 16)

STACK_DEPTH = 5


def am2910(width: int = 12, name: str = "am2910") -> Circuit:
    """Build the microprogram sequencer (parameterised address width)."""
    b = RtlBuilder(name)
    instr = b.input_bus("instr", 4)
    d = b.input_bus("d", width)
    cc = b.input_bit("cc")

    upc = b.register_loop(width, "upc")
    r = b.register_loop(width, "r")
    stack = [b.register_loop(width, f"stk{i}") for i in range(STACK_DEPTH)]
    depth = b.register_loop(3, "depth")

    op = b.decoder(instr)  # one-hot, op[JZ] .. op[TWB]
    ncc = b.not_(cc)
    r_zero = b.is_zero(r.q)
    r_nonzero = b.not_(r_zero)
    top = stack[0].q

    zero_bus = b.const_bus(0, width)

    # ------------------------------------------------------------------
    # next-address (Y) selection per instruction
    # ------------------------------------------------------------------
    def pick(cond: str, when_true: Bus, when_false: Bus) -> Bus:
        return b.mux2(cond, when_false, when_true)

    y_options: List[Bus] = [
        zero_bus,                      # JZ
        pick(cc, d, upc.q),            # CJS: jump subroutine if pass
        d,                             # JMAP
        pick(cc, d, upc.q),            # CJP
        upc.q,                         # PUSH
        pick(cc, d, r.q),              # JSRP
        pick(cc, d, upc.q),            # CJV
        pick(cc, d, r.q),              # JRP
        pick(r_nonzero, top, upc.q),   # RFCT: loop from stack while R != 0
        pick(r_nonzero, d, upc.q),     # RPCT
        pick(cc, top, upc.q),          # CRTN: return if pass
        pick(cc, d, upc.q),            # CJPP
        upc.q,                         # LDCT
        pick(cc, upc.q, top),          # LOOP: exit loop if pass
        upc.q,                         # CONT
        pick(cc, upc.q, pick(r_nonzero, top, d)),  # TWB
    ]
    y = b.onehot_mux(op, y_options)
    upc.drive(b.inc(y))

    # ------------------------------------------------------------------
    # stack push/pop control
    # ------------------------------------------------------------------
    push = b.or_(
        b.and_(op[CJS], cc),
        op[PUSH],
        op[JSRP],
    )
    pop = b.or_(
        b.and_(op[RFCT], r_zero),
        b.and_(op[CRTN], cc),
        b.and_(op[CJPP], cc),
        b.and_(op[LOOP], cc),
        b.and_(op[TWB], b.or_(cc, r_zero)),
    )
    clear = op[JZ]

    # shift-register stack: push shifts down (top = stack[0]), pop shifts up
    for i, cell in enumerate(stack):
        pushed = upc.q if i == 0 else stack[i - 1].q
        popped = stack[i + 1].q if i + 1 < STACK_DEPTH else zero_bus
        nxt = b.mux2(push, b.mux2(pop, cell.q, popped), pushed)
        cell.drive(b.mux2(clear, nxt, zero_bus))

    depth_up = b.and_(push, b.not_(b.and_(depth.q[0], depth.q[2])))  # < 5
    depth_down = b.and_(pop, b.not_(b.is_zero(depth.q)))
    d_next = b.mux2(depth_up, b.mux2(depth_down, depth.q, b.dec(depth.q)),
                    b.inc(depth.q))
    depth.drive(b.mux2(clear, d_next, b.const_bus(0, 3)))

    # ------------------------------------------------------------------
    # register/counter R
    # ------------------------------------------------------------------
    load_r = b.or_(op[LDCT], b.and_(op[PUSH], cc))
    dec_r = b.and_(
        r_nonzero,
        b.or_(op[RFCT], op[RPCT], b.and_(op[TWB], ncc)),
    )
    r_next = b.mux2(load_r, b.mux2(dec_r, r.q, b.dec(r.q)), d)
    r.drive(r_next)

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------
    b.output_bus(y, "y")
    b.output_bit(b.nor_(op[JMAP], op[CJV]))        # PL_: pipeline enable
    b.output_bit(op[JMAP])                         # MAP enable
    b.output_bit(op[CJV])                          # VECT enable
    full = b.and_(depth.q[0], depth.q[2])          # depth == 5 (0b101)
    b.output_bit(full)
    return b.build()
