"""8-bit parallel controller for DSP applications (the paper's ``pcont2``).

The original pcont2 was synthesised from an in-house high-level
description that was never published; the paper describes it only as "an
8-bit parallel controller used in DSP applications".  This reconstruction
follows that description's natural architecture: eight identical channel
controllers operating in parallel, each with a small command FSM and an
8-bit down-counter, programmed over a shared command/data bus and
monitored through per-channel status outputs.  It exercises the same ATPG
behaviours the original would — many near-identical sequential slices,
deep counters to justify, and a control FSM per slice.

Per-channel behaviour (channel selected by ``sel`` or broadcast):

* ``LOAD``  — latch ``data`` into the channel's count register;
* ``START`` — begin counting down once per clock;
* ``STOP``  — freeze;
* counting reaching zero raises the channel's ``done`` flag until LOAD.

Interface::

    inputs : cmd[2], sel[3], broadcast, data[8]
    outputs: active[8], done[8], any_active, all_done
"""

from __future__ import annotations

from ...circuit.netlist import Circuit
from ...rtl.builder import RtlBuilder

#: Command encodings.
CMD_NOP, CMD_LOAD, CMD_START, CMD_STOP = range(4)


def pcont2(
    channels: int = 8, counter_width: int = 8, name: str = "pcont2"
) -> Circuit:
    """Build the parallel controller (parameterised channel count/width)."""
    b = RtlBuilder(name)
    cmd = b.input_bus("cmd", 2)
    sel = b.input_bus("sel", 3)
    broadcast = b.input_bit("broadcast")
    data = b.input_bus("data", counter_width)

    cmd_lines = b.decoder(cmd)
    sel_lines = b.decoder(sel)

    actives = []
    dones = []
    for ch in range(channels):
        chosen = b.or_(sel_lines[ch % len(sel_lines)], broadcast)
        load = b.and_(cmd_lines[CMD_LOAD], chosen)
        start = b.and_(cmd_lines[CMD_START], chosen)
        stop = b.and_(cmd_lines[CMD_STOP], chosen)

        count = b.register_loop(counter_width, f"c{ch}_count")
        running = b.register_loop(1, f"c{ch}_run")
        done = b.register_loop(1, f"c{ch}_done")

        at_zero = b.is_zero(count.q)
        ticking = b.and_(running.q[0], b.not_(at_zero))

        count_step = b.mux2(ticking, count.q, b.dec(count.q))
        count.drive(b.mux2(load, count_step, data))

        run_next = b.or_(start, b.and_(running.q[0], b.nor_(stop, at_zero)))
        running.drive([b.and_(run_next, b.not_(load))])

        # LOAD forces a definite 0 so the flag initialises from power-up X;
        # otherwise it latches sticky-high once the counter expires.
        done_next = b.and_(
            b.not_(load),
            b.or_(b.and_(running.q[0], at_zero), done.q[0]),
        )
        done.drive([done_next])

        actives.append(running.q[0])
        dones.append(done.q[0])

    b.output_bus(actives, "active")
    b.output_bus(dones, "done")
    b.output_bit(b.or_(*actives))
    b.output_bit(b.and_(*dones))
    return b.build()
