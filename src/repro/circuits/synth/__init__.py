"""Gate-level synthesis of the paper's Table III circuits."""

from .am2910 import am2910
from .div16 import div16
from .mult16 import mult16
from .pcont2 import pcont2

__all__ = ["am2910", "div16", "mult16", "pcont2"]
