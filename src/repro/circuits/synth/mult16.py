"""16-bit two's-complement shift-and-add multiplier (the paper's ``mult``).

Booth radix-2 recoding handles two's-complement operands with the plain
shift-and-add datapath the paper describes: every cycle inspects
``(Q0, Q-1)`` to add, subtract, or pass the multiplicand into the
accumulator, then arithmetically shifts the ``(A, Q, Q-1)`` triple right.
A 5-bit cycle counter raises ``done`` after ``width`` steps.

Interface::

    inputs : start, multiplicand[16], multiplier[16]
    outputs: product[32] (A high, Q low), done
"""

from __future__ import annotations

from ...circuit.netlist import Circuit
from ...rtl.builder import RtlBuilder


def mult16(width: int = 16, name: str = "mult") -> Circuit:
    """Build the Booth shift-and-add multiplier (parameterised width)."""
    b = RtlBuilder(name)
    start = b.input_bit("start")
    mcand = b.input_bus("multiplicand", width)
    mplier = b.input_bus("multiplier", width)

    count_bits = max(1, (width).bit_length())
    acc = b.register_loop(width, "acc")      # A: product high half
    q = b.register_loop(width, "q")          # Q: product low half / multiplier
    qm1 = b.register_loop(1, "qm1")          # Q(-1) Booth bit
    m = b.register_loop(width, "m")          # multiplicand latch
    count = b.register_loop(count_bits, "cnt")
    busy = b.register_loop(1, "busy")

    # Booth recode: (Q0, Q-1) = (0, 1) -> add M, (1, 0) -> subtract M
    add_en = b.and_(b.not_(q.q[0]), qm1.q[0])
    sub_en = b.and_(q.q[0], b.not_(qm1.q[0]))

    summed, _c = b.add(acc.q, m.q)
    diffed, _nb = b.sub(acc.q, m.q)
    a_prime = b.mux2(add_en, b.mux2(sub_en, acc.q, diffed), summed)

    # arithmetic right shift of (A', Q, Qm1)
    sign = a_prime[-1]
    a_shift = b.shift_right(a_prime, fill=sign)
    q_shift = b.shift_right(q.q, fill=a_prime[0])
    qm1_next = q.q[0]

    target = b.const_bus(width, count_bits)
    done = b.equals(count.q, target)
    stepping = b.and_(busy.q[0], b.not_(done))

    acc_step = b.mux2(stepping, acc.q, a_shift)
    acc.drive(b.mux2(start, acc_step, b.const_bus(0, width)))

    q_step = b.mux2(stepping, q.q, q_shift)
    q.drive(b.mux2(start, q_step, mplier))

    qm1_step = b.mux_bit(stepping, qm1.q[0], qm1_next)
    qm1.drive([b.mux_bit(start, qm1_step, b.const0())])

    m.drive(b.mux2(start, m.q, mcand))

    cnt_step = b.mux2(stepping, count.q, b.inc(count.q))
    count.drive(b.mux2(start, cnt_step, b.const_bus(0, count_bits)))

    busy_next = b.or_(start, b.and_(busy.q[0], b.not_(done)))
    busy.drive([busy_next])

    b.output_bus(q.q, "product_lo")
    b.output_bus(acc.q, "product_hi")
    b.output_bit(b.and_(done, b.not_(busy.q[0])))
    return b.build()
