"""Synthetic sequential benchmark generators.

The ISCAS89 netlists themselves are distribution-restricted data we build
without (see DESIGN.md); these generators produce *stand-ins* with matched
interface statistics — primary input/output counts, flip-flop count,
approximate gate count, and a comparable sequential depth — assembled from
the same structural ingredients that make the originals hard for ATPG:

* a flip-flop chain of the target sequential depth (deep state to justify),
* binary counters (data-dominant state, hard-to-reach high counts),
* random Mealy-style control logic over FSM state bits (control-dominant
  reconvergence, redundancy, untestable faults),
* a reconvergent combinational cloud connecting everything to the outputs.

Generation is fully deterministic in the seed, so every run of the test
suite and benchmarks sees byte-identical circuits.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit
from ..circuit.validate import check

#: Gate-type palettes per style.
_CONTROL_TYPES = [
    GateType.NAND, GateType.NOR, GateType.AND, GateType.OR,
    GateType.NOT, GateType.NAND, GateType.NOR,
]
_DATA_TYPES = [
    GateType.AND, GateType.OR, GateType.XOR, GateType.XNOR,
    GateType.NAND, GateType.NOR, GateType.NOT, GateType.XOR,
]


class _Gen:
    """Shared plumbing for the generators."""

    def __init__(self, name: str, seed: int):
        self.c = Circuit(name)
        self.rng = random.Random(seed)
        self.n = 0

    def fresh(self, prefix: str = "g") -> str:
        self.n += 1
        return f"{prefix}{self.n}"

    def gate(self, gtype: GateType, inputs: Sequence[str]) -> str:
        out = self.fresh()
        self.c.add_gate(out, gtype, list(inputs))
        return out

    def dff(self, d: str, prefix: str = "ff") -> str:
        out = self.fresh(prefix)
        self.c.add_gate(out, GateType.DFF, [d])
        return out


def counter(width: int, name: str = "", seed: int = 0) -> Circuit:
    """A clearable ``width``-bit binary counter with enable.

    Bit ``i`` toggles when all lower bits and the enable are 1 — the
    classic synchronous counter, giving a flip-flop dependency chain of
    length ``width``.  ``clr=1`` forces every bit to a definite 0, so the
    counter is initialisable from the all-unknown power-up state (a
    counter without a clear can never leave X under three-valued
    semantics).
    """
    c = Circuit(name or f"counter{width}")
    en = c.add_input("en")
    clr = c.add_input("clr")
    c.add_gate("nclr", GateType.NOT, [clr])
    q = [f"q{i}" for i in range(width)]
    carry = en
    for i in range(width):
        c.add_gate(f"t{i}", GateType.XOR, [q[i], carry])
        c.add_gate(f"d{i}", GateType.AND, [f"t{i}", "nclr"])
        c.add_gate(q[i], GateType.DFF, [f"d{i}"])
        if i + 1 < width:
            c.add_gate(f"c{i}", GateType.AND, [q[i], carry])
            carry = f"c{i}"
    for net in q:
        c.add_output(net)
    return check(c)


def shift_register(length: int, name: str = "", taps: Sequence[int] = ()) -> Circuit:
    """A serial-in shift register, optionally with XOR feedback taps (LFSR)."""
    c = Circuit(name or f"shift{length}")
    sin = c.add_input("sin")
    stages = [f"s{i}" for i in range(length)]
    for i, net in enumerate(stages):
        c.add_gate(net, GateType.DFF, [stages[i - 1] if i else "d0"])
    if taps:
        fb = "fb"
        c.add_gate(fb, GateType.XOR, [stages[t] for t in taps])
        c.add_gate("d0", GateType.XOR, [sin, fb])
    else:
        c.add_gate("d0", GateType.BUF, [sin])
    c.add_output(stages[-1])
    return check(c)


def synthetic_sequential(
    name: str,
    n_pi: int,
    n_po: int,
    n_ff: int,
    n_gates: int,
    seq_depth: int,
    seed: int = 0,
    style: str = "mixed",
) -> Circuit:
    """Generate a stand-in sequential circuit with the given statistics.

    Args:
        name: circuit name.
        n_pi / n_po / n_ff: interface and state sizes (matched exactly).
        n_gates: combinational gate target (matched approximately; the
            output collector and state glue adjust the final count).
        seq_depth: target sequential depth (matched approximately via a
            flip-flop chain of this length).
        seed: deterministic generation seed.
        style: ``"control"`` (NAND/NOR-heavy logic, FSM-like state),
            ``"data"`` (XOR-rich logic, counter state), or ``"mixed"``.
    """
    if style not in ("control", "data", "mixed"):
        raise ValueError(f"unknown style {style!r}")
    if n_pi < 1 or n_po < 1 or n_ff < 0:
        raise ValueError("need at least one PI and one PO")
    g = _Gen(name, seed)
    rng = g.rng
    types = {
        "control": _CONTROL_TYPES,
        "data": _DATA_TYPES,
        "mixed": _CONTROL_TYPES + _DATA_TYPES,
    }[style]

    pis = [g.c.add_input(f"pi{i}") for i in range(n_pi)]

    # --- state plan ------------------------------------------------------
    chain_len = max(0, min(n_ff, seq_depth))
    counter_ffs = 0
    if style != "control" and n_ff > chain_len:
        counter_ffs = min(n_ff - chain_len, max(0, seq_depth - 1))
    cone_ffs = n_ff - chain_len - counter_ffs

    ff_outputs: List[str] = []
    pending: List[str] = []  # DFF output nets whose D input comes later

    chain: List[str] = []
    for _ in range(chain_len):
        q = g.fresh("ffc")
        pending.append(q)
        chain.append(q)
        ff_outputs.append(q)

    # counter block (data-style deep, hard-to-justify state)
    if counter_ffs:
        clear = pis[rng.randrange(len(pis))]
        nclear = g.gate(GateType.NOT, [clear])
        carry = pis[rng.randrange(len(pis))]
        for i in range(counter_ffs):
            q = g.fresh("ffn")
            toggle = g.gate(GateType.XOR, [q, carry])
            # clear=1 forces a definite 0: the counter can initialise from X
            d = g.gate(GateType.AND, [nclear, toggle])
            g.c.add_gate(q, GateType.DFF, [d])
            if i + 1 < counter_ffs:
                carry = g.gate(GateType.AND, [q, carry])
            ff_outputs.append(q)

    cone_ff_list: List[str] = []
    for _ in range(cone_ffs):
        q = g.fresh("ffr")
        pending.append(q)
        cone_ff_list.append(q)
        ff_outputs.append(q)

    leaves = pis + ff_outputs

    # --- cone-structured combinational logic ------------------------------
    # Each PO and each pending flip-flop gets its own mostly-fanout-free
    # cone (trees are fully testable); reconvergence comes from shared
    # leaves and a small pool of shared subfunctions.
    n_cones = n_po + len(pending)
    budget = max(n_gates - counter_ffs * 2, n_cones)
    shared_budget = budget // 8
    cone_budget = budget - shared_budget

    def leaf() -> str:
        return leaves[rng.randrange(len(leaves))]

    def build_tree(size: int, extra_leaves: Sequence[str] = ()) -> str:
        """A random gate tree with ``size`` gates over random leaves."""
        if size <= 0:
            return leaf()
        nodes = [leaf() for _ in range(size + 1)]
        nodes.extend(extra_leaves)
        rng.shuffle(nodes)
        remaining = size
        controlling = [t for t in types if t not in
                       (GateType.XOR, GateType.XNOR, GateType.NOT)]
        while remaining > 0 and len(nodes) > 1:
            gtype = (rng.choice(controlling) if rng.random() < 0.55
                     else rng.choice(types))
            if gtype is GateType.NOT:
                take = 1
            else:
                take = min(len(nodes), rng.randint(2, 3))
            ins, nodes = nodes[:take], nodes[take:]
            if take == 1 and gtype not in (GateType.NOT, GateType.BUF):
                gtype = GateType.NOT
            nodes.append(g.gate(gtype, ins))
            remaining -= 1
        while len(nodes) > 1:  # fold any leftovers
            ins, nodes = nodes[:3], nodes[3:]
            nodes.append(
                g.gate(GateType.XOR if style == "data" else GateType.OR, ins)
            )
        return nodes[0]

    # shared subfunctions give cross-cone reconvergence and branch faults
    shared: List[str] = []
    for _ in range(max(1, shared_budget // 4)):
        shared.append(build_tree(3))
    leaves = leaves + shared

    sizes = _split_budget(cone_budget, n_cones, rng)
    cones = []
    for i in range(n_cones):
        cones.append(build_tree(sizes[i]))

    # --- close the state loops -------------------------------------------
    cone_iter = iter(cones)
    po_sources = [next(cone_iter) for _ in range(n_po)]
    for q in pending:
        d = next(cone_iter)
        if q in chain and chain.index(q) > 0:
            prev = chain[chain.index(q) - 1]
            d = g.gate(rng.choice((GateType.AND, GateType.OR)), [prev, d])
        g.c.add_gate(q, GateType.DFF, [d])

    # --- fold anything unobserved into the last output --------------------
    used = set()
    for gate in g.c.gates.values():
        used.update(gate.inputs)
    unused = [
        net for net in g.c.nets if net not in used and net not in po_sources
    ]
    while len(unused) > 1:
        batch, unused = unused[:4], unused[4:]
        unused.append(
            g.gate(GateType.XOR if style == "data" else GateType.OR, batch)
            if len(batch) > 1 else batch[0]
        )
    if unused:
        po_sources[-1] = g.gate(GateType.OR, [po_sources[-1], unused[0]])

    for net in po_sources:
        if net in g.c.outputs:
            net = g.gate(GateType.BUF, [net])  # keep PO count exact
        g.c.add_output(net)
    return check(g.c)


def _split_budget(total: int, parts: int, rng: random.Random) -> List[int]:
    """Split ``total`` into ``parts`` positive-ish random chunks."""
    if parts <= 0:
        return []
    weights = [rng.random() + 0.2 for _ in range(parts)]
    scale = total / sum(weights)
    sizes = [max(1, int(w * scale)) for w in weights]
    return sizes
