"""Small hand-crafted circuits with known properties, used by tests.

These give the test suite ground truth that random circuits cannot:
a circuit with a provably untestable (redundant) fault, a minimal
pipeline, and a tiny FSM with a known reachable-state set.
"""

from __future__ import annotations

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit
from ..circuit.validate import check
from ..faults.model import Fault


def redundant_and() -> Circuit:
    """Combinational circuit with a classic redundancy.

    ``y = (a AND b) OR (a AND NOT b)`` simplifies to ``a``; the fault
    "second OR input stuck-at-0"... is testable, but the fault
    ``r s-a-1`` on the consensus term ``r = a AND a`` feeding an OR with
    ``a`` is not expressible that simply, so instead we use the textbook
    construction: ``y = (a AND b) OR (NOT b AND c) OR (a AND c)`` where
    the third (consensus) term is redundant — any stuck-at-0 on the
    consensus term's output is untestable.
    """
    c = Circuit("redundant_and")
    a = c.add_input("a")
    b = c.add_input("b")
    cc = c.add_input("c")
    c.add_gate("nb", GateType.NOT, [b])
    c.add_gate("t1", GateType.AND, [a, b])
    c.add_gate("t2", GateType.AND, ["nb", cc])
    c.add_gate("t3", GateType.AND, [a, cc])  # consensus term: redundant
    c.add_gate("y", GateType.OR, ["t1", "t2", "t3"])
    c.add_output("y")
    return check(c)


#: The provably untestable fault in :func:`redundant_and` (the consensus
#: term's output stuck-at-0; ``t3`` has a single reader, so the stem is
#: the canonical fault).
REDUNDANT_FAULT = Fault("t3", 0)


def untestable_stem() -> "tuple[Circuit, Fault]":
    """A circuit and a stem fault no input sequence can detect.

    ``y = a AND NOT a`` is constant 0, so ``y s-a-0`` is untestable
    (and so is anything that must propagate through ``y``'s 0).
    """
    c = Circuit("untestable_stem")
    a = c.add_input("a")
    c.add_gate("na", GateType.NOT, [a])
    c.add_gate("y", GateType.AND, [a, "na"])
    c.add_gate("z", GateType.OR, ["y", "b"])
    c.add_input("b")
    c.add_output("z")
    return check(c), Fault("y", 0)


def two_stage_pipeline() -> Circuit:
    """Two flip-flops in series: PI -> FF -> FF -> PO (depth 2)."""
    c = Circuit("pipe2")
    a = c.add_input("a")
    c.add_gate("f1", GateType.DFF, [a])
    c.add_gate("f2", GateType.DFF, ["f1"])
    c.add_gate("y", GateType.BUF, ["f2"])
    c.add_output("y")
    return check(c)


def gray_fsm() -> Circuit:
    """A resettable 2-bit Gray-code cycle FSM: 00 -> 10 -> 11 -> 01 -> 00.

    ``s0' = NOR(s1, rst)``, ``s1' = AND(s0, NOT rst)``.  The synchronous
    reset gives a definite initialisation path from the all-unknown state;
    state ``11`` is only reachable two steps after a reset, exercising
    multi-frame state justification.
    """
    c = Circuit("gray_fsm")
    rst = c.add_input("rst")
    en = c.add_input("en")
    c.add_gate("nrst", GateType.NOT, ["rst"])
    c.add_gate("ns0", GateType.NOR, ["s1", "rst"])
    c.add_gate("ns1", GateType.AND, ["s0", "nrst"])
    c.add_gate("s0", GateType.DFF, ["ns0"])
    c.add_gate("s1", GateType.DFF, ["ns1"])
    c.add_gate("y", GateType.XOR, ["s1", "s0"])
    c.add_gate("both", GateType.AND, ["s1", "s0", "en"])
    c.add_output("y")
    c.add_output("both")
    return check(c)
