"""Benchmark circuits: embedded s27, ISCAS89 stand-ins, synthesised designs."""

from .s27 import S27_BENCH, s27
from .generators import counter, shift_register, synthetic_sequential
from .iscas89 import (
    CircuitSpec,
    ISCAS89_SPECS,
    QUICK_SET,
    available,
    iscas89,
)
from .crafted import (
    REDUNDANT_FAULT,
    gray_fsm,
    redundant_and,
    two_stage_pipeline,
    untestable_stem,
)
from .resolve import resolve_circuit
from .synth import am2910, div16, mult16, pcont2

__all__ = [
    "CircuitSpec",
    "ISCAS89_SPECS",
    "QUICK_SET",
    "REDUNDANT_FAULT",
    "S27_BENCH",
    "am2910",
    "available",
    "counter",
    "div16",
    "gray_fsm",
    "iscas89",
    "mult16",
    "pcont2",
    "redundant_and",
    "resolve_circuit",
    "s27",
    "shift_register",
    "synthetic_sequential",
    "two_stage_pipeline",
    "untestable_stem",
]
