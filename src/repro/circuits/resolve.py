"""Resolve a circuit specifier to a :class:`~repro.circuit.netlist.Circuit`.

A specifier is either a file path (``.bench`` or structural ``.v``) or the
name of a built-in benchmark: the ISCAS89 stand-ins (``s27``, ``s298`` …)
or one of the paper's synthesised designs (``am2910``, ``div``, ``mult``,
``pcont2``).  The CLI and the campaign subsystem share this one resolver
so a campaign spec names circuits exactly the way the command line does.
"""

from __future__ import annotations

from ..circuit.bench import load_bench
from ..circuit.netlist import Circuit
from ..circuit.verilog import load_verilog
from .iscas89 import ISCAS89_SPECS, iscas89
from .synth import am2910, div16, mult16, pcont2

#: Built-in synthesised designs, by CLI name.
SYNTH_CIRCUITS = {
    "am2910": am2910,
    "div": div16,
    "mult": mult16,
    "pcont2": pcont2,
}


def resolve_circuit(spec: str) -> Circuit:
    """Load a circuit from a file path or a built-in benchmark name."""
    if spec in SYNTH_CIRCUITS:
        return SYNTH_CIRCUITS[spec]()
    if spec in ISCAS89_SPECS:
        return iscas89(spec)
    if spec.endswith(".v"):
        return load_verilog(spec)
    return load_bench(spec)
