"""The ISCAS89 s27 benchmark circuit, embedded as ``.bench`` text.

s27 is the one ISCAS89 netlist small enough to be public knowledge in full
(it appears in textbooks and the benchmark documentation): 4 primary
inputs, 1 primary output, 3 flip-flops, 10 gates.
"""

from __future__ import annotations

from ..circuit.bench import parse_bench
from ..circuit.netlist import Circuit

S27_BENCH = """\
# s27 — ISCAS89 sequential benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""


def s27() -> Circuit:
    """Build a fresh :class:`~repro.circuit.Circuit` for s27."""
    return parse_bench(S27_BENCH, name="s27")
