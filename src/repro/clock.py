"""The single sanctioned wall-clock source for the whole package.

Every deadline, duration, and timestamp in ``repro`` is measured against a
clock *injected* by the caller (tests pass fake clocks; campaign workers
enforce budgets against a shared clock).  The injectable defaults live
here, and only here: a lint-style test
(``tests/test_clock_discipline.py``) greps the source tree and fails if
any other module reads ``time.time`` / ``time.monotonic`` /
``time.perf_counter`` directly, so a stray direct read cannot silently
re-introduce untestable timeout paths.

``time.sleep`` (a delay, not a clock read) and ``time.process_time``
(CPU accounting, not wall clock) remain allowed everywhere.
"""

from __future__ import annotations

import time
from typing import Callable

#: Signature of every injectable clock in the package.
Clock = Callable[[], float]

#: Monotonic wall clock — the default for deadlines and durations.
monotonic: Clock = time.monotonic

#: High-resolution monotonic clock — the default for telemetry spans and
#: kernel-compile accounting, where sub-millisecond resolution matters.
perf_counter: Clock = time.perf_counter

#: Absolute wall-clock time (epoch seconds) — journal timestamps only;
#: never use it to measure durations.
wall: Clock = time.time
