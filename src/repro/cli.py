"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``stats``     — print a circuit's interface/size statistics.
``faults``    — enumerate the (collapsed) stuck-at fault list.
``atpg``      — run GA-HITEC (or the HITEC baseline) and write the tests
(alias: ``run-hybrid``); ``--telemetry`` saves a structured run report,
``--trace`` saves span trace events as JSONL.
``report``    — pretty-print a saved run report, or diff two of them;
``--json`` emits the same information machine-readably and
``--dispositions`` exports the per-fault rows as JSONL.
``train-policy`` — fit a ``repro-policy/v1`` scheduling policy (see
``docs/POLICY.md``) from saved run reports; apply it with
``atpg --policy`` or ``campaign run --policy``.
``campaign``  — durable multi-circuit campaigns: ``campaign run`` executes
a :class:`~repro.campaign.CampaignSpec` across worker processes with a
journal, ``campaign resume`` continues a killed campaign, and
``campaign status`` summarises a journal.
``serve``     — run the campaign service: HTTP job submission, SSE
progress streams, report retrieval (see ``docs/SERVICE.md``).
``faultsim``  — grade an existing vector file against the fault list.
``convert``   — translate between ``.bench`` and structural Verilog.
``scan``      — insert a full-scan chain and write the scanned netlist.
``diagnose``  — rank candidate faults against observed tester failures.

Circuits are either ``.bench`` files or names of built-in benchmarks
(``s27``, ``s298`` …, ``am2910``, ``div``, ``mult``, ``pcont2``).
"""

from __future__ import annotations

import argparse
import dataclasses
import functools
import json
import os
import sys
from typing import Callable, List, Optional

from .analysis.compaction import compact_test_set
from .analysis.coverage import evaluate_test_set
from .analysis.diagnosis import FaultDictionary
from .campaign import CampaignError, CampaignRunner, CampaignSpec
from .circuit.bench import save_bench
from .circuit.scan import insert_scan
from .circuit.verilog import save_verilog
from .circuits.resolve import resolve_circuit
from .faults.collapse import collapse_faults
from .faults.model import (
    FaultModelError,
    fault_model_names,
    fault_site_known,
    parse_fault,
)
from .hybrid.driver import gahitec, hitec_baseline
from .hybrid.passes import gahitec_schedule, hitec_schedule
from .knowledge import load_store_for, model_fingerprint, save_knowledge
from .policy import FaultPolicy, PolicyError, dataset_from_reports, train_policy
from .telemetry import RunReport, TelemetryRecorder, diff_reports, render_diff

__all__ = ["build_parser", "main", "resolve_circuit"]


def _read_vectors(path: str, n_pi: int) -> List[List[int]]:
    """Read one vector per line, characters 0/1/x in PI order."""
    vectors = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if len(line) != n_pi:
                raise SystemExit(
                    f"{path}:{line_no}: expected {n_pi} bits, got {len(line)}"
                )
            vectors.append(
                [2 if ch in "xX" else int(ch) for ch in line]
            )
    return vectors


def _write_vectors(path: str, vectors: List[List[int]]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for vec in vectors:
            handle.write("".join("x" if v == 2 else str(v) for v in vec) + "\n")


def _expected_errors(
    *exceptions: type,
) -> Callable[[Callable[[argparse.Namespace], int]],
              Callable[[argparse.Namespace], int]]:
    """Turn anticipated failures into a one-line stderr message, exit 2.

    A missing journal, a torn-beyond-repair file, or a malformed report is
    an operator mistake, not a bug — the command must fail loudly but
    without a traceback (and the service maps the same exceptions to HTTP
    4xx instead of 500).
    """

    def decorate(
        func: Callable[[argparse.Namespace], int]
    ) -> Callable[[argparse.Namespace], int]:
        @functools.wraps(func)
        def wrapper(args: argparse.Namespace) -> int:
            try:
                return func(args)
            except exceptions as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

        return wrapper

    return decorate


def cmd_stats(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    print(f"{circuit.name}:")
    for key, value in circuit.stats().items():
        print(f"  {key:<16s} {value}")
    full = len(collapse_faults(circuit))
    print(f"  {'collapsed faults':<16s} {full}")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    for fault in collapse_faults(circuit, args.fault_model):
        print(fault)
    return 0


def _target_faults(args: argparse.Namespace, circuit) -> Optional[List]:
    """The explicit ``--fault`` targets, validated against the circuit.

    Every named fault must parse under the model-qualified grammar,
    belong to the run's fault model, and name a real site; ``None``
    means no filter (the collapsed universe).
    """
    if not args.fault:
        return None
    targets = []
    for text in args.fault:
        try:
            fault = parse_fault(text)
        except FaultModelError as exc:
            raise SystemExit(f"--fault {text!r}: {exc}")
        if fault.model != args.fault_model:
            raise SystemExit(
                f"--fault {text!r} is a {fault.model} fault but the run "
                f"targets {args.fault_model} (use --fault-model)"
            )
        if not fault_site_known(circuit, fault):
            raise SystemExit(
                f"--fault {text!r}: no such site in {circuit.name}"
            )
        targets.append(fault)
    return targets


@_expected_errors(PolicyError)
def cmd_atpg(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    faults = _target_faults(args, circuit)
    x = args.seq_len or max(4, 4 * circuit.sequential_depth)
    recorder = None
    if args.telemetry or args.trace:
        recorder = TelemetryRecorder(trace=bool(args.trace))
    policy = FaultPolicy.load(args.policy) if args.policy else None
    if policy is not None and not policy.covers(circuit.name):
        print(f"note: {args.policy} was trained on "
              f"{', '.join(policy.circuits)}; {circuit.name} runs the "
              f"static schedule")
    knowledge: object = not args.no_knowledge
    if knowledge and args.knowledge_in:
        preloaded = load_store_for(
            args.knowledge_in, circuit.name,
            model_fingerprint("unconstrained", args.fault_model))
        if preloaded is None:
            print(f"note: {args.knowledge_in} has no knowledge for "
                  f"{circuit.name}; starting fresh")
        else:
            knowledge = preloaded
    if args.baseline:
        driver = hitec_baseline(circuit, seed=args.seed,
                                backend=args.backend, jobs=args.jobs,
                                telemetry=recorder, knowledge=knowledge,
                                policy=policy, faults=faults,
                                fault_model=args.fault_model)
        schedule = hitec_schedule(
            num_passes=args.passes,
            time_scale=args.time_scale,
            backtrack_base=args.backtracks,
        )
    else:
        driver = gahitec(circuit, seed=args.seed,
                         backend=args.backend, jobs=args.jobs,
                         telemetry=recorder, knowledge=knowledge,
                         policy=policy, faults=faults,
                         fault_model=args.fault_model)
        schedule = gahitec_schedule(
            x=x,
            num_passes=args.passes,
            time_scale=args.time_scale,
            backtrack_base=args.backtracks,
        )
    if args.prefilter:
        proven = driver.prefilter_untestable()
        print(f"prefilter: {len(proven)} faults proven untestable")
    result = driver.run(schedule)
    print(result.summary())
    vectors = result.test_set
    if args.compact and vectors:
        compacted = compact_test_set(
            circuit, vectors, list(result.detected.values())
        )
        print(f"compaction: {compacted.original_vectors} -> "
              f"{compacted.compacted_vectors} vectors")
        vectors = compacted.vectors
    if args.output:
        _write_vectors(args.output, vectors)
        print(f"wrote {len(vectors)} vectors to {args.output}")
    if args.telemetry and result.report is not None:
        result.report.save(args.telemetry)
        print(f"wrote telemetry report to {args.telemetry}")
    if args.trace and recorder is not None:
        recorder.save_trace(args.trace)
        print(f"wrote {len(recorder.trace_events)} trace events "
              f"to {args.trace}")
    if result.knowledge_stats:
        hits = (result.knowledge_stats.get("justified_hits", 0)
                + result.knowledge_stats.get("unjustifiable_hits", 0))
        print(f"knowledge: {hits} hits, "
              f"{result.knowledge_stats.get('records', 0)} facts recorded, "
              f"{result.knowledge_stats.get('ga_seeded', 0)} GA seeds used")
    if args.knowledge_out and driver.knowledge is not None:
        save_knowledge({circuit.name: driver.knowledge}, args.knowledge_out)
        print(f"wrote {len(driver.knowledge)} knowledge entries "
              f"to {args.knowledge_out}")
    return 0


@_expected_errors(OSError, ValueError, KeyError)
def cmd_report(args: argparse.Namespace) -> int:
    new = RunReport.load(args.report)
    if args.dispositions:
        with open(args.dispositions, "w", encoding="utf-8") as handle:
            for record in new.faults:
                handle.write(json.dumps(
                    dataclasses.asdict(record), sort_keys=True) + "\n")
        print(f"wrote {len(new.faults)} fault dispositions "
              f"to {args.dispositions}")
        if not (args.against or args.json):
            return 0
    if args.against:
        old = RunReport.load(args.against)
        if args.json:
            rows = diff_reports(new, old)
            payload = {
                "schema": "repro-report-diff/v1",
                "new": {"circuit": new.circuit, "generator": new.generator},
                "old": {"circuit": old.circuit, "generator": old.generator},
                "fields": {
                    name: {"new": a, "old": b, "delta": delta}
                    for name, (a, b, delta) in rows.items()
                    if not args.changed_only or delta
                },
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(render_diff(new, old, only_changed=args.changed_only))
    elif args.json:
        print(json.dumps(new.to_dict(), indent=2, sort_keys=True))
    else:
        print(new.summary())
    return 0


def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    if args.spec:
        spec = CampaignSpec.load(args.spec)
        if args.circuits:
            raise SystemExit("give circuits inline or via --spec, not both")
        return spec
    if not args.circuits:
        raise SystemExit("campaign run needs circuits or --spec FILE")
    return CampaignSpec(
        circuits=tuple(args.circuits),
        name=args.name,
        seed=args.seed,
        shard_size=args.shard_size,
        passes=args.passes,
        seq_len=args.seq_len,
        time_scale=args.time_scale,
        backtracks=args.backtracks,
        justify_depth=args.justify_depth,
        baseline=args.baseline,
        backend=args.backend,
        fault_limit=args.fault_limit,
        item_timeout_s=args.item_timeout,
        max_attempts=args.max_attempts,
        knowledge=not args.no_knowledge,
        knowledge_file=args.knowledge_from,
        knowledge_broadcast=args.broadcast,
        policy_file=args.policy,
        fault_model=args.fault_model,
    )


def _finish_campaign(result, args: argparse.Namespace) -> int:
    print(result.summary())
    if result.knowledge:
        entries = sum(len(s) for s in result.knowledge.values())
        print(f"knowledge: {entries} facts learned across "
              f"{len(result.knowledge)} circuit(s) "
              f"(sidecar next to the journal)")
    if args.report:
        if result.report is not None:
            result.report.save(args.report)
            print(f"wrote campaign report to {args.report}")
        else:
            print("no telemetry reports to merge; skipped --report")
    if args.output_dir:
        os.makedirs(args.output_dir, exist_ok=True)
        for name, circuit_result in sorted(result.circuits.items()):
            base = os.path.basename(name).replace(".bench", "")
            path = os.path.join(args.output_dir, f"{base}.vec")
            _write_vectors(path, circuit_result.vectors)
            print(f"wrote {len(circuit_result.vectors)} vectors to {path}")
    return 1 if result.items_failed else 0


@_expected_errors(OSError, PolicyError, ValueError)
def cmd_train_policy(args: argparse.Namespace) -> int:
    dataset = dataset_from_reports(args.reports)
    if not dataset.rows:
        raise PolicyError(
            "no trainable fault dispositions in the given reports"
        )
    options = {"shrink_ga": True} if args.shrink_ga else None
    policy = train_policy(dataset, rounds=args.rounds, options=options)
    policy.save(args.output)
    print(f"dataset: {dataset.summary()}")
    xs = dataset.matrix()
    rows = dataset.rows
    print(f"fit: detect mae "
          f"{policy.detect.mean_abs_error(xs, [r.detected for r in rows]):.4f}"
          f"  pass mae "
          f"{policy.resolve_pass.mean_abs_error(xs, [r.resolve_pass for r in rows]):.4f}"
          f"  cost mae "
          f"{policy.cost.mean_abs_error(xs, [r.cost for r in rows]):.4f}")
    print(f"wrote policy [{policy.fingerprint}] to {args.output}")
    return 0


@_expected_errors(CampaignError, OSError)
def cmd_campaign_run(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    runner = CampaignRunner(
        spec,
        args.journal,
        workers=args.workers,
        hang_timeout_s=args.hang_timeout,
    )
    return _finish_campaign(runner.run(), args)


@_expected_errors(CampaignError, OSError)
def cmd_campaign_resume(args: argparse.Namespace) -> int:
    if args.spec:
        # catch resuming the wrong journal before any work starts: the
        # journal header's spec is authoritative, --spec merely asserts
        expected = CampaignSpec.load(args.spec).spec_hash()
        actual = CampaignRunner.status(args.journal)["spec_hash"]
        if expected != actual:
            raise CampaignError(
                f"{args.journal}: journal spec hash {actual} does not "
                f"match {args.spec} ({expected})"
            )
    result = CampaignRunner.resume(
        args.journal,
        workers=args.workers,
        hang_timeout_s=args.hang_timeout,
    )
    return _finish_campaign(result, args)


@_expected_errors(CampaignError, OSError)
def cmd_campaign_status(args: argparse.Namespace) -> int:
    status = CampaignRunner.status(args.journal)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(f"campaign {status['name']} [{status['spec_hash']}]: "
          f"{status['done']}/{status['items']} items done, "
          f"{status['failed']} failed")
    for item_id in status["in_flight"]:
        print(f"  in flight: {item_id}")
    if status["merged"]:
        merged = status["merged"]
        print(f"  merged: coverage {100.0 * merged['fault_coverage']:.1f}%  "
              f"vectors {merged['vectors']}")
    return 0


@_expected_errors(OSError)
def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import serve

    os.makedirs(args.root, exist_ok=True)
    try:
        asyncio.run(
            serve(
                args.root,
                host=args.host,
                port=args.port,
                max_running=args.max_running,
                max_queue=args.max_queue,
                client_quota=args.client_quota,
                workers_per_job=args.workers_per_job,
            )
        )
    except KeyboardInterrupt:
        print("service stopped", file=sys.stderr)
    return 0


def cmd_faultsim(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    vectors = _read_vectors(args.vectors, len(circuit.inputs))
    report = evaluate_test_set(circuit, vectors,
                               backend=args.backend, jobs=args.jobs,
                               fault_model=args.fault_model)
    print(report)
    if args.list_undetected:
        detected = set(report.detected)
        for fault in collapse_faults(circuit, args.fault_model):
            if fault not in detected:
                print(f"  undetected: {fault}")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    if args.output.endswith(".v"):
        save_verilog(circuit, args.output)
    else:
        save_bench(circuit, args.output)
    print(f"wrote {circuit.name} to {args.output}")
    return 0


def cmd_scan(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    scanned, chain = insert_scan(circuit)
    if args.output.endswith(".v"):
        save_verilog(scanned, args.output)
    else:
        save_bench(scanned, args.output)
    print(f"inserted a {chain.length}-bit scan chain; "
          f"wrote {scanned.name} to {args.output}")
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    vectors = _read_vectors(args.vectors, len(circuit.inputs))
    dictionary = FaultDictionary(circuit, vectors)
    print(f"dictionary: {len(dictionary.detected_faults)} detectable faults, "
          f"resolution {dictionary.diagnostic_resolution():.0%}")
    failures = []
    with open(args.failures, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            cycle, po = line.split()
            failures.append((int(cycle), int(po)))
    for rank, cand in enumerate(dictionary.diagnose(failures), 1):
        mark = "exact" if cand.exact else (
            f"{cand.misses} unexplained / {cand.mispredicts} mispredicted"
        )
        names = ", ".join(str(f) for f in cand.faults)
        print(f"  {rank}. [{mark}] {names}")
    return 0


def _add_fault_model_option(p: argparse.ArgumentParser) -> None:
    """The fault-model knob shared by the fault-targeting commands."""
    p.add_argument("--fault-model", choices=fault_model_names(),
                   default="stuck_at",
                   help="registered fault model to target "
                        "(default: stuck_at)")


def _add_sim_options(p: argparse.ArgumentParser) -> None:
    """Simulation-backend options shared by the simulating commands."""
    p.add_argument("--backend", choices=["event", "codegen", "numpy"],
                   default=None,
                   help="simulation backend (default: $REPRO_SIM_BACKEND "
                        "or 'event'; 'codegen' compiles per-circuit kernels; "
                        "'numpy' runs a vectorized matrix sweep and falls "
                        "back to codegen when numpy is unavailable)")
    p.add_argument("--jobs", type=int, default=1,
                   help="fault-simulation worker processes (default 1)")
    p.add_argument("--kernel-cache", metavar="DIR", default=None,
                   help="persist compiled kernels/programs under DIR so warm "
                        "runs and campaign workers skip compilation "
                        "(default: $REPRO_KERNEL_CACHE, unset disables)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GA-HITEC hybrid sequential-circuit test generation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="circuit statistics")
    p.add_argument("circuit", help=".bench file or built-in name")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("faults", help="list the collapsed fault universe")
    p.add_argument("circuit")
    _add_fault_model_option(p)
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "atpg", aliases=["run-hybrid"], help="generate tests (GA-HITEC)"
    )
    p.add_argument("circuit")
    p.add_argument("-o", "--output", help="write vectors to this file")
    p.add_argument("--baseline", action="store_true",
                   help="run the deterministic HITEC baseline instead")
    p.add_argument("--passes", type=int, default=3)
    p.add_argument("--seq-len", type=int, default=0,
                   help="GA sequence length x (default: 4 x sequential depth)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--time-scale", type=float, default=0.05,
                   help="fraction of the paper's per-fault time limits")
    p.add_argument("--backtracks", type=int, default=100,
                   help="pass-1 PODEM backtrack budget")
    p.add_argument("--prefilter", action="store_true",
                   help="prove untestable faults before the GA passes")
    p.add_argument("--compact", action="store_true",
                   help="drop test sequences that add no coverage")
    p.add_argument("--telemetry", metavar="PATH",
                   help="write a structured run report (JSON) to PATH")
    p.add_argument("--trace", metavar="PATH",
                   help="write span trace events (JSONL) to PATH")
    p.add_argument("--no-knowledge", action="store_true",
                   help="disable cross-fault state-knowledge reuse")
    p.add_argument("--knowledge-in", metavar="PATH",
                   help="preload a repro-knowledge/v1 sidecar")
    p.add_argument("--policy", metavar="PATH",
                   help="repro-policy/v1 artifact (see `repro "
                        "train-policy`): reorder faults cheap-first and "
                        "skip passes predicted not to resolve them")
    p.add_argument("--knowledge-out", metavar="PATH",
                   help="write the run's knowledge store to PATH")
    p.add_argument("--fault", action="append", metavar="FAULT",
                   help="target only this fault (model-qualified grammar, "
                        "e.g. 'G10 s-a-1' or 'G5->G7.0 s-t-r'); repeatable")
    _add_fault_model_option(p)
    _add_sim_options(p)
    p.set_defaults(func=cmd_atpg)

    p = sub.add_parser(
        "report", help="pretty-print a run report, or diff two reports"
    )
    p.add_argument("report", help="run report JSON written by --telemetry")
    p.add_argument("against", nargs="?", default=None,
                   help="older report to diff against")
    p.add_argument("--changed-only", action="store_true",
                   help="only show fields whose values differ")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of text")
    p.add_argument("--dispositions", metavar="PATH",
                   help="export per-fault dispositions (features, "
                        "resolving pass, cost) as JSONL to PATH")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "train-policy",
        help="train a repro-policy/v1 scheduling policy from run reports",
    )
    p.add_argument("reports", nargs="+",
                   help="repro-run-report/v1 files (from --telemetry or "
                        "campaign --report) to mine for training rows")
    p.add_argument("-o", "--output", required=True,
                   help="write the repro-policy/v1 artifact to this file")
    p.add_argument("--rounds", type=int, default=40,
                   help="boosting rounds per model (default 40)")
    p.add_argument("--shrink-ga", action="store_true",
                   help="also halve GA budgets on predicted-cheap faults "
                        "(off by default: maximally conservative)")
    p.set_defaults(func=cmd_train_policy)

    p = sub.add_parser(
        "campaign", help="durable, resumable multi-circuit campaigns"
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)

    def _campaign_runner_options(cp: argparse.ArgumentParser) -> None:
        cp.add_argument("--journal", required=True,
                        help="JSONL journal path (durable campaign state)")
        cp.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = inline, no fork)")
        cp.add_argument("--hang-timeout", type=float, default=None,
                        help="kill workers silent for this many seconds")
        cp.add_argument("--report", metavar="PATH",
                        help="write the merged run report (JSON) to PATH")
        cp.add_argument("--output-dir", metavar="DIR",
                        help="write per-circuit vector files into DIR")

    cp = campaign_sub.add_parser("run", help="start a fresh campaign")
    cp.add_argument("circuits", nargs="*",
                    help="circuits (.bench files or built-in names)")
    cp.add_argument("--spec", metavar="PATH",
                    help="load the campaign spec from a JSON file instead")
    cp.add_argument("--name", default="campaign")
    cp.add_argument("--seed", type=int, default=0)
    cp.add_argument("--shard-size", type=int, default=1,
                    help="max faults per work item (default 1: per-fault "
                         "items, the work-stealing pool's native grain)")
    cp.add_argument("--passes", type=int, default=3)
    cp.add_argument("--seq-len", type=int, default=0,
                    help="GA sequence length x (default: 4 x seq. depth)")
    cp.add_argument("--time-scale", type=float, default=None,
                    help="fraction of the paper's per-fault time limits "
                         "(default none: fully deterministic items)")
    cp.add_argument("--backtracks", type=int, default=100)
    cp.add_argument("--justify-depth", type=int, default=16,
                    help="deterministic reverse-time frame bound "
                         "(shrink for wall-clock-free runs on deep "
                         "circuits)")
    cp.add_argument("--baseline", action="store_true",
                    help="run the HITEC baseline instead of GA-HITEC")
    cp.add_argument("--backend", choices=["event", "codegen", "numpy"],
                    default=None)
    cp.add_argument("--kernel-cache", metavar="DIR", default=None,
                    help="persist compiled kernels under DIR (workers "
                         "inherit it via $REPRO_KERNEL_CACHE)")
    cp.add_argument("--fault-limit", type=int, default=None,
                    help="cap each circuit's fault list (smoke tests)")
    cp.add_argument("--item-timeout", type=float, default=None,
                    help="per-item wall-clock budget in seconds")
    cp.add_argument("--max-attempts", type=int, default=3,
                    help="attempts per item before it is marked failed")
    cp.add_argument("--no-knowledge", action="store_true",
                    help="disable cross-fault state-knowledge reuse")
    cp.add_argument("--knowledge-from", metavar="PATH",
                    help="preload each item's knowledge store from this "
                         "repro-knowledge/v1 sidecar")
    cp.add_argument("--broadcast", action="store_true",
                    help="share proven facts between workers live (faster "
                         "at >1 workers; results become timing-dependent)")
    cp.add_argument("--policy", metavar="PATH", default=None,
                    help="repro-policy/v1 artifact applied to every item "
                         "(cheap-first order + predicted pass skips; the "
                         "final pass always targets everything)")
    _add_fault_model_option(cp)
    _campaign_runner_options(cp)
    cp.set_defaults(func=cmd_campaign_run)

    cp = campaign_sub.add_parser(
        "resume", help="continue a journaled campaign after a crash"
    )
    cp.add_argument("--spec", metavar="PATH",
                    help="assert the journal belongs to this spec file "
                         "(fails fast on a hash mismatch)")
    _campaign_runner_options(cp)
    cp.set_defaults(func=cmd_campaign_resume)

    cp = campaign_sub.add_parser("status", help="summarise a journal")
    cp.add_argument("--journal", required=True)
    cp.add_argument("--json", action="store_true")
    cp.set_defaults(func=cmd_campaign_status)

    p = sub.add_parser(
        "serve", help="run the campaign service (HTTP + SSE)"
    )
    p.add_argument("--root", required=True,
                   help="service state directory (journals, reports, "
                        "uploads); survives restarts")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8437,
                   help="listen port (0 picks an ephemeral port)")
    p.add_argument("--max-running", type=int, default=2,
                   help="campaigns executed concurrently (default 2)")
    p.add_argument("--max-queue", type=int, default=256,
                   help="queued jobs before submissions get 429")
    p.add_argument("--client-quota", type=int, default=16,
                   help="live jobs allowed per client (default 16)")
    p.add_argument("--workers-per-job", type=int, default=1,
                   help="campaign worker processes per job (default 1)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("faultsim", help="grade a vector file")
    p.add_argument("circuit")
    p.add_argument("vectors", help="file with one 0/1/x vector per line")
    p.add_argument("--list-undetected", action="store_true")
    _add_fault_model_option(p)
    _add_sim_options(p)
    p.set_defaults(func=cmd_faultsim)

    p = sub.add_parser("convert", help="convert between .bench and .v")
    p.add_argument("circuit")
    p.add_argument("output", help="target file (.bench or .v)")
    p.set_defaults(func=cmd_convert)

    p = sub.add_parser("scan", help="insert a full-scan chain")
    p.add_argument("circuit")
    p.add_argument("output", help="target file (.bench or .v)")
    p.set_defaults(func=cmd_scan)

    p = sub.add_parser("diagnose", help="rank faults against tester failures")
    p.add_argument("circuit")
    p.add_argument("vectors", help="the applied test vectors")
    p.add_argument("failures", help="file of failing 'cycle po_index' pairs")
    p.set_defaults(func=cmd_diagnose)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "kernel_cache", None):
        from .simulation import kernel_cache

        kernel_cache.configure(args.kernel_cache)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
