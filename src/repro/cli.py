"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``stats``     — print a circuit's interface/size statistics.
``faults``    — enumerate the (collapsed) stuck-at fault list.
``atpg``      — run GA-HITEC (or the HITEC baseline) and write the tests
(alias: ``run-hybrid``); ``--telemetry`` saves a structured run report,
``--trace`` saves span trace events as JSONL.
``report``    — pretty-print a saved run report, or diff two of them.
``faultsim``  — grade an existing vector file against the fault list.
``convert``   — translate between ``.bench`` and structural Verilog.
``scan``      — insert a full-scan chain and write the scanned netlist.
``diagnose``  — rank candidate faults against observed tester failures.

Circuits are either ``.bench`` files or names of built-in benchmarks
(``s27``, ``s298`` …, ``am2910``, ``div``, ``mult``, ``pcont2``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.compaction import compact_test_set
from .analysis.coverage import evaluate_test_set
from .analysis.diagnosis import FaultDictionary
from .circuit.bench import load_bench, save_bench
from .circuit.scan import insert_scan
from .circuit.verilog import load_verilog, save_verilog
from .circuit.netlist import Circuit
from .circuits import ISCAS89_SPECS, iscas89
from .circuits.synth import am2910, div16, mult16, pcont2
from .faults.collapse import collapse_faults
from .hybrid.driver import gahitec, hitec_baseline
from .hybrid.passes import gahitec_schedule, hitec_schedule
from .telemetry import RunReport, TelemetryRecorder, render_diff

_SYNTH = {
    "am2910": am2910,
    "div": div16,
    "mult": mult16,
    "pcont2": pcont2,
}


def resolve_circuit(spec: str) -> Circuit:
    """Load a circuit from a file path or a built-in benchmark name."""
    if spec in _SYNTH:
        return _SYNTH[spec]()
    if spec in ISCAS89_SPECS:
        return iscas89(spec)
    if spec.endswith(".v"):
        return load_verilog(spec)
    return load_bench(spec)


def _read_vectors(path: str, n_pi: int) -> List[List[int]]:
    """Read one vector per line, characters 0/1/x in PI order."""
    vectors = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if len(line) != n_pi:
                raise SystemExit(
                    f"{path}:{line_no}: expected {n_pi} bits, got {len(line)}"
                )
            vectors.append(
                [2 if ch in "xX" else int(ch) for ch in line]
            )
    return vectors


def _write_vectors(path: str, vectors: List[List[int]]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for vec in vectors:
            handle.write("".join("x" if v == 2 else str(v) for v in vec) + "\n")


def cmd_stats(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    print(f"{circuit.name}:")
    for key, value in circuit.stats().items():
        print(f"  {key:<16s} {value}")
    full = len(collapse_faults(circuit))
    print(f"  {'collapsed faults':<16s} {full}")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    for fault in collapse_faults(circuit):
        print(fault)
    return 0


def cmd_atpg(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    x = args.seq_len or max(4, 4 * circuit.sequential_depth)
    recorder = None
    if args.telemetry or args.trace:
        recorder = TelemetryRecorder(trace=bool(args.trace))
    if args.baseline:
        driver = hitec_baseline(circuit, seed=args.seed,
                                backend=args.backend, jobs=args.jobs,
                                telemetry=recorder)
        schedule = hitec_schedule(
            num_passes=args.passes,
            time_scale=args.time_scale,
            backtrack_base=args.backtracks,
        )
    else:
        driver = gahitec(circuit, seed=args.seed,
                         backend=args.backend, jobs=args.jobs,
                         telemetry=recorder)
        schedule = gahitec_schedule(
            x=x,
            num_passes=args.passes,
            time_scale=args.time_scale,
            backtrack_base=args.backtracks,
        )
    if args.prefilter:
        proven = driver.prefilter_untestable()
        print(f"prefilter: {len(proven)} faults proven untestable")
    result = driver.run(schedule)
    print(result.summary())
    vectors = result.test_set
    if args.compact and vectors:
        compacted = compact_test_set(
            circuit, vectors, list(result.detected.values())
        )
        print(f"compaction: {compacted.original_vectors} -> "
              f"{compacted.compacted_vectors} vectors")
        vectors = compacted.vectors
    if args.output:
        _write_vectors(args.output, vectors)
        print(f"wrote {len(vectors)} vectors to {args.output}")
    if args.telemetry and result.report is not None:
        result.report.save(args.telemetry)
        print(f"wrote telemetry report to {args.telemetry}")
    if args.trace and recorder is not None:
        recorder.save_trace(args.trace)
        print(f"wrote {len(recorder.trace_events)} trace events "
              f"to {args.trace}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    new = RunReport.load(args.report)
    if args.against:
        old = RunReport.load(args.against)
        print(render_diff(new, old, only_changed=args.changed_only))
    else:
        print(new.summary())
    return 0


def cmd_faultsim(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    vectors = _read_vectors(args.vectors, len(circuit.inputs))
    report = evaluate_test_set(circuit, vectors,
                               backend=args.backend, jobs=args.jobs)
    print(report)
    if args.list_undetected:
        detected = set(report.detected)
        for fault in collapse_faults(circuit):
            if fault not in detected:
                print(f"  undetected: {fault}")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    if args.output.endswith(".v"):
        save_verilog(circuit, args.output)
    else:
        save_bench(circuit, args.output)
    print(f"wrote {circuit.name} to {args.output}")
    return 0


def cmd_scan(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    scanned, chain = insert_scan(circuit)
    if args.output.endswith(".v"):
        save_verilog(scanned, args.output)
    else:
        save_bench(scanned, args.output)
    print(f"inserted a {chain.length}-bit scan chain; "
          f"wrote {scanned.name} to {args.output}")
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    circuit = resolve_circuit(args.circuit)
    vectors = _read_vectors(args.vectors, len(circuit.inputs))
    dictionary = FaultDictionary(circuit, vectors)
    print(f"dictionary: {len(dictionary.detected_faults)} detectable faults, "
          f"resolution {dictionary.diagnostic_resolution():.0%}")
    failures = []
    with open(args.failures, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            cycle, po = line.split()
            failures.append((int(cycle), int(po)))
    for rank, cand in enumerate(dictionary.diagnose(failures), 1):
        mark = "exact" if cand.exact else (
            f"{cand.misses} unexplained / {cand.mispredicts} mispredicted"
        )
        names = ", ".join(str(f) for f in cand.faults)
        print(f"  {rank}. [{mark}] {names}")
    return 0


def _add_sim_options(p: argparse.ArgumentParser) -> None:
    """Simulation-backend options shared by the simulating commands."""
    p.add_argument("--backend", choices=["event", "codegen"], default=None,
                   help="simulation backend (default: $REPRO_SIM_BACKEND "
                        "or 'event'; 'codegen' compiles per-circuit kernels)")
    p.add_argument("--jobs", type=int, default=1,
                   help="fault-simulation worker processes (default 1)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GA-HITEC hybrid sequential-circuit test generation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="circuit statistics")
    p.add_argument("circuit", help=".bench file or built-in name")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("faults", help="list the collapsed fault universe")
    p.add_argument("circuit")
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "atpg", aliases=["run-hybrid"], help="generate tests (GA-HITEC)"
    )
    p.add_argument("circuit")
    p.add_argument("-o", "--output", help="write vectors to this file")
    p.add_argument("--baseline", action="store_true",
                   help="run the deterministic HITEC baseline instead")
    p.add_argument("--passes", type=int, default=3)
    p.add_argument("--seq-len", type=int, default=0,
                   help="GA sequence length x (default: 4 x sequential depth)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--time-scale", type=float, default=0.05,
                   help="fraction of the paper's per-fault time limits")
    p.add_argument("--backtracks", type=int, default=100,
                   help="pass-1 PODEM backtrack budget")
    p.add_argument("--prefilter", action="store_true",
                   help="prove untestable faults before the GA passes")
    p.add_argument("--compact", action="store_true",
                   help="drop test sequences that add no coverage")
    p.add_argument("--telemetry", metavar="PATH",
                   help="write a structured run report (JSON) to PATH")
    p.add_argument("--trace", metavar="PATH",
                   help="write span trace events (JSONL) to PATH")
    _add_sim_options(p)
    p.set_defaults(func=cmd_atpg)

    p = sub.add_parser(
        "report", help="pretty-print a run report, or diff two reports"
    )
    p.add_argument("report", help="run report JSON written by --telemetry")
    p.add_argument("against", nargs="?", default=None,
                   help="older report to diff against")
    p.add_argument("--changed-only", action="store_true",
                   help="only show fields whose values differ")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("faultsim", help="grade a vector file")
    p.add_argument("circuit")
    p.add_argument("vectors", help="file with one 0/1/x vector per line")
    p.add_argument("--list-undetected", action="store_true")
    _add_sim_options(p)
    p.set_defaults(func=cmd_faultsim)

    p = sub.add_parser("convert", help="convert between .bench and .v")
    p.add_argument("circuit")
    p.add_argument("output", help="target file (.bench or .v)")
    p.set_defaults(func=cmd_convert)

    p = sub.add_parser("scan", help="insert a full-scan chain")
    p.add_argument("circuit")
    p.add_argument("output", help="target file (.bench or .v)")
    p.set_defaults(func=cmd_scan)

    p = sub.add_parser("diagnose", help="rank faults against tester failures")
    p.add_argument("circuit")
    p.add_argument("vectors", help="the applied test vectors")
    p.add_argument("failures", help="file of failing 'cycle po_index' pairs")
    p.set_defaults(func=cmd_diagnose)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
