"""Word-level circuit construction that elaborates directly to gates."""

from .builder import Bus, RegisterLoop, RtlBuilder

__all__ = ["Bus", "RegisterLoop", "RtlBuilder"]
