"""Word-level netlist construction ("RTL") that synthesises to gates.

The paper's Table III circuits were synthesised from high-level
descriptions; this module provides the equivalent substrate: a builder
with buses (little-endian lists of net names), word-level operators
(adders, muxes, comparators), and registers, all elaborated immediately
into the same gate primitives the rest of the package consumes.

Example::

    b = RtlBuilder("accumulator")
    data = b.input_bus("data", 8)
    acc = b.register_loop(8, "acc")          # declare feedback register
    total, _carry = b.add(acc.q, data)
    acc.drive(total)
    b.output_bus(acc.q, "sum")
    circuit = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit
from ..circuit.transform import sweep
from ..circuit.validate import check

#: A bus is a little-endian list of net names (index 0 = LSB).
Bus = List[str]


@dataclass
class RegisterLoop:
    """A register declared before its input logic exists.

    ``q`` is usable immediately; call :meth:`drive` exactly once with the
    next-state bus.
    """

    builder: "RtlBuilder"
    q: Bus
    _driven: bool = False

    def drive(self, d: Bus, enable: Optional[str] = None) -> None:
        """Connect the register's next-state input (optionally gated)."""
        if self._driven:
            raise ValueError("register already driven")
        if len(d) != len(self.q):
            raise ValueError("width mismatch driving register")
        if enable is not None:
            d = self.builder.mux2(enable, self.q, d)
        for q_net, d_net in zip(self.q, d):
            self.builder.circuit.add_gate(
                self.builder._loop_d[q_net], GateType.BUF, [d_net]
            )
        self._driven = True


class RtlBuilder:
    """Builds a :class:`~repro.circuit.Circuit` from word-level operations."""

    def __init__(self, name: str):
        self.circuit = Circuit(name)
        self._counter = 0
        self._loop_d: dict = {}
        self._loops: List[RegisterLoop] = []

    # ------------------------------------------------------------------
    # naming / primitives
    # ------------------------------------------------------------------
    def fresh(self, prefix: str = "n") -> str:
        """A new unique net name."""
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def gate(self, gtype: GateType, inputs: Sequence[str], prefix: str = "n") -> str:
        """Add one gate and return its output net."""
        out = self.fresh(prefix)
        self.circuit.add_gate(out, gtype, list(inputs))
        return out

    def not_(self, a: str) -> str:
        return self.gate(GateType.NOT, [a])

    def and_(self, *ins: str) -> str:
        return ins[0] if len(ins) == 1 else self.gate(GateType.AND, ins)

    def or_(self, *ins: str) -> str:
        return ins[0] if len(ins) == 1 else self.gate(GateType.OR, ins)

    def xor_(self, *ins: str) -> str:
        return ins[0] if len(ins) == 1 else self.gate(GateType.XOR, ins)

    def nand_(self, *ins: str) -> str:
        return self.gate(GateType.NAND, ins)

    def nor_(self, *ins: str) -> str:
        return self.gate(GateType.NOR, ins)

    def const0(self) -> str:
        return self.gate(GateType.CONST0, [])

    def const1(self) -> str:
        return self.gate(GateType.CONST1, [])

    # ------------------------------------------------------------------
    # buses
    # ------------------------------------------------------------------
    def input_bus(self, name: str, width: int) -> Bus:
        """Declare ``width`` primary inputs named ``name_0 .. name_{w-1}``."""
        return [self.circuit.add_input(f"{name}_{i}") for i in range(width)]

    def input_bit(self, name: str) -> str:
        """Declare a single primary input."""
        return self.circuit.add_input(name)

    def output_bus(self, bus: Bus, name: str = "") -> Bus:
        """Declare every net of ``bus`` as a primary output."""
        for net in bus:
            self.circuit.add_output(net)
        return bus

    def output_bit(self, net: str) -> str:
        """Declare one net as a primary output."""
        self.circuit.add_output(net)
        return net

    def const_bus(self, value: int, width: int) -> Bus:
        """A constant bus holding ``value`` (little-endian)."""
        return [
            self.const1() if (value >> i) & 1 else self.const0()
            for i in range(width)
        ]

    # ------------------------------------------------------------------
    # word-level combinational operators
    # ------------------------------------------------------------------
    def not_bus(self, a: Bus) -> Bus:
        return [self.not_(x) for x in a]

    def and_bus(self, a: Bus, b: Bus) -> Bus:
        return [self.and_(x, y) for x, y in zip(a, b)]

    def or_bus(self, a: Bus, b: Bus) -> Bus:
        return [self.or_(x, y) for x, y in zip(a, b)]

    def xor_bus(self, a: Bus, b: Bus) -> Bus:
        return [self.xor_(x, y) for x, y in zip(a, b)]

    def mux2(self, sel: str, a: Bus, b: Bus) -> Bus:
        """Per-bit 2:1 mux: ``sel == 0`` selects ``a``, ``sel == 1`` selects ``b``."""
        if len(a) != len(b):
            raise ValueError("mux2 width mismatch")
        nsel = self.not_(sel)
        return [
            self.or_(self.and_(nsel, x), self.and_(sel, y))
            for x, y in zip(a, b)
        ]

    def mux_bit(self, sel: str, a: str, b: str) -> str:
        """Single-bit 2:1 mux."""
        return self.mux2(sel, [a], [b])[0]

    def mux_tree(self, sels: Sequence[str], options: Sequence[Bus]) -> Bus:
        """``2**len(sels)``-way mux; ``options`` ordered by select value."""
        if len(options) != 1 << len(sels):
            raise ValueError("mux_tree needs 2**len(sels) options")
        buses = list(options)
        for sel in sels:  # LSB first
            buses = [
                self.mux2(sel, buses[i], buses[i + 1])
                for i in range(0, len(buses), 2)
            ]
        return buses[0]

    def full_adder(self, a: str, b: str, cin: str) -> Tuple[str, str]:
        """Returns (sum, carry-out)."""
        axb = self.xor_(a, b)
        s = self.xor_(axb, cin)
        carry = self.or_(self.and_(a, b), self.and_(axb, cin))
        return s, carry

    def add(self, a: Bus, b: Bus, cin: Optional[str] = None) -> Tuple[Bus, str]:
        """Ripple-carry addition; returns (sum bus, carry-out)."""
        if len(a) != len(b):
            raise ValueError("adder width mismatch")
        carry = cin if cin is not None else self.const0()
        out: Bus = []
        for x, y in zip(a, b):
            s, carry = self.full_adder(x, y, carry)
            out.append(s)
        return out, carry

    def sub(self, a: Bus, b: Bus) -> Tuple[Bus, str]:
        """Two's-complement subtraction; returns (difference, no-borrow).

        The second element is the adder carry-out: 1 means ``a >= b``
        for unsigned operands.
        """
        diff, carry = self.add(a, self.not_bus(b), self.const1())
        return diff, carry

    def inc(self, a: Bus) -> Bus:
        """Increment by one (carry discarded)."""
        out: Bus = []
        carry = self.const1()
        for x in a:
            out.append(self.xor_(x, carry))
            carry = self.and_(x, carry)
        return out

    def dec(self, a: Bus) -> Bus:
        """Decrement by one (borrow discarded)."""
        out: Bus = []
        borrow = self.const1()
        for x in a:
            out.append(self.xor_(x, borrow))
            borrow = self.and_(self.not_(x), borrow)
        return out

    def is_zero(self, a: Bus) -> str:
        """1 when every bit of ``a`` is 0."""
        return self.nor_(*a) if len(a) > 1 else self.not_(a[0])

    def equals(self, a: Bus, b: Bus) -> str:
        """1 when the buses are bitwise equal."""
        diffs = [self.xor_(x, y) for x, y in zip(a, b)]
        return self.nor_(*diffs) if len(diffs) > 1 else self.not_(diffs[0])

    def decoder(self, sel: Bus) -> Bus:
        """Full one-hot decode of ``sel`` (2**len(sel) outputs)."""
        lines: Bus = []
        inv = [self.not_(s) for s in sel]
        for value in range(1 << len(sel)):
            terms = [
                sel[i] if (value >> i) & 1 else inv[i] for i in range(len(sel))
            ]
            lines.append(self.and_(*terms) if len(terms) > 1 else terms[0])
        return lines

    def onehot_mux(self, lines: Sequence[str], buses: Sequence[Bus]) -> Bus:
        """Select among ``buses`` with one-hot ``lines`` (OR of AND terms)."""
        if len(lines) != len(buses):
            raise ValueError("onehot_mux needs one select line per bus")
        width = len(buses[0])
        out: Bus = []
        for bit in range(width):
            terms = [
                self.and_(line, bus[bit]) for line, bus in zip(lines, buses)
            ]
            out.append(self.or_(*terms) if len(terms) > 1 else terms[0])
        return out

    def shift_left(self, a: Bus, fill: Optional[str] = None) -> Bus:
        """Logical left shift by one (pure wiring plus the fill bit)."""
        return [fill if fill is not None else self.const0()] + list(a[:-1])

    def shift_right(self, a: Bus, fill: Optional[str] = None) -> Bus:
        """Right shift by one; ``fill`` becomes the new MSB (0 if omitted)."""
        return list(a[1:]) + [fill if fill is not None else self.const0()]

    # ------------------------------------------------------------------
    # registers
    # ------------------------------------------------------------------
    def register(self, d: Bus, name: str = "reg", enable: Optional[str] = None) -> Bus:
        """A plain register: ``q`` follows ``d`` every clock (gated by enable)."""
        loop = self.register_loop(len(d), name)
        loop.drive(d, enable=enable)
        return loop.q

    def register_loop(self, width: int, name: str = "reg") -> RegisterLoop:
        """Declare a feedback register whose input logic comes later.

        Internally each bit is ``q = DFF(d)`` with ``d`` a placeholder BUF
        gate filled in by :meth:`RegisterLoop.drive`.
        """
        q: Bus = []
        for i in range(width):
            d_net = self.fresh(f"{name}_d{i}")
            q_net = self.fresh(f"{name}_q{i}")
            self.circuit.add_gate(q_net, GateType.DFF, [d_net])
            self._loop_d[q_net] = d_net
            q.append(q_net)
        loop = RegisterLoop(self, q)
        self._loops.append(loop)
        return loop

    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> Circuit:
        """Finish construction: dead-logic sweep, then structural checks.

        The sweep removes elaboration leftovers such as unused top carries
        of adder chains, so the returned netlist is fully observable.
        """
        for loop in self._loops:
            if not loop._driven:
                raise ValueError("a register_loop was never driven")
        swept = sweep(self.circuit)
        return check(swept) if validate else swept
