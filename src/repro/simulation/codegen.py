"""Code-generated simulation kernels: the ``codegen`` backend.

For each compiled circuit (and each *shape* of injected faults) this
module emits the full levelized combinational sweep as one specialized
Python function — straight-line bitwise expressions over local variables,
no per-gate dispatch, no tuple allocation, no attribute lookups — and
``exec``-compiles it once.  :class:`CodegenFrameSimulator` is a drop-in
replacement for the event-driven :class:`~repro.simulation.logic_sim.
FrameSimulator` that runs the kernel instead of propagating events; the
event backend remains the differential-testing oracle.

Kernels are cached on the :class:`~repro.simulation.compiled.
CompiledCircuit` itself, keyed by an *injection signature*: the fault
sites and stuck values, but **not** the slot masks, which are passed in
as runtime arguments.  Fault batches with the same shape (the common
case: the GA justifier re-simulating one target fault for thousands of
candidate sequences) therefore share a single compiled kernel, and the
cache dies with the compiled circuit — no global state.

A generated kernel looks like::

    def _kernel(v1, v0, mask, m0):
        n0 = ~m0
        a3 = v1[3]; b3 = v0[3]          # read sources
        a7 = a3 & a5; b7 = b3 | b5      # AND gate, inlined
        a7 = a7 | m0; b7 = b7 & n0      # stem s-a-1 on the masked slots
        v1[7] = a7; v0[7] = b7          # write back
        ...
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from types import CodeType
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuit.netlist import Circuit
from ..clock import perf_counter
from . import kernel_cache
from .compiled import CompiledCircuit, compile_circuit
from .logic_sim import (
    FrameSimulator,
    Injection,
    _apply_stuck,
    _blend,
    _combine_transition,
    register_backend,
)

#: Kernels cached per compiled circuit; evicted LRU beyond this many shapes.
KERNEL_CACHE_LIMIT = 256

#: Disk-cache format version for marshalled kernel code objects.
KERNEL_CACHE_VERSION = 1

#: Process-cumulative kernel compilation statistics.  The telemetry layer
#: snapshots this around a campaign (reading deltas), so compile cost is
#: attributable per run without threading a recorder into every simulator.
COMPILE_STATS: Dict[str, float] = {"kernels": 0, "seconds": 0.0}

#: Name of the per-CompiledCircuit attribute holding the kernel cache.
_CACHE_ATTR = "_codegen_kernels"

#: One canonical-order injection as it appears in a cache key.  Stuck-at
#: entries are 4-tuples (byte-identical to the model-less days, so every
#: existing cache entry stays valid); non-default models append their
#: name as a fifth element, which can never collide with a stuck-at key.
SignatureEntry = Tuple[int, ...]
Signature = Tuple[SignatureEntry, ...]


def _canonical(injections: Iterable[Injection]) -> List[Injection]:
    """Combinational injections in the canonical (signature) order.

    Flip-flop D-pin injections are excluded: they act at the clock edge,
    outside the combinational sweep, and are handled by the simulator.
    """
    comb = [inj for inj in injections if inj.ff_pos is None]
    return sorted(
        comb,
        key=lambda inj: (
            inj.net,
            inj.stuck,
            -1 if inj.gate_pos is None else inj.gate_pos,
            -1 if inj.pin is None else inj.pin,
            inj.model,
        ),
    )


def injection_signature(injections: Iterable[Injection]) -> Signature:
    """Hashable shape of a set of injections (sites and polarities, no masks)."""
    sig: List[SignatureEntry] = []
    for inj in _canonical(injections):
        entry: Tuple = (
            inj.net,
            inj.stuck,
            -1 if inj.gate_pos is None else inj.gate_pos,
            -1 if inj.pin is None else inj.pin,
        )
        if inj.model != "stuck_at":
            entry = entry + (inj.model,)
        sig.append(entry)
    return tuple(sig)


def _force_lines(a: str, b: str, stuck: int, k: int) -> List[str]:
    """Statements forcing the masked slots of ``(a, b)`` to the stuck value."""
    if stuck == 1:
        return [f"{a} = {a} | m{k}", f"{b} = {b} & n{k}"]
    return [f"{a} = {a} & n{k}", f"{b} = {b} | m{k}"]


def _transition_lines(a: str, b: str, stuck: int, k: int, j: int) -> List[str]:
    """Statements forcing ``(a, b)`` to the transition combine for slot ``k``.

    The site's raw value was captured into ``tc[2j]``/``tc[2j+1]`` before
    any force mutated the locals; ``tp{k}``/``tq{k}`` are the previous
    frame's raw planes passed in by the simulator.  Slow-to-rise is the
    3-valued AND of raw and previous, slow-to-fall the 3-valued OR.
    """
    ra, rb = f"tc[{2 * j}]", f"tc[{2 * j + 1}]"
    fa, fb = f"f{k}a", f"f{k}b"
    if stuck == 0:
        lines = [f"{fa} = {ra} & tp{k}", f"{fb} = {rb} | tq{k}"]
    else:
        lines = [f"{fa} = {ra} | tp{k}", f"{fb} = {rb} & tq{k}"]
    lines.append(f"{a} = ({a} & n{k}) | ({fa} & m{k})")
    lines.append(f"{b} = ({b} & n{k}) | ({fb} & m{k})")
    return lines


def _kernel_transition_slots(
    cc: CompiledCircuit, injections: Sequence[Injection]
) -> List[int]:
    """Canonical indices of transition injections the *kernel* handles.

    Gate-output stems and gate-input pins are baked into the sweep (the
    kernel recomputes their raw value every call, captures it, and
    applies the previous-frame combine).  Transition stems on *sources*
    are excluded: the stored source value would be the forced one, so the
    simulator keeps a raw shadow and pre-forces them before the sweep.
    """
    return [
        k
        for k, inj in enumerate(injections)
        if inj.model != "stuck_at"
        and (inj.gate_pos is not None or cc.gate_of[inj.net] is not None)
    ]


def generate_kernel_source(
    cc: CompiledCircuit,
    injections: Sequence[Injection],
    fn_name: str = "_kernel",
    writeback: "Optional[frozenset]" = None,
) -> str:
    """Emit the specialized full-sweep function for one injection shape.

    ``injections`` must already be in canonical order (mask argument ``k``
    corresponds to ``injections[k]``).  ``writeback`` restricts which gate
    outputs are stored back into the value arrays (``None`` stores all);
    sources the kernel forces are always written back.

    Transition injections at gate outputs / gate pins add parameters: a
    previous-raw pair ``tp{k}``/``tq{k}`` per transition slot and one
    shared capture buffer ``tc`` the kernel writes each site's current
    raw value into (the simulator rolls it into the prevs at each clock).
    """
    tks = _kernel_transition_slots(cc, injections)
    tslot = {k: j for j, k in enumerate(tks)}
    params = ["v1", "v0", "mask"] + [f"m{k}" for k in range(len(injections))]
    for k in tks:
        params.append(f"tp{k}")
        params.append(f"tq{k}")
    if tks:
        params.append("tc")
    body: List[str] = []

    stem_by_net: Dict[int, List[int]] = {}
    pin_by_site: Dict[Tuple[int, int], List[int]] = {}
    for k, inj in enumerate(injections):
        if inj.gate_pos is None:
            stem_by_net.setdefault(inj.net, []).append(k)
        else:
            pin_by_site.setdefault((inj.gate_pos, inj.pin), []).append(k)
        body.append(f"n{k} = ~m{k}")

    def _apply_site(a: str, b: str, ks: List[int], raw_a: str, raw_b: str) -> None:
        """Capture the site raw, then apply each injection in order."""
        for k in ks:
            if injections[k].model != "stuck_at":
                j = tslot[k]
                body.append(f"tc[{2 * j}] = {raw_a}")
                body.append(f"tc[{2 * j + 1}] = {raw_b}")
        for k in ks:
            if injections[k].model == "stuck_at":
                body.extend(_force_lines(a, b, injections[k].stuck, k))
            else:
                body.extend(
                    _transition_lines(a, b, injections[k].stuck, k, tslot[k])
                )

    # sources: primary inputs and flip-flop outputs.  Transition stems on
    # sources are *not* forced here — the simulator pre-forces the stored
    # value from its raw shadow (the array already holds the forced value
    # when the kernel reads it).
    for idx in range(cc.num_nets):
        if cc.gate_of[idx] is not None:
            continue
        body.append(f"a{idx} = v1[{idx}]")
        body.append(f"b{idx} = v0[{idx}]")
        ks = [
            k
            for k in stem_by_net.get(idx, ())
            if injections[k].model == "stuck_at"
        ]
        if ks:
            for k in ks:
                body.extend(_force_lines(f"a{idx}", f"b{idx}",
                                         injections[k].stuck, k))
            # write the forced value back so reads see the faulted net
            body.append(f"v1[{idx}] = a{idx}")
            body.append(f"v0[{idx}] = b{idx}")

    # gates, already in level order
    for pos, gate in enumerate(cc.gates):
        ops: List[Tuple[str, str]] = []
        for pin_idx, src in enumerate(gate.fanin):
            a, b = f"a{src}", f"b{src}"
            ks = pin_by_site.get((pos, pin_idx))
            if ks:
                ta, tb = f"t{pos}_{pin_idx}a", f"t{pos}_{pin_idx}b"
                body.append(f"{ta} = {a}")
                body.append(f"{tb} = {b}")
                _apply_site(ta, tb, ks, a, b)
                a, b = ta, tb
            ops.append((a, b))

        out = gate.out
        oa, ob = f"a{out}", f"b{out}"
        code = gate.code
        if code <= 3:  # AND / NAND / OR / NOR
            if code <= 1:
                one = " & ".join(a for a, _ in ops) if ops else "mask"
                zero = " | ".join(b for _, b in ops) if ops else "0"
            else:
                one = " | ".join(a for a, _ in ops) if ops else "0"
                zero = " & ".join(b for _, b in ops) if ops else "mask"
            if code in (1, 3):  # inverted forms swap the planes
                one, zero = zero, one
            body.append(f"{oa} = {one}")
            body.append(f"{ob} = {zero}")
        elif code <= 5:  # XOR / XNOR: parity fold from constant 0
            if not ops:
                cur = ("0", "mask")
            else:
                cur = ops[0]
                for j in range(1, len(ops)):
                    xa, xb = cur
                    ya, yb = ops[j]
                    na, nb = f"x{pos}_{j}a", f"x{pos}_{j}b"
                    body.append(f"{na} = ({xa} & {yb}) | ({xb} & {ya})")
                    body.append(f"{nb} = ({xa} & {ya}) | ({xb} & {yb})")
                    cur = (na, nb)
            if code == 5:
                cur = (cur[1], cur[0])
            body.append(f"{oa} = {cur[0]}")
            body.append(f"{ob} = {cur[1]}")
        elif code == 6:  # NOT
            body.append(f"{oa} = {ops[0][1]}")
            body.append(f"{ob} = {ops[0][0]}")
        elif code == 7:  # BUF
            body.append(f"{oa} = {ops[0][0]}")
            body.append(f"{ob} = {ops[0][1]}")
        elif code == 8:  # CONST0
            body.append(f"{oa} = 0")
            body.append(f"{ob} = mask")
        else:  # CONST1
            body.append(f"{oa} = mask")
            body.append(f"{ob} = 0")

        ks = stem_by_net.get(out)
        if ks:
            _apply_site(oa, ob, ks, oa, ob)
        if writeback is None or out in writeback:
            body.append(f"v1[{out}] = {oa}")
            body.append(f"v0[{out}] = {ob}")

    if not body:
        body.append("pass")
    lines = [f"def {fn_name}({', '.join(params)}):"]
    lines.extend(f"    {stmt}" for stmt in body)
    return "\n".join(lines) + "\n"


def kernel_for(
    cc: CompiledCircuit,
    injections: Sequence[Injection],
    writeback: "Optional[frozenset]" = None,
) -> Callable[..., None]:
    """The compiled sweep kernel for one canonical injection shape.

    Cached on the compiled circuit itself (LRU, bounded by
    :data:`KERNEL_CACHE_LIMIT`), so the in-memory cache's lifetime is the
    circuit's.  When the persistent kernel cache is enabled
    (:mod:`repro.simulation.kernel_cache`), a memory miss first tries the
    disk entry — a marshalled code object, keyed by circuit fingerprint,
    injection signature, and the interpreter's bytecode tag — and only a
    disk miss pays source generation and ``exec``-compilation.
    """
    cache: "OrderedDict[Tuple[Signature, Optional[frozenset]], Callable[..., None]]"
    cache = getattr(cc, _CACHE_ATTR, None)
    if cache is None:
        cache = OrderedDict()
        setattr(cc, _CACHE_ATTR, cache)
    signature = injection_signature(injections)
    key = (signature, writeback)
    fn = cache.get(key)
    if fn is None:
        disk_key = None
        code = None
        if kernel_cache.cache_dir() is not None:
            disk_key = kernel_cache.entry_key(
                "codegen-kernel",
                (KERNEL_CACHE_VERSION, sys.implementation.cache_tag),
                kernel_cache.circuit_fingerprint(cc),
                (
                    signature,
                    None if writeback is None else tuple(sorted(writeback)),
                ),
            )
            code = kernel_cache.load(disk_key)
            if code is not None and not isinstance(code, CodeType):
                code = None  # foreign payload under our key: recompile
        if code is None:
            t0 = perf_counter()
            source = generate_kernel_source(
                cc, injections, writeback=writeback
            )
            code = compile(source, f"<codegen:{cc.circuit.name}>", "exec")
            COMPILE_STATS["kernels"] += 1
            COMPILE_STATS["seconds"] += perf_counter() - t0
            if disk_key is not None:
                kernel_cache.store(disk_key, code)
        namespace: Dict[str, object] = {"__builtins__": {}}
        exec(code, namespace)  # noqa: S102 - netlist-generated, integrity-checked source
        fn = namespace["_kernel"]
        cache[key] = fn
        if len(cache) > KERNEL_CACHE_LIMIT:
            cache.popitem(last=False)
    else:
        cache.move_to_end(key)
    return fn


class CodegenFrameSimulator(FrameSimulator):
    """Frame simulator whose settle phase is one generated-kernel call.

    Same constructor, state and frame-advance API as
    :class:`~repro.simulation.logic_sim.FrameSimulator`; only the
    propagation strategy differs (full specialized sweep instead of
    event-driven selective trace).  Registered as backend ``"codegen"``.
    """

    def __init__(
        self,
        circuit: "Circuit | CompiledCircuit",
        width: int = 64,
        injections: Iterable[Injection] = (),
    ):
        injections = list(injections)
        super().__init__(circuit, width=width, injections=injections)
        self._canon = _canonical(injections)
        self._kernel_masks = tuple(inj.mask for inj in self._canon)
        # Only the nets the frame loop observes are stored back by the hot
        # kernel: primary outputs and flip-flop D inputs.  ``read`` of any
        # other net falls back to a full-writeback kernel.
        self._observed = frozenset(self.cc.po) | frozenset(self.cc.ff_in)
        self._kernel = kernel_for(self.cc, self._canon, self._observed)
        self._full_kernel = None
        # get_state must resettle only when a stem fault forces a flip-flop
        # output (the kernel re-asserts the force and writes it back)
        ff_out = set(self.cc.ff_out)
        self._state_needs_settle = any(
            inj.gate_pos is None and inj.net in ff_out for inj in self._canon
        )
        # -- transition-model plumbing ---------------------------------
        x1, x0 = self._x
        #: canonical slots whose transition combine the kernel computes
        self._tks = _kernel_transition_slots(self.cc, self._canon)
        #: capture buffer the kernel writes site raws into (2 per slot)
        self._tcap: List[int] = [x1, x0] * len(self._tks)
        #: previous-frame raw planes, flat in tks order (tp0, tq0, ...)
        self._tprev_flat: List[int] = [x1, x0] * len(self._tks)
        #: transition stems on sources -> simulator pre-forces from shadow
        self._tsrc: Dict[int, List[Injection]] = {}
        self._src_shadow: Dict[int, Tuple[int, int]] = {}
        self._tsrc_prev: Dict[int, Tuple[int, int]] = {}
        for inj in self._canon:
            if inj.model != "stuck_at" and inj.gate_pos is None \
                    and self.cc.gate_of[inj.net] is None:
                self._tsrc.setdefault(inj.net, []).append(inj)
                self._src_shadow[inj.net] = (x1, x0)
                self._tsrc_prev[inj.net] = (x1, x0)
        #: transition D-pin sites, forced at the clock edge
        self._tff_prev: Dict[int, Tuple[int, int]] = {
            ff_pos: (x1, x0)
            for ff_pos, injs in self._ff_pin.items()
            if any(i.model != "stuck_at" for i in injs)
        }

    def settle(self) -> None:
        """Run the generated full sweep if any source changed."""
        if not self._dirty:
            return
        if self._has_transition:
            if self._tsrc:
                self._assert_tsrc()
            if self._tks:
                self._kernel(self.v1, self.v0, self.mask,
                             *self._kernel_masks, *self._tprev_flat,
                             self._tcap)
            else:
                self._kernel(self.v1, self.v0, self.mask,
                             *self._kernel_masks)
        else:
            self._kernel(self.v1, self.v0, self.mask, *self._kernel_masks)
        self._dirty = False

    def _assert_tsrc(self) -> None:
        """Re-force transition source stems from their raw shadows."""
        v1, v0 = self.v1, self.v0
        for idx, injs in self._tsrc.items():
            raw = self._src_shadow[idx]
            p1, p0 = raw
            prev = self._tsrc_prev[idx]
            for inj in injs:
                forced = _combine_transition(raw, prev, inj.stuck)
                p1, p0 = _blend((p1, p0), forced, inj.mask)
            v1[idx] = p1
            v0[idx] = p0

    def reset(self) -> None:
        super().reset()
        if self._has_transition:
            x1, x0 = self._x
            self._tcap[:] = [x1, x0] * len(self._tks)
            self._tprev_flat[:] = [x1, x0] * len(self._tks)
            for idx in self._tsrc:
                self._src_shadow[idx] = (x1, x0)
                self._tsrc_prev[idx] = (x1, x0)
            for ff_pos in self._tff_prev:
                self._tff_prev[ff_pos] = (x1, x0)

    def apply_inputs(self, vector) -> None:
        """Drive primary inputs with direct array writes (no event setup)."""
        v1, v0 = self.v1, self.v0
        mask = self.mask
        tsrc = self._tsrc
        if isinstance(vector, dict):
            index = self.cc.index
            for name, (p1, p0) in vector.items():
                idx = index[name]
                v1[idx] = p1 & mask
                v0[idx] = p0 & mask
                if idx in tsrc:
                    self._src_shadow[idx] = (v1[idx], v0[idx])
        else:
            for idx, (p1, p0) in zip(self.cc.pi, vector):
                v1[idx] = p1 & mask
                v0[idx] = p0 & mask
                if idx in tsrc:
                    self._src_shadow[idx] = (v1[idx], v0[idx])
        self._dirty = True

    def clock(self) -> None:
        """Latch D inputs into flip-flop outputs; resettling is deferred.

        The next :meth:`settle` (triggered by the next frame's inputs or by
        any read accessor) runs one sweep covering both the new state and
        the new inputs, halving the sweeps per frame versus the event
        backend's settle-on-clock.  Transition sites advance here: kernel
        sites roll the capture buffer into the prev planes, source sites
        roll their shadow, D-pin sites the raw latched value.
        """
        self.settle()  # D values must be stable before the edge
        v1, v0 = self.v1, self.v0
        # read every D value before writing any output: a flip-flop may
        # feed another flip-flop's D pin directly
        new1 = [v1[i] for i in self.cc.ff_in]
        new0 = [v0[i] for i in self.cc.ff_in]
        ff_raws: Dict[int, Tuple[int, int]] = {}
        for ff_pos, injs in self._ff_pin.items():
            val = new1[ff_pos], new0[ff_pos]
            raw = val
            for inj in injs:
                if inj.model == "stuck_at":
                    val = _apply_stuck(val, inj.stuck, inj.mask)
                else:
                    forced = _combine_transition(
                        raw, self._tff_prev[ff_pos], inj.stuck
                    )
                    val = _blend(val, forced, inj.mask)
            if ff_pos in self._tff_prev:
                ff_raws[ff_pos] = raw
            new1[ff_pos], new0[ff_pos] = val
        if self._has_transition:
            self._tprev_flat[:] = self._tcap
            for idx in self._tsrc:
                self._tsrc_prev[idx] = self._src_shadow[idx]
            for ff_pos, raw in ff_raws.items():
                self._tff_prev[ff_pos] = raw
        tsrc = self._tsrc
        for out_idx, p1, p0 in zip(self.cc.ff_out, new1, new0):
            v1[out_idx] = p1
            v0[out_idx] = p0
            if out_idx in tsrc:
                self._src_shadow[out_idx] = (p1, p0)
        self._dirty = True

    # -- read accessors settle on demand (clock defers its sweep) --------
    def read(self, net: str) -> "Tuple[int, int]":
        self.settle()
        idx = self.cc.index[net]
        if self.cc.gate_of[idx] is not None and idx not in self._observed:
            # refresh every net once via the full-writeback kernel
            if self._full_kernel is None:
                self._full_kernel = kernel_for(self.cc, self._canon, None)
            if self._tks:
                self._full_kernel(self.v1, self.v0, self.mask,
                                  *self._kernel_masks, *self._tprev_flat,
                                  self._tcap)
            else:
                self._full_kernel(self.v1, self.v0, self.mask,
                                  *self._kernel_masks)
        return self.v1[idx], self.v0[idx]

    def read_outputs(self) -> "List[Tuple[int, int]]":
        self.settle()
        return super().read_outputs()

    def read_next_state(self) -> "List[Tuple[int, int]]":
        self.settle()
        return super().read_next_state()

    def get_state(self) -> "List[Tuple[int, int]]":
        # flip-flop outputs are sources the clock writes directly; a sweep
        # only matters when a stem force sits on one of them.  Transition
        # stems store the forced value on the net but the latch holds the
        # raw — report the raw shadow so carried states don't re-apply the
        # delay (matches the event backend).
        if self._state_needs_settle:
            self.settle()
        out: "List[Tuple[int, int]]" = []
        v1, v0 = self.v1, self.v0
        tsrc = self._tsrc
        for i in self.cc.ff_out:
            val = (v1[i], v0[i])
            injs = tsrc.get(i)
            if injs:
                tmask = 0
                for inj in injs:
                    tmask |= inj.mask
                val = _blend(val, self._src_shadow[i], tmask)
            out.append(val)
        return out

    def _write_source(self, idx: int, value) -> None:
        # Stem injections on sources are applied (and written back) by the
        # kernel, so the write itself stays raw; any write re-arms the sweep.
        # Transition source stems shadow the raw for the pre-sweep force.
        p1, p0 = value
        mask = self.mask
        self.v1[idx] = p1 & mask
        self.v0[idx] = p0 & mask
        if idx in self._tsrc:
            self._src_shadow[idx] = (self.v1[idx], self.v0[idx])
        self._dirty = True


register_backend("codegen", CodegenFrameSimulator)
