"""Vectorized numpy simulation backend: whole-matrix levelized sweeps.

The ``numpy`` backend lowers the levelized combinational sweep into a
handful of array operations per logic level over a ``(rows × words)``
uint64 matrix that holds every net's three-valued value across all
pattern slots at once — one gate-level operation covers thousands of
patterns *and* a whole fault batch.

Representation.  Each net owns four consecutive matrix rows: the PROOFS
planes and their complements ``p1, ~p1, p0, ~p0``.  Materializing the
complements makes every non-parity gate a pure AND-reduction by
De Morgan duality (``OR(a…) = ~AND(~a…)``), so one level of the sweep is
exactly: one row gather, one chained ``bitwise_and`` reduction, one
complement, one scatter.  Unused gather slots pad with the constant-ones
row (the AND identity), so mixed-arity levels vectorize uniformly.
XOR/XNOR cannot be a single AND-reduction; levels containing parity
gates run a short per-gate fold after the vectorized group (the ISCAS
benchmark circuits contain none — the path exists for generality and the
hypothesis differential suite).

Fault injection is *data*, not code: stuck-at forces become dense
OR/AND mask planes applied to the gather buffer (branch faults — one
gate's private view of an input net) or to the reduction result (stem
faults).  One compiled :class:`NumpyProgram` per circuit therefore
serves **every** injection shape, where the ``codegen`` backend must
exec-compile a fresh kernel per injection signature (milliseconds per
shape).  That makes this backend the fast path for workloads whose
injection shape changes every call — ``FaultSimulator.grade_blocks``,
campaign merge re-grading, incremental ATPG loops — and makes the
program trivially persistable: :func:`program_for` stores it through
:mod:`repro.simulation.kernel_cache`, so warm processes skip the build
entirely.

numpy is an optional dependency.  The module imports cleanly without
it, but constructing a simulator raises
:class:`~repro.simulation.logic_sim.BackendUnavailableError` and the
backend registry silently falls back to ``codegen``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # registration below is skipped; resolve_backend falls back
    np = None  # type: ignore[assignment]

from ..clock import perf_counter
from .compiled import CompiledCircuit
from .encoding import X, full_mask
from . import kernel_cache
from .logic_sim import (
    BackendUnavailableError,
    FrameSimulator,
    Injection,
    register_backend,
)

#: Process-cumulative sweep-program build statistics; the disk-cache and
#: telemetry layers read deltas, mirroring ``codegen.COMPILE_STATS``.
PROGRAM_STATS: Dict[str, float] = {"programs": 0, "seconds": 0.0}

#: Serialized-program format version (part of the disk-cache key).
PROGRAM_CACHE_VERSION = 1

#: Attribute caching the program on a CompiledCircuit instance.
_CACHE_ATTR = "_numpy_program"

# Plane offsets within a net's four matrix rows.
P1, N1, P0, N0 = 0, 1, 2, 3

#: Per gate code: source plane and direct target plane for the two
#: AND-reductions (P, Q) that produce the gate's value.  The reduction
#: result lands in its *direct* row and its complement in the paired row
#: (p1↔~p1, p0↔~p0), e.g. NAND's 1-plane is ``OR(a0…) = ~AND(~a0…)``, so
#: P reduces the ``~p0`` rows and writes directly to ``~p1``.
_PLANE: Dict[int, Tuple[int, int, int, int]] = {
    0: (P1, P1, N0, N0),  # AND:  p1 = AND(a1)        ~p0 = AND(~a0)
    1: (N0, N1, P1, P0),  # NAND: ~p1 = AND(~a0)       p0 = AND(a1)
    2: (N1, N1, P0, P0),  # OR:   ~p1 = AND(~a1)       p0 = AND(a0)
    3: (P0, P1, N1, N0),  # NOR:  p1 = AND(a0)        ~p0 = AND(~a1)
    6: (P0, P1, P1, P0),  # NOT:  p1 = a0              p0 = a1
    7: (P1, P1, P0, P0),  # BUF:  p1 = a1              p0 = a0
}

#: Complement-row pairing.
_PAIR = {P1: N1, N1: P1, P0: N0, N0: P0}

_FULL = 0xFFFFFFFFFFFFFFFF

#: uint64 single-bit constants, indexed by bit position — the per-slot
#: binding fast path writes these as scalars instead of building a full
#: word-mask array per injection.
_BIT_TAB = (
    None
    if np is None
    else (np.uint64(1) << np.arange(64, dtype=np.uint64))
)

#: Attribute caching per-fault force routing on a CompiledCircuit.
_OPS_ATTR = "_numpy_fault_ops"


def _require_numpy() -> Any:
    """The numpy module, or a :class:`BackendUnavailableError`."""
    if np is None:
        raise BackendUnavailableError(
            "the numpy simulation backend requires numpy "
            "(install the 'numpy' extra or choose another backend)"
        )
    return np


def _int_array(values: Sequence[int]) -> "np.ndarray":
    return np.asarray(list(values), dtype=np.intp)


class _LevelProgram:
    """One logic level of the compiled sweep (pure data)."""

    __slots__ = ("K", "G", "idx", "scat", "rnr_pos", "xors")

    def __init__(
        self,
        K: int,
        G: int,
        idx: "Optional[np.ndarray]",
        scat: "Optional[np.ndarray]",
        rnr_pos: Dict[int, Tuple[int, int, int, int]],
        xors: List[Tuple[int, int, bool, Tuple[int, ...]]],
    ) -> None:
        self.K = K
        self.G = G
        self.idx = idx  # (K * 2G,) gather rows, pin-major
        self.scat = scat  # (4G,) target rows for [R..., ~R...]
        #: gate-output net -> its four result-buffer positions, plane order
        self.rnr_pos = rnr_pos
        #: parity gates: (gate_pos, out_net, is_xnor, fanin)
        self.xors = xors


class NumpyProgram:
    """The injection-independent compiled sweep for one circuit.

    Built once per circuit (and persisted via the kernel cache): the
    row layout, the per-level gather/scatter index arrays, and the site
    maps injection binding needs.  Holds no simulation state and no
    masks — every width and every fault batch binds the same program.
    """

    def __init__(self, cc: CompiledCircuit) -> None:
        n = cc.num_nets
        pi = list(cc.pi)
        ffo = list(cc.ff_out)
        source_block = pi + ffo
        seen = set(source_block)
        order = source_block + [i for i in range(n) if i not in seen]
        base = np.empty(n, dtype=np.intp)
        for pos, net in enumerate(order):
            base[net] = 4 * pos
        self.base = base
        self.n_nets = n
        self.ones_row = 4 * n
        self.zeros_row = 4 * n + 1
        self.n_rows = 4 * n + 2
        self.pi_hi = 4 * len(pi)
        self.ffo_lo = self.pi_hi
        self.src_hi = 4 * len(source_block)
        self.po_rows = _int_array(
            [base[i] + p for i in cc.po for p in (P1, P0)]
        )
        self.ffin_rows = _int_array(
            [base[i] + p for i in cc.ff_in for p in (P1, N1, P0, N0)]
        )
        #: gate position ->
        #: ("u", level_index, result_row) | ("x", level_index, xor_index)
        self.posmap: Dict[int, Tuple[str, int, int]] = {}
        self.levels: List[_LevelProgram] = []
        self._build_levels(cc)

    # -- construction --------------------------------------------------
    def _build_levels(self, cc: CompiledCircuit) -> None:
        by_level: Dict[int, List[Tuple[int, Any]]] = {}
        for pos, gate in enumerate(cc.gates):
            by_level.setdefault(gate.level, []).append((pos, gate))
        base, ones, zeros = self.base, self.ones_row, self.zeros_row
        for level in sorted(by_level):
            gates = by_level[level]
            unified = [(p, g) for p, g in gates if g.code not in (4, 5)]
            xors: List[Tuple[int, int, bool, Tuple[int, ...]]] = []
            for pos, gate in gates:
                if gate.code in (4, 5):
                    self.posmap[pos] = ("x", len(self.levels), len(xors))
                    xors.append(
                        (pos, gate.out, gate.code == 5, tuple(gate.fanin))
                    )
            G = len(unified)
            idx = scat = None
            rnr_pos: Dict[int, Tuple[int, int, int, int]] = {}
            K = 1
            if G:
                K = max(
                    max((len(g.fanin) for _, g in unified), default=1), 1
                )
                idx2 = np.full((2 * G, K), ones, dtype=np.intp)
                scat = np.empty(4 * G, dtype=np.intp)
                for r, (pos, gate) in enumerate(unified):
                    self.posmap[pos] = ("u", len(self.levels), r)
                    out_base = base[gate.out]
                    code = gate.code
                    if code >= 8:  # CONST0 / CONST1 read the aux rows
                        idx2[r, 0] = ones if code == 9 else zeros
                        idx2[G + r, 0] = zeros if code == 9 else ones
                        dp, dq = P1, P0
                    else:
                        sp, dp, sq, dq = _PLANE[code]
                        for k, src in enumerate(gate.fanin):
                            idx2[r, k] = base[src] + sp
                            idx2[G + r, k] = base[src] + sq
                    scat[r] = out_base + dp
                    scat[G + r] = out_base + dq
                    scat[2 * G + r] = out_base + _PAIR[dp]
                    scat[3 * G + r] = out_base + _PAIR[dq]
                    pos_of = {
                        dp: r,
                        _PAIR[dp]: 2 * G + r,
                        dq: G + r,
                        _PAIR[dq]: 3 * G + r,
                    }
                    rnr_pos[gate.out] = (
                        pos_of[P1], pos_of[N1], pos_of[P0], pos_of[N0]
                    )
                # pin-major flat gather order, so the reduction runs over
                # contiguous (2G, W) slices
                idx = np.ascontiguousarray(idx2.T).reshape(K * 2 * G)
            self.levels.append(
                _LevelProgram(K, G, idx, scat, rnr_pos, xors)
            )

    # -- persistence ----------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """Marshal-serializable form (plain ints, bytes, tuples)."""

        def dump(arr: "Optional[np.ndarray]") -> Optional[bytes]:
            return None if arr is None else arr.astype("<i8").tobytes()

        return {
            "version": PROGRAM_CACHE_VERSION,
            "n_nets": self.n_nets,
            "base": dump(self.base),
            "pi_hi": self.pi_hi,
            "src_hi": self.src_hi,
            "po_rows": dump(self.po_rows),
            "ffin_rows": dump(self.ffin_rows),
            "posmap": tuple(sorted(self.posmap.items())),
            "levels": tuple(
                (
                    lv.K,
                    lv.G,
                    dump(lv.idx),
                    dump(lv.scat),
                    tuple(sorted(lv.rnr_pos.items())),
                    tuple(lv.xors),
                )
                for lv in self.levels
            ),
        }

    @classmethod
    def from_payload(
        cls, cc: CompiledCircuit, payload: Dict[str, Any]
    ) -> "NumpyProgram":
        """Rebuild a program from :meth:`to_payload` data.

        Raises on any shape mismatch; callers treat that as a cache miss
        and rebuild from the circuit.
        """

        def arr(blob: Optional[bytes]) -> "Optional[np.ndarray]":
            if blob is None:
                return None
            return np.frombuffer(blob, dtype="<i8").astype(np.intp)

        if payload["version"] != PROGRAM_CACHE_VERSION:
            raise ValueError("program payload version mismatch")
        prog = cls.__new__(cls)
        n = int(payload["n_nets"])
        if n != cc.num_nets:
            raise ValueError("program payload is for a different circuit")
        prog.n_nets = n
        prog.base = arr(payload["base"])
        prog.ones_row = 4 * n
        prog.zeros_row = 4 * n + 1
        prog.n_rows = 4 * n + 2
        prog.pi_hi = int(payload["pi_hi"])
        prog.ffo_lo = prog.pi_hi
        prog.src_hi = int(payload["src_hi"])
        prog.po_rows = arr(payload["po_rows"])
        prog.ffin_rows = arr(payload["ffin_rows"])
        prog.posmap = {pos: tuple(val) for pos, val in payload["posmap"]}
        prog.levels = [
            _LevelProgram(
                K,
                G,
                arr(idx),
                arr(scat),
                {net: tuple(p) for net, p in rnr},
                [tuple(x) for x in xors],
            )
            for K, G, idx, scat, rnr, xors in payload["levels"]
        ]
        return prog


def program_for(cc: CompiledCircuit) -> NumpyProgram:
    """The (possibly disk-cached) sweep program for a compiled circuit."""
    prog = getattr(cc, _CACHE_ATTR, None)
    if prog is not None:
        return prog
    _require_numpy()
    key = kernel_cache.entry_key(
        "numpy-program",
        PROGRAM_CACHE_VERSION,
        kernel_cache.circuit_fingerprint(cc),
    )
    payload = kernel_cache.load(key)
    if payload is not None:
        try:
            prog = NumpyProgram.from_payload(cc, payload)
        except (KeyError, ValueError, TypeError):
            prog = None  # stale/foreign entry: rebuild and overwrite
    if prog is None:
        start = perf_counter()
        prog = NumpyProgram(cc)
        PROGRAM_STATS["programs"] += 1
        PROGRAM_STATS["seconds"] += perf_counter() - start
        kernel_cache.store(key, prog.to_payload())
    setattr(cc, _CACHE_ATTR, prog)
    return prog


# ----------------------------------------------------------------------
# runtime: one program bound to a word width and an injection set
# ----------------------------------------------------------------------
def _mask_words(mask: int, W: int) -> "np.ndarray":
    return np.frombuffer(
        (mask & ((1 << (64 * W)) - 1)).to_bytes(8 * W, "little"),
        dtype="<u8",
    ).astype(np.uint64)


def _words_to_int(row: "np.ndarray") -> int:
    return int.from_bytes(row.astype("<u8").tobytes(), "little")


class _DensePair:
    """A dense OR-plane / AND-plane force applied to one buffer."""

    __slots__ = ("orp", "andp", "_shape")

    def __init__(self, shape: Tuple[int, int]) -> None:
        self.orp: "Optional[np.ndarray]" = None
        self.andp: "Optional[np.ndarray]" = None
        self._shape = shape

    def force(self, row: int, stuck_on: bool, mask_w: "np.ndarray") -> None:
        if stuck_on:
            if self.orp is None:
                self.orp = np.zeros(self._shape, dtype=np.uint64)
            self.orp[row] |= mask_w
        else:
            if self.andp is None:
                self.andp = np.full(
                    self._shape, np.uint64(_FULL), dtype=np.uint64
                )
            self.andp[row] &= ~mask_w

    def force_bit(self, row: int, stuck_on: bool, wi: int, bit: int) -> None:
        """Single-slot force: touch one word instead of a whole mask row."""
        if stuck_on:
            if self.orp is None:
                self.orp = np.zeros(self._shape, dtype=np.uint64)
            self.orp[row, wi] |= bit
        else:
            if self.andp is None:
                self.andp = np.full(
                    self._shape, np.uint64(_FULL), dtype=np.uint64
                )
            self.andp[row, wi] &= ~bit

    def apply(self, buf: "np.ndarray") -> None:
        if self.orp is not None:
            buf |= self.orp
        if self.andp is not None:
            buf &= self.andp

    @property
    def empty(self) -> bool:
        return self.orp is None and self.andp is None


def _stem_rows(stuck: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """(planes forced on, planes forced off) for a stem stuck value."""
    if stuck == 1:
        return (P1, N0), (P0, N1)
    return (P0, N1), (P1, N0)


# force-op kinds produced by _fault_ops (first tuple element)
(
    _OP_FF,
    _OP_STEM,
    _OP_SRC,
    _OP_OSRC,
    _OP_PIN,
    _OP_XSTEM,
    _OP_XPIN,
    _OP_TFF,
    _OP_TSTEM,
    _OP_TSRC,
    _OP_TPIN,
    _OP_TXSTEM,
    _OP_TXPIN,
) = range(13)


class _TSite:
    """One transition-fault site bound to a slot mask.

    Holds the site's raw-value history as plane word rows: ``prev*`` is
    the raw value at the previous clock edge (X before the first frame),
    ``cur*`` the raw value most recently computed this frame.  The
    forced value blended under ``mask`` is the 3-valued AND (slow-to-
    rise) or OR (slow-to-fall) of the two.
    """

    __slots__ = ("stuck", "mask", "nmask", "prev1", "prev0", "cur1",
                 "cur0", "loc")

    def __init__(
        self, stuck: int, mask_w: "np.ndarray", W: int, loc: Any
    ) -> None:
        self.stuck = stuck
        self.mask = mask_w
        self.nmask = ~mask_w
        full = np.uint64(_FULL)
        self.prev1 = np.full(W, full, dtype=np.uint64)
        self.prev0 = np.full(W, full, dtype=np.uint64)
        self.cur1 = np.full(W, full, dtype=np.uint64)
        self.cur0 = np.full(W, full, dtype=np.uint64)
        self.loc = loc

    def reset(self) -> None:
        full = np.uint64(_FULL)
        self.prev1.fill(full)
        self.prev0.fill(full)
        self.cur1.fill(full)
        self.cur0.fill(full)

    def advance(self) -> None:
        self.prev1[:] = self.cur1
        self.prev0[:] = self.cur0

    def forced(self) -> Tuple["np.ndarray", "np.ndarray"]:
        if self.stuck == 0:  # slow-to-rise: 3-valued AND of cur and prev
            return self.cur1 & self.prev1, self.cur0 | self.prev0
        return self.cur1 | self.prev1, self.cur0 & self.prev0


def _fault_ops(
    prog: NumpyProgram,
    cc: CompiledCircuit,
    net: int,
    stuck: int,
    gate_pos: Optional[int],
    pin: Optional[int],
    ff_pos: Optional[int],
    model: str = "stuck_at",
) -> Tuple[Tuple[int, ...], ...]:
    """Mask-independent force routing for one injection site.

    The returned ops say *where* in the kernel's force containers the
    stuck value lands; the slot mask is supplied when the ops are bound,
    so one routing (cached per fault on the compiled circuit) serves
    every chunk position the fault ever occupies.
    """
    ops: List[Tuple[int, ...]] = []
    if model != "stuck_at":
        if ff_pos is not None:
            ops.append((_OP_TFF, 4 * ff_pos, stuck))
        elif gate_pos is None:
            driver = cc.gate_of[net]
            if driver is not None:
                kind, level_i, _r = prog.posmap[driver]
                if kind == "x":
                    ops.append((_OP_TXSTEM, driver, stuck))
                else:
                    positions = prog.levels[level_i].rnr_pos[net]
                    ops.append((_OP_TSTEM, level_i, positions, stuck))
            else:
                ops.append((_OP_TSRC, int(prog.base[net]), stuck))
        else:
            kind, level_i, r = prog.posmap[gate_pos]
            if kind == "x":
                ops.append((_OP_TXPIN, gate_pos, pin, stuck))
            else:
                lv = prog.levels[level_i]
                gate = cc.gates[gate_pos]
                sp, _dp, sq, _dq = _PLANE[gate.code]
                src_row = int(prog.base[gate.fanin[pin]])
                ops.append((
                    _OP_TPIN,
                    level_i,
                    pin * 2 * lv.G + r,
                    sp,
                    pin * 2 * lv.G + lv.G + r,
                    sq,
                    src_row,
                    stuck,
                ))
        return tuple(ops)
    if ff_pos is not None:
        # D-pin fault: forces the value latched at the clock edge
        row = 4 * ff_pos
        on, off = _stem_rows(stuck)
        for plane in on:
            ops.append((_OP_FF, row + plane, True))
        for plane in off:
            ops.append((_OP_FF, row + plane, False))
    elif gate_pos is None:
        driver = cc.gate_of[net]
        if driver is not None:
            kind, level_i, _r = prog.posmap[driver]
            if kind == "x":
                ops.append((_OP_XSTEM, driver, stuck))
            else:
                positions = prog.levels[level_i].rnr_pos[net]
                on, off = _stem_rows(stuck)
                for plane in on:
                    ops.append((_OP_STEM, level_i, positions[plane], True))
                for plane in off:
                    ops.append((_OP_STEM, level_i, positions[plane], False))
        else:
            # source stem (PI / flip-flop output / undriven net)
            row = int(prog.base[net])
            code = _OP_SRC if row < prog.src_hi else _OP_OSRC
            on, off = _stem_rows(stuck)
            for plane in on:
                ops.append((code, row + plane, True))
            for plane in off:
                ops.append((code, row + plane, False))
    else:
        # branch fault: one gate's private view of an input net
        kind, level_i, r = prog.posmap[gate_pos]
        if kind == "x":
            ops.append((_OP_XPIN, gate_pos, pin, stuck))
        else:
            lv = prog.levels[level_i]
            code = cc.gates[gate_pos].code
            sp, _dp, sq, _dq = _PLANE[code]
            for j, plane in ((r, sp), (lv.G + r, sq)):
                flat = pin * 2 * lv.G + j
                # a stuck value turns this gathered plane either fully on
                # or fully off in the masked slots: e.g. stuck-1 sets p1
                # and ~p0
                on = plane in ((P1, N0) if stuck == 1 else (P0, N1))
                ops.append((_OP_PIN, level_i, flat, on))
    return tuple(ops)


def _ops_for_fault(
    prog: NumpyProgram, cc: CompiledCircuit, fault: "Any"
) -> Tuple[Tuple[int, ...], ...]:
    """Per-fault routing ops, cached on the compiled circuit."""
    cache = getattr(cc, _OPS_ATTR, None)
    if cache is None:
        cache = {}
        setattr(cc, _OPS_ATTR, cache)
    ops = cache.get(fault)
    if ops is None:
        from .fault_sim import injection_for  # local import: avoid a cycle

        inj = injection_for(cc, fault, 0)
        ops = _fault_ops(
            prog, cc, inj.net, inj.stuck, inj.gate_pos, inj.pin, inj.ff_pos,
            inj.model,
        )
        cache[fault] = ops
    return ops


class _MatrixKernel:
    """A :class:`NumpyProgram` bound to a slot count and injections.

    Owns the value matrix ``V`` and all per-level scratch buffers;
    :meth:`sweep` is the vectorized equivalent of one full levelized
    settle, :meth:`clock` of one flip-flop latch edge.
    """

    def __init__(
        self,
        prog: NumpyProgram,
        cc: CompiledCircuit,
        slots: int,
        injections: Sequence[Injection],
    ) -> None:
        self.prog = prog
        self.cc = cc
        self.W = W = (max(1, slots) + 63) // 64
        self.V = np.empty((prog.n_rows, W), dtype=np.uint64)
        self.bufs: List[Optional[np.ndarray]] = []
        self.rnr: List[Optional[np.ndarray]] = []
        for lv in prog.levels:
            if lv.G:
                self.bufs.append(
                    np.empty((lv.K * 2 * lv.G, W), dtype=np.uint64)
                )
                self.rnr.append(np.empty((4 * lv.G, W), dtype=np.uint64))
            else:
                self.bufs.append(None)
                self.rnr.append(None)
        n_ff = len(cc.ff_out)
        self.ffbuf = (
            np.empty((4 * n_ff, W), dtype=np.uint64) if n_ff else None
        )
        # injection forces, all as dense mask planes
        self.src = _DensePair((prog.src_hi, W))
        self.other_src: List[Tuple[int, bool, np.ndarray]] = []
        self.pin_f = [_DensePair((lv.K * 2 * lv.G, W)) if lv.G else None
                      for lv in prog.levels]
        self.stem_f = [_DensePair((4 * lv.G, W)) if lv.G else None
                       for lv in prog.levels]
        self.ff_f = _DensePair((4 * n_ff, W))
        #: gate_pos -> pin -> [(stuck, mask_words)]
        self.xor_pin: Dict[int, Dict[int, List[Tuple[int, np.ndarray]]]] = {}
        #: gate_pos -> [(stuck, mask_words)] on the parity gate's output
        self.xor_stem: Dict[int, List[Tuple[int, np.ndarray]]] = {}
        # transition sites, grouped by where their blend patch runs
        self.t_src: List[_TSite] = []
        self.t_ff: List[_TSite] = []
        self.t_stem: List[List[_TSite]] = [[] for _ in prog.levels]
        self.t_pin: List[List[_TSite]] = [[] for _ in prog.levels]
        self.t_xstem: Dict[int, List[_TSite]] = {}
        self.t_xpin: Dict[int, Dict[int, List[_TSite]]] = {}
        self.has_t = False
        for inj in injections:
            self._bind(inj)

    # -- injection binding ---------------------------------------------
    def _bind(self, inj: Injection) -> None:
        """Bind one injection over an arbitrary multi-slot mask."""
        ops = _fault_ops(
            self.prog, self.cc, inj.net, inj.stuck, inj.gate_pos, inj.pin,
            inj.ff_pos, inj.model,
        )
        mask_w = _mask_words(inj.mask, self.W)
        for op in ops:
            kind = op[0]
            if kind == _OP_PIN:
                self.pin_f[op[1]].force(op[2], op[3], mask_w)
            elif kind == _OP_STEM:
                self.stem_f[op[1]].force(op[2], op[3], mask_w)
            elif kind == _OP_SRC:
                self.src.force(op[1], op[2], mask_w)
            elif kind == _OP_FF:
                self.ff_f.force(op[1], op[2], mask_w)
            else:
                self._bind_rare(op, mask_w)

    def bind_slot(self, ops: Tuple[Tuple[int, ...], ...], slot: int) -> None:
        """Bind precomputed fault ops to a single slot (fast path)."""
        wi, bit = slot >> 6, _BIT_TAB[slot & 63]
        mask_w = None
        for op in ops:
            kind = op[0]
            if kind == _OP_PIN:
                self.pin_f[op[1]].force_bit(op[2], op[3], wi, bit)
            elif kind == _OP_STEM:
                self.stem_f[op[1]].force_bit(op[2], op[3], wi, bit)
            elif kind == _OP_SRC:
                self.src.force_bit(op[1], op[2], wi, bit)
            elif kind == _OP_FF:
                self.ff_f.force_bit(op[1], op[2], wi, bit)
            else:
                if mask_w is None:
                    mask_w = _mask_words(1 << slot, self.W)
                self._bind_rare(op, mask_w)

    def _bind_rare(self, op: Tuple[int, ...], mask_w: "np.ndarray") -> None:
        """Undriven-net stems, parity-gate, and transition containers."""
        kind = op[0]
        if kind == _OP_OSRC:
            self.other_src.append((op[1], op[2], mask_w))
        elif kind == _OP_XSTEM:
            self.xor_stem.setdefault(op[1], []).append((op[2], mask_w))
        elif kind == _OP_XPIN:
            self.xor_pin.setdefault(op[1], {}).setdefault(op[2], []).append(
                (op[3], mask_w)
            )
        elif kind == _OP_TSTEM:
            self.t_stem[op[1]].append(_TSite(op[3], mask_w, self.W, op[2]))
            self.has_t = True
        elif kind == _OP_TPIN:
            self.t_pin[op[1]].append(
                _TSite(op[7], mask_w, self.W, op[2:7])
            )
            self.has_t = True
        elif kind == _OP_TSRC:
            self.t_src.append(_TSite(op[2], mask_w, self.W, op[1]))
            self.has_t = True
        elif kind == _OP_TFF:
            self.t_ff.append(_TSite(op[2], mask_w, self.W, op[1]))
            self.has_t = True
        elif kind == _OP_TXSTEM:
            self.t_xstem.setdefault(op[1], []).append(
                _TSite(op[2], mask_w, self.W, None)
            )
            self.has_t = True
        else:  # _OP_TXPIN
            self.t_xpin.setdefault(op[1], {}).setdefault(op[2], []).append(
                _TSite(op[3], mask_w, self.W, None)
            )
            self.has_t = True

    def _t_sites(self) -> Any:
        """Every bound transition site, category order irrelevant."""
        yield from self.t_src
        yield from self.t_ff
        for sites in self.t_stem:
            yield from sites
        for sites in self.t_pin:
            yield from sites
        for sites in self.t_xstem.values():
            yield from sites
        for by_pin in self.t_xpin.values():
            for sites in by_pin.values():
                yield from sites

    # -- state ----------------------------------------------------------
    def reset_x(self) -> None:
        """Every net (and the aux rows) to the all-X pattern."""
        V, n4 = self.V, 4 * self.prog.n_nets
        V[0:n4:4] = np.uint64(_FULL)
        V[1:n4:4] = np.uint64(0)
        V[2:n4:4] = np.uint64(_FULL)
        V[3:n4:4] = np.uint64(0)
        V[self.prog.ones_row] = np.uint64(_FULL)
        V[self.prog.zeros_row] = np.uint64(0)
        if self.has_t:
            for site in self._t_sites():
                site.reset()

    def write_net(self, net: int, p1: int, p0: int) -> None:
        """Set one net's packed value (and complements) directly."""
        row = int(self.prog.base[net])
        w1 = _mask_words(p1, self.W)
        w0 = _mask_words(p0, self.W)
        V = self.V
        V[row + P1] = w1
        V[row + N1] = ~w1
        V[row + P0] = w0
        V[row + N0] = ~w0
        if self.t_src:
            for site in self.t_src:
                if site.loc == row:
                    site.cur1[:] = w1
                    site.cur0[:] = w0

    def refresh_t_src(self, lo: int, hi: int) -> None:
        """Re-shadow transition source raws after a direct row write.

        Source rows are forced in place by the sweep, so a transition
        source site keeps its pre-force raw in ``cur``; callers that
        overwrite rows ``[lo, hi)`` wholesale (per-frame input loads,
        the clock's flip-flop latch) refresh the shadows from the fresh
        raw values.
        """
        V = self.V
        for site in self.t_src:
            row = site.loc
            if lo <= row < hi:
                site.cur1[:] = V[row + P1]
                site.cur0[:] = V[row + P0]

    def read_net(self, net: int, mask: int) -> Tuple[int, int]:
        row = int(self.prog.base[net])
        return (
            _words_to_int(self.V[row + P1]) & mask,
            _words_to_int(self.V[row + P0]) & mask,
        )

    # -- the sweep -------------------------------------------------------
    def force_sources(self) -> None:
        """Apply every source-row force (stuck and transition) in place.

        Runs at the top of each sweep; ``run_fault_sim`` calls it once
        more after the last clock so extracted final states match the
        event backend's edge-time force application.
        """
        V, prog = self.V, self.prog
        if not self.src.empty:
            self.src.apply(V[: prog.src_hi])
        for row, on, mask_w in self.other_src:
            if on:
                V[row] |= mask_w
            else:
                V[row] &= ~mask_w
        for site in self.t_src:
            f1, f0 = site.forced()
            row, m, nm = site.loc, site.mask, site.nmask
            p1 = (V[row + P1] & nm) | (f1 & m)
            p0 = (V[row + P0] & nm) | (f0 & m)
            V[row + P1] = p1
            V[row + N1] = ~p1
            V[row + P0] = p0
            V[row + N0] = ~p0

    def sweep(self) -> None:
        prog, V = self.prog, self.V
        self.force_sources()
        for level_i, lv in enumerate(prog.levels):
            if lv.G:
                buf = self.bufs[level_i]
                np.take(V, lv.idx, axis=0, out=buf)
                pin_force = self.pin_f[level_i]
                if not pin_force.empty:
                    pin_force.apply(buf)
                for site in self.t_pin[level_i]:
                    # raw pin value = the source net's settled rows (pin
                    # forces touch only the gather copy, never V)
                    flat_p, sp, flat_q, sq, src_row = site.loc
                    site.cur1[:] = V[src_row + P1]
                    site.cur0[:] = V[src_row + P0]
                    f1, f0 = site.forced()
                    n1, n0 = ~f1, ~f0
                    planes = {P1: f1, N1: n1, P0: f0, N0: n0}
                    m, nm = site.mask, site.nmask
                    buf[flat_p] = (buf[flat_p] & nm) | (planes[sp] & m)
                    buf[flat_q] = (buf[flat_q] & nm) | (planes[sq] & m)
                stacked = buf.reshape(lv.K, 2 * lv.G, self.W)
                rnr = self.rnr[level_i]
                r_half = rnr[: 2 * lv.G]
                if lv.K == 1:
                    np.copyto(r_half, stacked[0])
                else:
                    np.bitwise_and(stacked[0], stacked[1], out=r_half)
                    for k in range(2, lv.K):
                        np.bitwise_and(r_half, stacked[k], out=r_half)
                np.invert(r_half, out=rnr[2 * lv.G :])
                stem = self.stem_f[level_i]
                if not stem.empty:
                    stem.apply(rnr)
                for site in self.t_stem[level_i]:
                    # other sites' forces live in disjoint slot columns,
                    # so the reduction rows are still raw under this mask
                    pp1, pn1, pp0, pn0 = site.loc
                    site.cur1[:] = rnr[pp1]
                    site.cur0[:] = rnr[pp0]
                    f1, f0 = site.forced()
                    m, nm = site.mask, site.nmask
                    rnr[pp1] = (rnr[pp1] & nm) | (f1 & m)
                    rnr[pn1] = (rnr[pn1] & nm) | (~f1 & m)
                    rnr[pp0] = (rnr[pp0] & nm) | (f0 & m)
                    rnr[pn0] = (rnr[pn0] & nm) | (~f0 & m)
                V[lv.scat] = rnr
            for xor_i, (pos, out, is_xnor, fanin) in enumerate(lv.xors):
                self._eval_xor(pos, out, is_xnor, fanin)

    def _eval_xor(
        self, pos: int, out: int, is_xnor: bool, fanin: Tuple[int, ...]
    ) -> None:
        prog, V = self.prog, self.V
        pin_forces = self.xor_pin.get(pos, {})
        t_pins = self.t_xpin.get(pos, {})

        def pin_val(k: int) -> Tuple["np.ndarray", "np.ndarray"]:
            row = int(prog.base[fanin[k]])
            a1, a0 = V[row + P1], V[row + P0]
            forces = pin_forces.get(k)
            tsites = t_pins.get(k)
            if forces or tsites:
                a1, a0 = a1.copy(), a0.copy()
                for stuck, mask_w in forces or ():
                    if stuck == 1:
                        a1 |= mask_w
                        a0 &= ~mask_w
                    else:
                        a1 &= ~mask_w
                        a0 |= mask_w
                for site in tsites or ():
                    site.cur1[:] = V[row + P1]
                    site.cur0[:] = V[row + P0]
                    f1, f0 = site.forced()
                    m, nm = site.mask, site.nmask
                    a1 = (a1 & nm) | (f1 & m)
                    a0 = (a0 & nm) | (f0 & m)
            return a1, a0

        if not fanin:
            p1 = V[prog.zeros_row].copy()
            p0 = V[prog.ones_row].copy()
        else:
            p1, p0 = pin_val(0)
            p1, p0 = p1.copy(), p0.copy()
            for k in range(1, len(fanin)):
                b1, b0 = pin_val(k)
                p1, p0 = (p1 & b0) | (p0 & b1), (p1 & b1) | (p0 & b0)
        if is_xnor:
            p1, p0 = p0, p1
        for stuck, mask_w in self.xor_stem.get(pos, ()):
            if stuck == 1:
                p1 = p1 | mask_w
                p0 = p0 & ~mask_w
            else:
                p1 = p1 & ~mask_w
                p0 = p0 | mask_w
        for site in self.t_xstem.get(pos, ()):
            site.cur1[:] = p1
            site.cur0[:] = p0
            f1, f0 = site.forced()
            m, nm = site.mask, site.nmask
            p1 = (p1 & nm) | (f1 & m)
            p0 = (p0 & nm) | (f0 & m)
        row = int(prog.base[out])
        V[row + P1] = p1
        V[row + N1] = ~p1
        V[row + P0] = p0
        V[row + N0] = ~p0

    def clock(self) -> None:
        """Latch D values into the flip-flop output rows."""
        prog, V = self.prog, self.V
        if self.ffbuf is not None:
            np.take(V, prog.ffin_rows, axis=0, out=self.ffbuf)
            if not self.ff_f.empty:
                self.ff_f.apply(self.ffbuf)
            for site in self.t_ff:
                # forced with the previous edge's prev; cur becomes this
                # edge's raw D value before the frame-advance below
                rb = site.loc
                b = self.ffbuf
                site.cur1[:] = b[rb + P1]
                site.cur0[:] = b[rb + P0]
                f1, f0 = site.forced()
                m, nm = site.mask, site.nmask
                b[rb + P1] = (b[rb + P1] & nm) | (f1 & m)
                b[rb + N1] = (b[rb + N1] & nm) | (~f1 & m)
                b[rb + P0] = (b[rb + P0] & nm) | (f0 & m)
                b[rb + N0] = (b[rb + N0] & nm) | (~f0 & m)
        if self.has_t:
            # clock edge = frame boundary: every site's prev becomes the
            # raw value it held this frame
            for site in self._t_sites():
                site.advance()
        if self.ffbuf is not None:
            V[prog.ffo_lo : prog.src_hi] = self.ffbuf
            if self.t_src:
                self.refresh_t_src(prog.ffo_lo, prog.src_hi)


# ----------------------------------------------------------------------
# FrameSimulator-compatible wrapper (the registered backend class)
# ----------------------------------------------------------------------
class NumpyFrameSimulator(FrameSimulator):
    """Frame simulator whose settle phase is one vectorized matrix sweep.

    Same constructor, state, and frame-advance API as the event-driven
    :class:`~repro.simulation.logic_sim.FrameSimulator`; values live in
    the kernel's uint64 matrix and convert to packed Python ints only at
    the read/write boundary.  Like the codegen backend, the clock edge
    defers its resettling sweep to the next access.  Registered as
    backend ``"numpy"`` when numpy is importable.
    """

    def __init__(
        self,
        circuit: "Any",
        width: int = 64,
        injections: Sequence[Injection] = (),
    ) -> None:
        _require_numpy()
        injections = list(injections)
        super().__init__(circuit, width=width, injections=injections)
        self._prog = program_for(self.cc)
        self._kern = _MatrixKernel(self._prog, self.cc, width, injections)
        self._kern.reset_x()
        self._dirty = True
        ff_out = set(self.cc.ff_out)
        self._state_needs_settle = any(
            inj.ff_pos is None
            and inj.gate_pos is None
            and inj.net in ff_out
            for inj in injections
        )

    # -- state ----------------------------------------------------------
    def reset(self) -> None:
        self._kern.reset_x()
        self._dirty = True

    def get_state(self) -> List[Tuple[int, int]]:
        # flip-flop outputs are written directly by the clock edge; only a
        # stem force sitting on one requires a sweep to re-assert it.
        # Transition stems force the stored row but the latch holds the
        # raw value (kept in the site's cur shadow) — report the raw so
        # carried states don't re-apply the delay (matches the event
        # backend).
        if self._state_needs_settle:
            self.settle()
        kern = self._kern
        read = kern.read_net
        if not kern.t_src:
            return [read(i, self.mask) for i in self.cc.ff_out]
        by_row: Dict[int, List[_TSite]] = {}
        for site in kern.t_src:
            by_row.setdefault(int(site.loc), []).append(site)
        base = self._prog.base
        out: List[Tuple[int, int]] = []
        for i in self.cc.ff_out:
            p1, p0 = read(i, self.mask)
            for site in by_row.get(int(base[i]), ()):
                m = _words_to_int(site.mask) & self.mask
                p1 = (p1 & ~m) | (_words_to_int(site.cur1) & m)
                p0 = (p0 & ~m) | (_words_to_int(site.cur0) & m)
            out.append((p1 & self.mask, p0 & self.mask))
        return out

    def read(self, net: str) -> Tuple[int, int]:
        self.settle()
        return self._kern.read_net(self.cc.index[net], self.mask)

    def read_outputs(self) -> List[Tuple[int, int]]:
        self.settle()
        read = self._kern.read_net
        return [read(i, self.mask) for i in self.cc.po]

    def read_next_state(self) -> List[Tuple[int, int]]:
        self.settle()
        read = self._kern.read_net
        return [read(i, self.mask) for i in self.cc.ff_in]

    # -- frame advance ---------------------------------------------------
    def settle(self) -> None:
        if self._dirty:
            self._kern.sweep()
            self._dirty = False

    def clock(self) -> None:
        self.settle()  # D values must be stable before the edge
        self._kern.clock()
        self._dirty = True

    # -- internals -------------------------------------------------------
    def _write_source(self, idx: int, value: Tuple[int, int]) -> None:
        p1, p0 = value
        self._kern.write_net(idx, p1 & self.mask, p0 & self.mask)
        self._dirty = True


if np is not None:
    register_backend("numpy", NumpyFrameSimulator)


# ----------------------------------------------------------------------
# whole-run vectorized fault simulation (FaultSimulator fast path)
# ----------------------------------------------------------------------
def _pack_scalar_rows(values: "np.ndarray", W: int) -> "np.ndarray":
    """(rows, slots) scalar 0/1/X matrix -> (rows, 2, W) plane words."""
    p1 = (values != 0).astype(np.uint8)
    p0 = (values != 1).astype(np.uint8)
    out = np.zeros((values.shape[0], 2, W * 8), dtype=np.uint8)
    packed1 = np.packbits(p1, axis=1, bitorder="little")
    packed0 = np.packbits(p0, axis=1, bitorder="little")
    out[:, 0, : packed1.shape[1]] = packed1
    out[:, 1, : packed0.shape[1]] = packed0
    words = out.view("<u8").astype(np.uint64)
    return words.reshape(values.shape[0], 2, W)


def _unpack_bit_rows(rows: "np.ndarray", slots: int) -> "np.ndarray":
    """(rows, W) uint64 -> (rows, slots) 0/1 bit matrix."""
    as_bytes = rows.astype("<u8").view(np.uint8).reshape(rows.shape[0], -1)
    return np.unpackbits(as_bytes, axis=1, bitorder="little")[:, :slots]


def run_fault_sim(
    fsim: "Any",
    vectors: Sequence[Sequence[int]],
    faults: Sequence["Any"],
    good_state: Optional[Sequence[int]],
    fault_states: Dict["Any", List[int]],
    result: "Any",
    record_signatures: bool,
) -> int:
    """Whole-run vectorized fault simulation for ``FaultSimulator.run``.

    The good machine rides in slot 0 of every chunk's matrix and each
    chunk carries up to ``width`` faults in slots 1..width, so the good
    simulation, all faulty machines, and detection analysis are single
    array programs — no per-frame Python loop over outputs or slots.
    Results are identical to the event backend's batch loop (detection
    frames, insertion order, final states, signatures); early stopping
    is unnecessary because detection is computed after the fact from the
    recorded output planes.  Returns the number of frames simulated (for
    telemetry).
    """
    _require_numpy()
    cc = fsim.cc
    prog = program_for(cc)
    n_po = len(cc.po)
    n_ff = len(cc.ff_out)
    n_frames = len(vectors)
    width = fsim.width

    # pack the input sequence once; (frames, 4*n_pi, 1) broadcasts over
    # any chunk's word width
    vec_arr = np.asarray(vectors, dtype=np.int8).reshape(n_frames, len(cc.pi))
    inp = np.empty((n_frames, 4 * len(cc.pi), 1), dtype=np.uint64)
    p1 = np.where(vec_arr != 0, np.uint64(_FULL), np.uint64(0))
    p0 = np.where(vec_arr != 1, np.uint64(_FULL), np.uint64(0))
    inp[:, P1::4, 0] = p1
    inp[:, N1::4, 0] = ~p1
    inp[:, P0::4, 0] = p0
    inp[:, N0::4, 0] = ~p0

    chunks = [
        list(faults[start : start + width])
        for start in range(0, len(faults), width)
    ] or [[]]
    frames_run = 0
    for chunk_i, chunk in enumerate(chunks):
        slots = len(chunk) + 1  # slot 0 carries the fault-free machine
        W = (slots + 63) // 64
        kern = _MatrixKernel(prog, cc, slots, ())
        for s, fault in enumerate(chunk):
            kern.bind_slot(_ops_for_fault(prog, cc, fault), s + 1)
        kern.reset_x()

        # initial flip-flop state: good state in slot 0, per-fault states
        # (default all-X) in their slots
        if n_ff and (good_state is not None or fault_states):
            vals = np.full((n_ff, slots), X, dtype=np.int8)
            if good_state is not None:
                vals[:, 0] = good_state
            for s, fault in enumerate(chunk):
                state = fault_states.get(fault)
                if state is not None:
                    vals[:, s + 1] = state
            planes = _pack_scalar_rows(vals, W)
            block = kern.V[prog.ffo_lo : prog.src_hi].reshape(n_ff, 4, W)
            block[:, P1] = planes[:, 0]
            block[:, N1] = ~planes[:, 0]
            block[:, P0] = planes[:, 1]
            block[:, N0] = ~planes[:, 1]
            if kern.t_src:
                kern.refresh_t_src(prog.ffo_lo, prog.src_hi)

        out = np.empty((n_frames, 2 * n_po, W), dtype=np.uint64)
        V = kern.V
        has_t_src = bool(kern.t_src)
        for f in range(n_frames):
            V[: prog.pi_hi] = inp[f]
            if has_t_src:
                kern.refresh_t_src(0, prog.pi_hi)
            kern.sweep()
            np.take(V, prog.po_rows, axis=0, out=out[f])
            kern.clock()
        frames_run += n_frames
        # source forces (stem forces on flip-flop outputs, transition
        # source blends) are normally re-asserted at the start of the
        # next sweep; apply them once more so the extracted final states
        # match the event backend's clock-time application
        kern.force_sources()
        # ... except transition stems: the latch holds the raw value and
        # carrying the forced one would re-apply the delay next run, so
        # restore the raw shadow in the flip-flop block (matches the
        # frame backends' get_state)
        for site in kern.t_src:
            row = site.loc
            if prog.ffo_lo <= row < prog.src_hi:
                m, nm = site.mask, site.nmask
                V[row + P1] = (V[row + P1] & nm) | (site.cur1 & m)
                V[row + P0] = (V[row + P0] & nm) | (site.cur0 & m)

        # -- good outputs (chunk 0 only: every chunk's slot 0 is identical)
        one = np.uint64(1)
        g1 = (out[:, 0::2, 0] & one).astype(bool) if n_po else None
        g0 = (out[:, 1::2, 0] & one).astype(bool) if n_po else None
        if chunk_i == 0:
            if n_po:
                gv = np.where(g1 & g0, X, np.where(g1, 1, 0))
                result.good_outputs = [
                    [int(v) for v in row] for row in gv
                ]
            else:
                result.good_outputs = [[] for _ in range(n_frames)]

        # -- detection: a fault slot differs from the good machine at a PO
        # whose good value is known
        if n_po and n_frames and len(chunk):
            f1 = out[:, 0::2, :]
            f0 = out[:, 1::2, :]
            diff = np.where(g1[..., None], f0 & ~f1, f1 & ~f0)
            diff[~(g1 ^ g0)] = np.uint64(0)
            slot_mask = _mask_words(full_mask(slots) & ~1, W)
            diff &= slot_mask
            flat = diff.reshape(n_frames * n_po, W)
            bits = _unpack_bit_rows(flat, slots)
            hit = bits.any(axis=0)
            first = np.argmax(bits, axis=0)
            # event-backend insertion order: frame-major, then PO, then slot
            for s in sorted(
                (s for s in range(1, slots) if hit[s]),
                key=lambda s: (first[s], s),
            ):
                result.detected[chunk[s - 1]] = int(first[s]) // n_po
            if record_signatures:
                obs = bits.reshape(n_frames, n_po, slots)
                sig_lists: List[List[Tuple[int, int]]] = [
                    [] for _ in range(slots)
                ]
                for f, po_pos, s in np.argwhere(obs):
                    sig_lists[s].append((int(f), int(po_pos)))
                for s, fault in enumerate(chunk, start=1):
                    result.signatures[fault] = frozenset(sig_lists[s])
        else:
            hit = np.zeros(slots, dtype=bool)
            if record_signatures:
                for fault in chunk:
                    result.signatures[fault] = frozenset()

        # -- final states
        if n_ff:
            block = V[prog.ffo_lo : prog.src_hi]
            s1 = _unpack_bit_rows(block[P1::4], slots)
            s0 = _unpack_bit_rows(block[P0::4], slots)
            final = np.where(
                (s1 == 1) & (s0 == 1), X, np.where(s1 == 1, 1, 0)
            )
            slot_states = final.T.tolist()  # per-slot scalar state lists
        else:
            slot_states = [[] for _ in range(slots)]
        if chunk_i == len(chunks) - 1:
            result.good_state = slot_states[0]
        for s, fault in enumerate(chunk, start=1):
            if hit[s]:
                fault_states.pop(fault, None)
                continue
            state = slot_states[s]
            result.fault_states[fault] = state
            fault_states[fault] = state
    return frames_run
