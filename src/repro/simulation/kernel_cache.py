"""Persistent on-disk cache for compiled simulation kernels and programs.

Both simulation backends pay a per-circuit compilation cost before their
first sweep: ``codegen`` exec-compiles one straight-line Python kernel
per injection *shape* (several milliseconds each on the benchmark
circuits), and ``numpy`` builds one vectorized sweep program per
circuit.  Campaign workers and warm repeat runs pay that cost again in
every process — unless the compiled artifact is persisted.  This module
is that persistence layer: a content-addressed directory of cache
entries keyed by a structural circuit fingerprint plus a backend format
version, enabled by the :data:`ENV_VAR` environment variable (or
:func:`configure`, which sets it so forked/spawned worker processes
inherit the setting).

Entries are ``marshal`` payloads — never pickle, so loading an entry
cannot execute arbitrary code — wrapped in a magic header and a SHA-256
integrity digest.  A truncated, bit-flipped, or otherwise unreadable
entry is detected on load, counted in :data:`CACHE_STATS`, deleted, and
silently recompiled; the cache can never turn a warm start into a
crash.  Writes are atomic (temp file + rename), so concurrent campaign
workers sharing one cache directory race benignly: last writer wins and
every reader sees a complete entry or none.

The cache is *off* by default.  Point ``REPRO_KERNEL_CACHE`` at a
directory (or pass ``--kernel-cache`` to the CLI) to enable it.
"""

from __future__ import annotations

import hashlib
import marshal
import os
import tempfile
from typing import Any, Dict, Optional

#: Environment variable naming the cache directory (unset = disabled).
ENV_VAR = "REPRO_KERNEL_CACHE"

#: On-disk entry layout version, embedded in the file magic.
_MAGIC = b"RKC1"

#: Process-cumulative cache statistics.  ``hits``/``misses`` count only
#: lookups made while the cache is enabled; ``corrupt`` counts entries
#: that failed the integrity check and were discarded.  The fault
#: simulator snapshots this dict around each run and reports deltas as
#: ``sim.kernel_cache.*`` telemetry counters.
CACHE_STATS: Dict[str, int] = {
    "hits": 0,
    "misses": 0,
    "writes": 0,
    "corrupt": 0,
}

#: Attribute caching the fingerprint on a CompiledCircuit instance.
_FP_ATTR = "_kernel_cache_fingerprint"


def configure(path: Optional[str]) -> None:
    """Set (or clear, with ``None``/empty) the cache directory.

    The choice is stored in the process environment, so worker processes
    started after this call — campaign workers, fault-sim shards —
    inherit it without any explicit plumbing.
    """
    if path:
        os.environ[ENV_VAR] = str(path)
    else:
        os.environ.pop(ENV_VAR, None)


def cache_dir() -> Optional[str]:
    """The active cache directory, or ``None`` when caching is disabled."""
    return os.environ.get(ENV_VAR) or None


def stats_snapshot() -> Dict[str, int]:
    """Copy of :data:`CACHE_STATS` for delta accounting."""
    return dict(CACHE_STATS)


def circuit_fingerprint(cc: Any) -> str:
    """Structural hash of a compiled circuit: the cache's identity key.

    Covers net names, the levelized gate list (output, code, fanins),
    and the PI/PO/flip-flop interface — everything a compiled kernel or
    sweep program depends on.  Cached on the compiled circuit itself.
    """
    fp = getattr(cc, _FP_ATTR, None)
    if fp is None:
        structure = (
            tuple(cc.net_names),
            tuple((g.out, g.code, tuple(g.fanin)) for g in cc.gates),
            tuple(cc.pi),
            tuple(cc.po),
            tuple(cc.ff_out),
            tuple(cc.ff_in),
        )
        fp = hashlib.sha256(repr(structure).encode("utf-8")).hexdigest()
        setattr(cc, _FP_ATTR, fp)
    return fp


def entry_key(
    kind: str, version: object, fingerprint: str, extra: object = None
) -> str:
    """Content-addressed key for one cache entry."""
    raw = repr((kind, version, fingerprint, extra)).encode("utf-8")
    return hashlib.sha256(raw).hexdigest()


def _entry_path(root: str, key: str) -> str:
    return os.path.join(root, key[:2], key + ".rkc")


def load(key: str) -> Optional[Any]:
    """The payload stored under ``key``, or ``None``.

    Any failure mode — missing file, truncated blob, digest mismatch,
    unreadable marshal data — returns ``None`` so the caller recompiles;
    corrupt entries are additionally deleted so the next :func:`store`
    replaces them with a good copy.
    """
    root = cache_dir()
    if root is None:
        return None
    path = _entry_path(root, key)
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError:
        CACHE_STATS["misses"] += 1
        return None
    payload = None
    if blob[:4] == _MAGIC and len(blob) > 36:
        digest, body = blob[4:36], blob[36:]
        if hashlib.sha256(body).digest() == digest:
            try:
                payload = marshal.loads(body)
            except (ValueError, EOFError, TypeError):
                payload = None
    if payload is None:
        CACHE_STATS["corrupt"] += 1
        try:
            os.unlink(path)
        except OSError:
            pass
        return None
    CACHE_STATS["hits"] += 1
    return payload


def store(key: str, payload: Any) -> bool:
    """Persist ``payload`` under ``key``; best-effort, never raises.

    Returns ``True`` when the entry was written.  A full disk, read-only
    directory, or unmarshallable payload degrades to "no cache", exactly
    like running with caching disabled.
    """
    root = cache_dir()
    if root is None:
        return False
    try:
        body = marshal.dumps(payload)
    except ValueError:
        return False
    blob = _MAGIC + hashlib.sha256(body).digest() + body
    path = _entry_path(root, key)
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return False
    CACHE_STATS["writes"] += 1
    return True
