"""Two-word three-valued encoding with bit-parallel gate evaluation.

PROOFS-style value packing: each net carries a pair of machine words
``(p1, p0)``.  Bit ``i`` of ``p1`` means *slot* ``i`` can be logic 1; bit
``i`` of ``p0`` means it can be 0.  The three logic values are encoded as

======  ====  ====
value   p1    p0
======  ====  ====
``1``   1     0
``0``   0     1
``X``   1     1
======  ====  ====

(``p1 = p0 = 0`` never occurs in well-formed simulation state.)  With this
"can-be" encoding the three-valued gate functions reduce to plain bitwise
logic over arbitrary-width Python integers, so one gate evaluation advances
``width`` independent simulation slots — the bitwise parallelism the paper
uses to evaluate 32 GA sequences at once.

Scalar values at the API boundary use ``0``, ``1``, and :data:`X` (``2``).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..circuit.gates import GateType

#: Scalar code for the unknown value.
X = 2

#: Legal scalar values.
SCALARS = (0, 1, X)

PackedValue = Tuple[int, int]


def full_mask(width: int) -> int:
    """All-ones mask of ``width`` bits."""
    if width <= 0:
        raise ValueError("width must be positive")
    return (1 << width) - 1


def pack_const(value: int, width: int) -> PackedValue:
    """Broadcast one scalar (0, 1 or X) across all ``width`` slots."""
    mask = full_mask(width)
    if value == 1:
        return mask, 0
    if value == 0:
        return 0, mask
    if value == X:
        return mask, mask
    raise ValueError(f"not a scalar logic value: {value!r}")


def pack(values: Sequence[int], width: int = 0) -> PackedValue:
    """Pack a list of scalars (slot 0 = bit 0) into a ``(p1, p0)`` pair.

    Slots beyond ``len(values)`` (up to ``width``) are filled with X.
    """
    width = width or len(values)
    if len(values) > width:
        raise ValueError("more values than slots")
    p1 = p0 = 0
    for i, v in enumerate(values):
        if v == 1:
            p1 |= 1 << i
        elif v == 0:
            p0 |= 1 << i
        elif v == X:
            p1 |= 1 << i
            p0 |= 1 << i
        else:
            raise ValueError(f"not a scalar logic value: {v!r}")
    if width > len(values):
        rest = full_mask(width) ^ full_mask(len(values)) if values else full_mask(width)
        p1 |= rest
        p0 |= rest
    return p1, p0


def unpack(value: PackedValue, width: int) -> List[int]:
    """Expand a packed pair back into a list of scalars, slot 0 first."""
    p1, p0 = value
    out: List[int] = []
    for i in range(width):
        bit = 1 << i
        one = bool(p1 & bit)
        zero = bool(p0 & bit)
        if one and zero:
            out.append(X)
        elif one:
            out.append(1)
        elif zero:
            out.append(0)
        else:
            raise ValueError(f"slot {i} holds the invalid (0,0) encoding")
    return out


def get_slot(value: PackedValue, slot: int) -> int:
    """Read one slot of a packed pair as a scalar."""
    p1, p0 = value
    bit = 1 << slot
    one = bool(p1 & bit)
    zero = bool(p0 & bit)
    if one and zero:
        return X
    if one:
        return 1
    if zero:
        return 0
    raise ValueError(f"slot {slot} holds the invalid (0,0) encoding")


def set_slot(value: PackedValue, slot: int, scalar: int) -> PackedValue:
    """Return ``value`` with one slot overwritten by ``scalar``."""
    p1, p0 = value
    bit = 1 << slot
    p1 &= ~bit
    p0 &= ~bit
    if scalar == 1:
        p1 |= bit
    elif scalar == 0:
        p0 |= bit
    elif scalar == X:
        p1 |= bit
        p0 |= bit
    else:
        raise ValueError(f"not a scalar logic value: {scalar!r}")
    return p1, p0


def eval3(gtype: GateType, values: Sequence[int]) -> int:
    """Scalar three-valued gate evaluation (the reference semantics).

    Controlling values dominate X; otherwise any X input makes the output X.
    """
    packed = [pack([v]) for v in values]
    p1, p0 = eval_packed(gtype, packed, mask=1)
    if p1 and p0:
        return X
    return 1 if p1 else 0


def eval_packed(
    gtype: GateType, values: Sequence[PackedValue], mask: int
) -> PackedValue:
    """Bit-parallel three-valued evaluation of one gate.

    Args:
        gtype: the gate's type (must be combinational).
        values: packed ``(p1, p0)`` pairs, one per input pin.
        mask: all-ones mask for the active word width.

    Returns:
        The packed output pair.
    """
    if gtype is GateType.AND or gtype is GateType.NAND:
        p1, p0 = mask, 0
        for a1, a0 in values:
            p1 &= a1
            p0 |= a0
        if gtype is GateType.NAND:
            p1, p0 = p0, p1
        return p1, p0
    if gtype is GateType.OR or gtype is GateType.NOR:
        p1, p0 = 0, mask
        for a1, a0 in values:
            p1 |= a1
            p0 &= a0
        if gtype is GateType.NOR:
            p1, p0 = p0, p1
        return p1, p0
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        p1, p0 = 0, mask  # parity accumulator starts at constant 0
        for a1, a0 in values:
            n1 = (p1 & a0) | (p0 & a1)
            n0 = (p1 & a1) | (p0 & a0)
            p1, p0 = n1 & mask, n0 & mask
        if gtype is GateType.XNOR:
            p1, p0 = p0, p1
        return p1, p0
    if gtype is GateType.NOT:
        a1, a0 = values[0]
        return a0, a1
    if gtype is GateType.BUF or gtype is GateType.DFF:
        return values[0]
    if gtype is GateType.CONST0:
        return 0, mask
    if gtype is GateType.CONST1:
        return mask, 0
    raise ValueError(f"unhandled gate type {gtype}")  # pragma: no cover


def known_mask(value: PackedValue) -> int:
    """Bits where the slot holds a definite 0 or 1 (not X)."""
    p1, p0 = value
    return p1 ^ p0


def diff_mask(a: PackedValue, b: PackedValue) -> int:
    """Bits where both slots are known and hold opposite values."""
    a1, a0 = a
    b1, b0 = b
    return (a1 & ~a0 & b0 & ~b1) | (a0 & ~a1 & b1 & ~b0)


def match_mask(required: PackedValue, actual: PackedValue, mask: int) -> int:
    """Bits where ``actual`` satisfies ``required``.

    A slot matches when the requirement is X (don't care) or when both are
    known and equal.  A known requirement against an X actual does *not*
    match (the flip-flop might settle either way).
    """
    r1, r0 = required
    a1, a0 = actual
    dont_care = r1 & r0
    eq_one = (r1 & ~r0) & (a1 & ~a0)
    eq_zero = (r0 & ~r1) & (a0 & ~a1)
    return (dont_care | eq_one | eq_zero) & mask


def popcount(x: int) -> int:
    """Number of set bits (Python ints are arbitrary width)."""
    return bin(x).count("1")
