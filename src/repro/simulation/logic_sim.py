"""Event-driven, bit-parallel, three-valued sequential logic simulation.

:class:`FrameSimulator` holds the packed value of every net and advances the
circuit one synchronous time frame at a time: apply a primary-input vector,
propagate events level by level, read primary outputs, clock the flip-flops.
Values are PROOFS-encoded ``(p1, p0)`` word pairs (see
:mod:`repro.simulation.encoding`), so one simulator instance advances
``width`` independent pattern slots at once.

Fault injection follows PROOFS: a stuck-at fault is modelled as if an
AND/OR gate were spliced in at the fault site, realised here by masking the
affected slots of the faulted net (stem faults) or of one gate's view of an
input net (branch faults) — so different slots can carry different faults.

Transition (gross-delay) injections generalize the splice: instead of a
constant, the spliced element combines the site's freshly computed value
with the value it computed in the *previous* frame — a slow-to-rise site
is the three-valued AND of the two (it cannot show a 1 until it has held
one for a frame), slow-to-fall the three-valued OR.  The simulator keeps
per-site previous/current raw values and advances them at each clock
edge; the previous value starts as X, which is conservative (it can mask
a detection in frame 0 but never invent one).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit
from .compiled import CompiledCircuit, compile_circuit
from .encoding import (
    PackedValue,
    X,
    eval_packed,
    full_mask,
    pack_const,
)

#: Environment variable selecting the default simulation backend.
BACKEND_ENV = "REPRO_SIM_BACKEND"

#: Backend used when neither the caller nor the environment chooses one.
DEFAULT_BACKEND = "event"

#: Registered simulator classes by backend name.
_BACKENDS: "Dict[str, Type[FrameSimulator]]" = {}


class BackendUnavailableError(RuntimeError):
    """A requested simulation backend's optional dependency is missing.

    Raised when constructing a backend whose import-time dependency
    (numpy, for the ``numpy`` backend) is not installed.  The registry
    itself never raises this: :func:`resolve_backend` degrades to the
    ``codegen`` backend with a :class:`RuntimeWarning` instead, so code
    that merely *prefers* the vectorized backend keeps working.
    """


def register_backend(name: str, cls: "Type[FrameSimulator]") -> None:
    """Register a frame-simulator class under a backend name."""
    _BACKENDS[name] = cls


def _load_lazy_backend(name: str) -> None:
    """Import a lazily registered backend module, ignoring absence."""
    if name == "codegen":
        from . import codegen  # noqa: F401  (registers itself on import)
    elif name == "numpy":
        # the module imports cleanly without numpy but only registers the
        # backend when numpy is importable
        from . import numpy_backend  # noqa: F401


def available_backends() -> List[str]:
    """Names of the registered simulation backends."""
    for lazy in ("codegen", "numpy"):
        if lazy not in _BACKENDS:
            _load_lazy_backend(lazy)
    return sorted(_BACKENDS)


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend choice to a registered name.

    ``None`` falls back to the :data:`BACKEND_ENV` environment variable,
    then to :data:`DEFAULT_BACKEND`.  The ``codegen`` and ``numpy``
    backends are imported lazily on first request; asking for ``numpy``
    when numpy is not installed falls back to ``codegen`` with a
    :class:`RuntimeWarning` (use the backend class directly to get a
    hard :class:`BackendUnavailableError` instead).
    """
    name = backend or os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    if name not in _BACKENDS and name in ("codegen", "numpy"):
        _load_lazy_backend(name)
    if name not in _BACKENDS and name == "numpy":
        warnings.warn(
            "numpy simulation backend unavailable (numpy is not "
            "installed); falling back to the codegen backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return resolve_backend("codegen")
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown simulation backend {name!r}; "
            f"registered: {sorted(_BACKENDS)}"
        )
    return name


def make_simulator(
    circuit: "Circuit | CompiledCircuit",
    width: int = 64,
    injections: "Iterable[Injection]" = (),
    backend: Optional[str] = None,
) -> "FrameSimulator":
    """Construct a frame simulator for the selected backend."""
    cls = _BACKENDS[resolve_backend(backend)]
    return cls(circuit, width=width, injections=injections)


@dataclass(frozen=True)
class Injection:
    """A fault injected into selected simulation slots.

    Attributes:
        net: index of the faulted net.
        stuck: the stuck value (0 or 1); under the transition model, the
            lingering value (0 = slow-to-rise, 1 = slow-to-fall).
        mask: word mask of the slots that see the fault.
        gate_pos: for a branch (gate-input) fault, the position of the
            reading gate in the compiled gate list; ``None`` for a stem
            fault on the net itself.
        pin: for a branch fault, the input pin index on that gate.
        ff_pos: for a branch fault feeding a flip-flop's D pin, the
            flip-flop's position in ``cc.ff_out`` order; the stuck value is
            applied to the value latched at each clock edge.
        model: fault-model name selecting the activation condition
            (``stuck_at``: constant force; ``transition``: previous-frame
            combine).  Appended with a default so stuck-at construction
            sites are unchanged.
    """

    net: int
    stuck: int
    mask: int
    gate_pos: Optional[int] = None
    pin: Optional[int] = None
    ff_pos: Optional[int] = None
    model: str = "stuck_at"


def _apply_stuck(value: PackedValue, stuck: int, mask: int) -> PackedValue:
    """Force the masked slots of ``value`` to the stuck constant."""
    p1, p0 = value
    if stuck == 1:
        return p1 | mask, p0 & ~mask
    return p1 & ~mask, p0 | mask


def _combine_transition(
    raw: PackedValue, prev: PackedValue, stuck: int
) -> PackedValue:
    """Three-valued combine of a site's current and previous raw values.

    Slow-to-rise (``stuck=0``) is the 3-valued AND (a 1 shows only when
    both frames computed 1), slow-to-fall the 3-valued OR.  With either
    operand X the result degrades toward X except where the other operand
    is the controlling value — exactly the conservative behaviour the
    all-X first frame needs.
    """
    c1, c0 = raw
    pr1, pr0 = prev
    if stuck == 0:
        return c1 & pr1, c0 | pr0
    return c1 | pr1, c0 & pr0


def _blend(value: PackedValue, forced: PackedValue, mask: int) -> PackedValue:
    """Replace the masked slots of ``value`` with ``forced``."""
    p1, p0 = value
    f1, f0 = forced
    return (p1 & ~mask) | (f1 & mask), (p0 & ~mask) | (f0 & mask)


def _eval_ints(code: int, fanin, v1, v0, mask: int) -> PackedValue:
    """Inline bit-parallel gate evaluation over raw value arrays.

    The hot loop of every simulator: equivalent to
    :func:`repro.simulation.encoding.eval_packed`, but dispatching on the
    compiled integer gate code and indexing the value arrays directly, so
    no per-gate tuples or lists are allocated.  The two implementations
    are differentially tested against each other.
    """
    if code <= 1:  # AND / NAND
        p1, p0 = mask, 0
        for i in fanin:
            p1 &= v1[i]
            p0 |= v0[i]
        return (p0, p1) if code else (p1, p0)
    if code <= 3:  # OR / NOR
        p1, p0 = 0, mask
        for i in fanin:
            p1 |= v1[i]
            p0 &= v0[i]
        return (p0, p1) if code == 3 else (p1, p0)
    if code <= 5:  # XOR / XNOR
        p1, p0 = 0, mask
        for i in fanin:
            a1, a0 = v1[i], v0[i]
            p1, p0 = ((p1 & a0) | (p0 & a1)) & mask, ((p1 & a1) | (p0 & a0)) & mask
        return (p0, p1) if code == 5 else (p1, p0)
    if code == 6:  # NOT
        i = fanin[0]
        return v0[i], v1[i]
    if code == 7:  # BUF
        i = fanin[0]
        return v1[i], v0[i]
    if code == 8:  # CONST0
        return 0, mask
    return mask, 0  # CONST1


class FrameSimulator:
    """Bit-parallel event-driven simulator with persistent state.

    Args:
        circuit: the circuit (or an already-compiled form) to simulate.
        width: number of parallel pattern slots per word.
        injections: stuck-at injections active for the simulator's lifetime.

    The flip-flop state starts all-X; use :meth:`set_state` to override.
    Typical frame loop::

        sim = FrameSimulator(circuit, width=64)
        for vector in vectors:              # vector: {pi_name: PackedValue}
            po = sim.step(vector)           # outputs for this frame
    """

    def __init__(
        self,
        circuit: "Circuit | CompiledCircuit",
        width: int = 64,
        injections: Iterable[Injection] = (),
    ):
        self.cc = circuit if isinstance(circuit, CompiledCircuit) else compile_circuit(circuit)
        self.width = width
        self.mask = full_mask(width)
        #: net index -> stem injections on that net (slots may differ per fault)
        self._stem_list: Dict[int, List[Injection]] = {}
        #: gate position -> branch injections seen only by that gate
        self._pin: Dict[int, List[Injection]] = {}
        #: flip-flop position -> branch injections on that D pin
        self._ff_pin: Dict[int, List[Injection]] = {}
        self._has_transition = False
        for inj in injections:
            if inj.stuck not in (0, 1):
                raise ValueError(f"stuck value must be 0/1, got {inj.stuck}")
            if inj.model != "stuck_at":
                self._has_transition = True
            if inj.ff_pos is not None:
                self._ff_pin.setdefault(inj.ff_pos, []).append(inj)
            elif inj.gate_pos is None:
                self._stem_list.setdefault(inj.net, []).append(inj)
            else:
                self._pin.setdefault(inj.gate_pos, []).append(inj)
        x_all = pack_const(X, width)
        self._x = x_all
        self.v1: List[int] = [x_all[0]] * self.cc.num_nets
        self.v0: List[int] = [x_all[1]] * self.cc.num_nets
        self._pending: List[set] = [set() for _ in range(self.cc.num_levels + 1)]
        self._dirty = True  # force a full first sweep
        # -- transition-model per-site state ---------------------------
        #: site key -> raw value the site computed in the previous frame.
        #: Keys: net index (stem), ("p", gate_pos, pin), ("f", ff_pos).
        self._tprev: Dict = {}
        #: site key -> raw value computed so far in the current frame
        self._tcur: Dict = {}
        #: raw (pre-force) value shadow for *source* nets carrying a
        #: transition stem — the stored net value is the forced one, so
        #: frame advance and full sweeps re-force from this shadow
        self._src_raw: Dict[int, PackedValue] = {}
        #: stem nets with at least one transition injection
        self._tr_stem_nets: set = set()
        #: source nets among those (PIs / FF outputs / constants)
        self._tr_src_nets: set = set()
        #: gate positions re-scheduled at every frame advance: readers of
        #: transition pins and drivers of transition gate-output stems —
        #: their forced value changes when prev advances even if no input
        #: event reaches them
        self._tr_wake: List[int] = []
        if self._has_transition:
            driver_pos = {g.out: pos for pos, g in enumerate(self.cc.gates)}
            for net, injs in self._stem_list.items():
                if not any(i.model != "stuck_at" for i in injs):
                    continue
                self._tr_stem_nets.add(net)
                self._tprev[net] = x_all
                self._tcur[net] = x_all
                if self.cc.is_source(net):
                    self._tr_src_nets.add(net)
                    self._src_raw[net] = x_all
                else:
                    self._tr_wake.append(driver_pos[net])
            for pos, injs in self._pin.items():
                wake = False
                for inj in injs:
                    if inj.model == "stuck_at":
                        continue
                    key = ("p", pos, inj.pin)
                    self._tprev[key] = x_all
                    self._tcur[key] = x_all
                    wake = True
                if wake:
                    self._tr_wake.append(pos)
            for ff_pos, injs in self._ff_pin.items():
                if any(i.model != "stuck_at" for i in injs):
                    key = ("f", ff_pos)
                    self._tprev[key] = x_all
                    self._tcur[key] = x_all

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return every net (including flip-flop state) to all-X."""
        x1, x0 = pack_const(X, self.width)
        for i in range(self.cc.num_nets):
            self.v1[i] = x1
            self.v0[i] = x0
        if self._has_transition:
            for key in self._tprev:
                self._tprev[key] = (x1, x0)
                self._tcur[key] = (x1, x0)
            for idx in self._src_raw:
                self._src_raw[idx] = (x1, x0)
        self._dirty = True

    def set_state(self, values: "Dict[str, PackedValue] | Sequence[PackedValue]") -> None:
        """Set flip-flop output values (packed), by name map or FF order."""
        if isinstance(values, dict):
            items = [
                (self.cc.index[name], val) for name, val in values.items()
            ]
        else:
            items = list(zip(self.cc.ff_out, values))
        for idx, val in items:
            self._write_source(idx, val)

    def get_state(self) -> List[PackedValue]:
        """Current flip-flop output values, in flip-flop order.

        A transition stem on a flip-flop output stores the *forced*
        (delay-combined) value on the net; the latch itself holds the raw
        value.  Carrying the forced value forward would re-apply the delay
        in the next run, so those slots report the raw shadow instead —
        restoring via :meth:`set_state` re-forces from it.
        """
        out: List[PackedValue] = []
        for i in self.cc.ff_out:
            val = (self.v1[i], self.v0[i])
            if i in self._tr_src_nets:
                tmask = 0
                for inj in self._stem_list[i]:
                    if inj.model != "stuck_at":
                        tmask |= inj.mask
                val = _blend(val, self._src_raw[i], tmask)
            out.append(val)
        return out

    def read(self, net: str) -> PackedValue:
        """Packed value of a net by name."""
        i = self.cc.index[net]
        return self.v1[i], self.v0[i]

    def read_outputs(self) -> List[PackedValue]:
        """Primary output values, in declaration order."""
        return [(self.v1[i], self.v0[i]) for i in self.cc.po]

    def read_next_state(self) -> List[PackedValue]:
        """Values currently at the flip-flop D inputs (next state)."""
        return [(self.v1[i], self.v0[i]) for i in self.cc.ff_in]

    # ------------------------------------------------------------------
    # frame advance
    # ------------------------------------------------------------------
    def step(
        self, vector: "Dict[str, PackedValue] | Sequence[PackedValue]"
    ) -> List[PackedValue]:
        """Apply one input vector, settle, read POs, then clock the DFFs.

        Args:
            vector: packed PI values, as a name map or in PI declaration
                order (missing PIs keep their previous value).

        Returns:
            The primary output values of this frame (before the clock edge).
        """
        self.apply_inputs(vector)
        self.settle()
        outputs = self.read_outputs()
        self.clock()
        return outputs

    def apply_inputs(
        self, vector: "Dict[str, PackedValue] | Sequence[PackedValue]"
    ) -> None:
        """Drive primary inputs (no propagation yet)."""
        if isinstance(vector, dict):
            items = [(self.cc.index[name], val) for name, val in vector.items()]
        else:
            items = list(zip(self.cc.pi, vector))
        for idx, val in items:
            self._write_source(idx, val)

    def settle(self) -> None:
        """Propagate pending events through the combinational logic."""
        if self._dirty:
            self._full_sweep()
            self._dirty = False
            return
        gates = self.cc.gates
        v1, v0 = self.v1, self.v0
        mask = self.mask
        pin = self._pin
        stems = self._stem_list
        fanout = self.cc.fanout_gates
        pending = self._pending
        for level_bucket in pending:
            while level_bucket:
                pos = level_bucket.pop()
                gate = gates[pos]
                if pos in pin:
                    vals = self._gate_inputs(pos, gate)
                    p1, p0 = eval_packed(gate.gtype, vals, mask)
                else:
                    p1, p0 = _eval_ints(gate.code, gate.fanin, v1, v0, mask)
                out = gate.out
                injs = stems.get(out)
                if injs:
                    p1, p0 = self._apply_stem(out, injs, p1, p0)
                if p1 != v1[out] or p0 != v0[out]:
                    v1[out] = p1
                    v0[out] = p0
                    for fpos in fanout[out]:
                        pending[gates[fpos].level].add(fpos)

    def clock(self) -> None:
        """Latch D-input values into flip-flop outputs and propagate.

        The clock edge is the frame boundary: transition sites advance
        their previous-frame raw value here, and any site whose forced
        value depends on it is re-forced / re-scheduled so the next
        settle sees the new combine even without an input event.
        """
        new_vals = [(self.v1[i], self.v0[i]) for i in self.cc.ff_in]
        for ff_pos, injs in self._ff_pin.items():
            val = new_vals[ff_pos]
            raw = val
            for inj in injs:
                if inj.model == "stuck_at":
                    val = _apply_stuck(val, inj.stuck, inj.mask)
                else:
                    key = ("f", ff_pos)
                    self._tcur[key] = raw
                    forced = _combine_transition(
                        raw, self._tprev[key], inj.stuck
                    )
                    val = _blend(val, forced, inj.mask)
            new_vals[ff_pos] = val
        if self._has_transition:
            self._advance_frame()
        for out_idx, val in zip(self.cc.ff_out, new_vals):
            self._write_source(out_idx, val)
        self.settle()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _write_source(self, idx: int, value: PackedValue) -> None:
        p1, p0 = value
        mask = self.mask
        p1 &= mask
        p0 &= mask
        injs = self._stem_list.get(idx)
        if injs:
            if idx in self._tr_src_nets:
                self._src_raw[idx] = (p1, p0)
            p1, p0 = self._apply_stem(idx, injs, p1, p0)
        if (p1, p0) != (self.v1[idx], self.v0[idx]):
            self.v1[idx] = p1
            self.v0[idx] = p0
            self._schedule_fanout(idx)

    def _apply_stem(self, idx: int, injs, p1: int, p0: int) -> PackedValue:
        """Apply every stem injection on net ``idx`` to its raw value."""
        if idx in self._tr_stem_nets:
            raw = (p1, p0)
            self._tcur[idx] = raw
            prev = self._tprev[idx]
            for inj in injs:
                if inj.model == "stuck_at":
                    p1, p0 = _apply_stuck((p1, p0), inj.stuck, inj.mask)
                else:
                    forced = _combine_transition(raw, prev, inj.stuck)
                    p1, p0 = _blend((p1, p0), forced, inj.mask)
            return p1, p0
        for inj in injs:
            p1, p0 = _apply_stuck((p1, p0), inj.stuck, inj.mask)
        return p1, p0

    def _advance_frame(self) -> None:
        """Roll transition sites over a clock edge (prev <- cur)."""
        tprev, tcur = self._tprev, self._tcur
        for key in tprev:
            tprev[key] = tcur[key]
        # sources keep their raw value across the edge, but the forced
        # value changes with the advanced prev — re-force from the shadow
        for idx in self._tr_src_nets:
            p1, p0 = self._src_raw[idx]
            p1, p0 = self._apply_stem(idx, self._stem_list[idx], p1, p0)
            if (p1, p0) != (self.v1[idx], self.v0[idx]):
                self.v1[idx] = p1
                self.v0[idx] = p0
                self._schedule_fanout(idx)
        gates = self.cc.gates
        for pos in self._tr_wake:
            self._pending[gates[pos].level].add(pos)

    def _schedule_fanout(self, idx: int) -> None:
        gates = self.cc.gates
        for pos in self.cc.fanout_gates[idx]:
            self._pending[gates[pos].level].add(pos)

    def _gate_inputs(self, pos: int, gate) -> List[PackedValue]:
        """Input values as the gate sees them (branch injections applied)."""
        vals = [(self.v1[i], self.v0[i]) for i in gate.fanin]
        injs = self._pin.get(pos, ())
        if not self._has_transition:
            for inj in injs:
                vals[inj.pin] = _apply_stuck(vals[inj.pin], inj.stuck, inj.mask)
            return vals
        raws: Dict[int, PackedValue] = {}
        for inj in injs:
            raw = raws.setdefault(inj.pin, vals[inj.pin])
            if inj.model == "stuck_at":
                vals[inj.pin] = _apply_stuck(vals[inj.pin], inj.stuck, inj.mask)
            else:
                key = ("p", pos, inj.pin)
                self._tcur[key] = raw
                forced = _combine_transition(raw, self._tprev[key], inj.stuck)
                vals[inj.pin] = _blend(vals[inj.pin], forced, inj.mask)
        return vals

    def _full_sweep(self) -> None:
        for bucket in self._pending:
            bucket.clear()
        # re-assert stem injections on sources (PIs / FF outputs / consts);
        # transition-forced sources re-force from the raw shadow (the
        # stored value already has the force folded in)
        for idx, injs in self._stem_list.items():
            if self.cc.is_source(idx):
                if idx in self._tr_src_nets:
                    p1, p0 = self._src_raw[idx]
                else:
                    p1, p0 = self.v1[idx], self.v0[idx]
                p1, p0 = self._apply_stem(idx, injs, p1, p0)
                self.v1[idx], self.v0[idx] = p1, p0
        v1, v0 = self.v1, self.v0
        mask = self.mask
        pin = self._pin
        stems = self._stem_list
        for pos, gate in enumerate(self.cc.gates):
            if pos in pin:
                vals = self._gate_inputs(pos, gate)
                p1, p0 = eval_packed(gate.gtype, vals, mask)
            else:
                p1, p0 = _eval_ints(gate.code, gate.fanin, v1, v0, mask)
            injs = stems.get(gate.out)
            if injs:
                p1, p0 = self._apply_stem(gate.out, injs, p1, p0)
            v1[gate.out] = p1
            v0[gate.out] = p0


register_backend("event", FrameSimulator)


def simulate_sequence(
    circuit: "Circuit | CompiledCircuit",
    vectors: Sequence[Dict[str, PackedValue]],
    width: int = 1,
    injections: Iterable[Injection] = (),
    initial_state: Optional[Dict[str, PackedValue]] = None,
    backend: Optional[str] = None,
) -> List[List[PackedValue]]:
    """Convenience wrapper: simulate a vector sequence from a given state.

    Returns the list of primary-output value lists, one per frame.
    """
    sim = make_simulator(circuit, width=width, injections=injections,
                         backend=backend)
    if initial_state:
        sim.set_state(initial_state)
    return [sim.step(v) for v in vectors]
