"""Compiled (index-based) form of a circuit for fast simulation.

:class:`CompiledCircuit` freezes a :class:`~repro.circuit.Circuit` into flat
integer-indexed arrays: one index per net, gates in level order, fanout
lists, and the PI / PO / flip-flop index sets every simulator needs.  All
simulators in this package (logic, fault, GA-fitness) share one compiled
form per circuit, so compilation cost is paid once.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit


#: Integer gate codes for the simulators' inline dispatch (hot loops).
GATE_CODE = {
    GateType.AND: 0,
    GateType.NAND: 1,
    GateType.OR: 2,
    GateType.NOR: 3,
    GateType.XOR: 4,
    GateType.XNOR: 5,
    GateType.NOT: 6,
    GateType.BUF: 7,
    GateType.CONST0: 8,
    GateType.CONST1: 9,
}


@dataclass(frozen=True)
class CompiledGate:
    """One combinational gate in evaluation order."""

    out: int
    gtype: GateType
    fanin: Tuple[int, ...]
    level: int
    code: int = -1


class CompiledCircuit:
    """Flat, index-addressed view of a circuit.

    Attributes:
        circuit: the source netlist.
        net_names: index -> net name.
        index: net name -> index.
        pi: indices of primary inputs, in declaration order.
        po: indices of primary outputs, in declaration order.
        ff_out: indices of flip-flop output nets.
        ff_in: indices of the corresponding D-input nets (same order).
        gates: combinational gates in non-decreasing level order.
        gate_of: net index -> position in ``gates`` (None for sources).
        fanout_gates: net index -> positions (into ``gates``) of reading gates.
        reads_ff_in: positions in ``gates`` never matter for this; D inputs
            are read directly by :meth:`next_state_indices`.
        level: per-net combinational level.
        num_levels: ``max(level) + 1``.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.net_names: List[str] = list(circuit.nets)
        self.index: Dict[str, int] = {n: i for i, n in enumerate(self.net_names)}
        self.pi: List[int] = [self.index[n] for n in circuit.inputs]
        self.po: List[int] = [self.index[n] for n in circuit.outputs]

        ff_nets = circuit.flops
        self.ff_out: List[int] = [self.index[n] for n in ff_nets]
        self.ff_in: List[int] = [
            self.index[circuit.gates[n].inputs[0]] for n in ff_nets
        ]

        levels = circuit.levels
        self.level: List[int] = [levels[n] for n in self.net_names]
        order = sorted(circuit.topo_order, key=lambda n: levels[n])
        self.gates: List[CompiledGate] = []
        self.gate_of: List[Optional[int]] = [None] * len(self.net_names)
        for pos, net in enumerate(order):
            g = circuit.gates[net]
            cg = CompiledGate(
                out=self.index[net],
                gtype=g.gtype,
                fanin=tuple(self.index[s] for s in g.inputs),
                level=levels[net],
                code=GATE_CODE[g.gtype],
            )
            self.gates.append(cg)
            self.gate_of[cg.out] = pos

        self.fanout_gates: List[List[int]] = [[] for _ in self.net_names]
        for pos, cg in enumerate(self.gates):
            for src in cg.fanin:
                self.fanout_gates[src].append(pos)

        self.num_levels = (max(self.level) if self.level else 0) + 1
        self.num_nets = len(self.net_names)

    # ------------------------------------------------------------------
    def name_of(self, idx: int) -> str:
        """Net name for an index (convenience for reporting)."""
        return self.net_names[idx]

    def is_source(self, idx: int) -> bool:
        """True for PIs and flip-flop outputs (nets with no evaluated gate)."""
        return self.gate_of[idx] is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledCircuit({self.circuit.name!r}, nets={self.num_nets}, "
            f"gates={len(self.gates)}, ff={len(self.ff_out)})"
        )


#: Weak-valued cache: an entry lives only while some consumer still holds
#: the :class:`CompiledCircuit` (which strongly references its source
#: circuit).  Long-running multi-circuit sessions therefore never
#: accumulate dead netlists the way the old strong ``id`` -> compiled map
#: did; a dropped compiled form releases its circuit with it.
_CACHE: "weakref.WeakValueDictionary[int, CompiledCircuit]" = (
    weakref.WeakValueDictionary()
)


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Compile a circuit, reusing a cached form for the same object.

    The cache keys on object identity, so structural edits after compilation
    require a fresh :class:`~repro.circuit.Circuit` (or ``circuit.copy()``).
    A recycled ``id`` from a garbage-collected circuit is detected by the
    identity check and recompiled.
    """
    key = id(circuit)
    cached = _CACHE.get(key)
    if cached is None or cached.circuit is not circuit:
        cached = CompiledCircuit(circuit)
        _CACHE[key] = cached
    return cached
