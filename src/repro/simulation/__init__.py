"""Bit-parallel three-valued logic and fault simulation."""

from .encoding import (
    PackedValue,
    X,
    diff_mask,
    eval3,
    eval_packed,
    full_mask,
    get_slot,
    known_mask,
    match_mask,
    pack,
    pack_const,
    popcount,
    set_slot,
    unpack,
)
from .compiled import CompiledCircuit, CompiledGate, compile_circuit
from .logic_sim import FrameSimulator, Injection, simulate_sequence
from .fault_sim import (
    FaultSimResult,
    FaultSimulator,
    Vector,
    fault_coverage,
    injection_for,
)

__all__ = [
    "CompiledCircuit",
    "CompiledGate",
    "FaultSimResult",
    "FaultSimulator",
    "FrameSimulator",
    "Injection",
    "PackedValue",
    "Vector",
    "X",
    "compile_circuit",
    "diff_mask",
    "eval3",
    "eval_packed",
    "fault_coverage",
    "full_mask",
    "get_slot",
    "injection_for",
    "known_mask",
    "match_mask",
    "pack",
    "pack_const",
    "popcount",
    "set_slot",
    "simulate_sequence",
    "unpack",
]
