"""PROOFS-style parallel-fault sequential fault simulation.

Faults are packed ``width`` at a time into the bit slots of one
:class:`~repro.simulation.logic_sim.FrameSimulator`; the fault-free circuit
is simulated once per sequence.  A fault is *detected* at a frame when some
primary output holds a known value in both circuits and the values differ.

Each fault carries its own flip-flop state between calls, so the driver can
fault-simulate only the newly appended test sequence after each accepted
test instead of replaying the whole cumulative test set (the same
incremental regime PROOFS runs inside HITEC).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit
from ..faults.model import Fault
from ..telemetry import NULL_RECORDER, Recorder
from . import kernel_cache
from .compiled import CompiledCircuit, compile_circuit
from .encoding import PackedValue, X, full_mask, pack_const, unpack
from .logic_sim import FrameSimulator, Injection, make_simulator, resolve_backend


def injection_for(cc: CompiledCircuit, fault: Fault, mask: int) -> Injection:
    """Translate a fault into a simulator :class:`Injection` for ``mask`` slots.

    Branch faults on combinational gates become pin injections; branch
    faults feeding a flip-flop's D pin become flip-flop latch injections
    (applied when the frame is clocked).  The fault's model rides along
    so the backend applies the matching activation condition.
    """
    net_idx = cc.index[fault.net]
    if not fault.is_branch:
        return Injection(
            net=net_idx, stuck=fault.stuck, mask=mask, model=fault.model
        )
    reader = cc.circuit.gates[fault.gate]
    if reader.gtype is GateType.DFF:
        ff_pos = cc.ff_out.index(cc.index[fault.gate])
        return Injection(
            net=net_idx, stuck=fault.stuck, mask=mask, ff_pos=ff_pos,
            model=fault.model,
        )
    gate_pos = cc.gate_of[cc.index[fault.gate]]
    return Injection(
        net=net_idx, stuck=fault.stuck, mask=mask, gate_pos=gate_pos,
        pin=fault.pin, model=fault.model,
    )

#: A test vector: scalar PI values (0/1/X) in primary-input declaration order.
Vector = Sequence[int]


@dataclass
class BlockGradeResult:
    """Outcome of grading an ordered series of test-sequence blocks.

    Attributes:
        kept: indices of blocks that detected at least one new fault (all
            blocks when redundant dropping is off).
        dropped: indices of blocks that added no new detection.
        detected: fault -> index of the block that first detected it.
        per_block_new: newly detected fault count per block, in order.
        good_state: fault-free flip-flop state after the kept blocks.
    """

    kept: List[int] = field(default_factory=list)
    dropped: List[int] = field(default_factory=list)
    detected: Dict[Fault, int] = field(default_factory=dict)
    per_block_new: List[int] = field(default_factory=list)
    good_state: List[int] = field(default_factory=list)


@dataclass
class FaultSimResult:
    """Outcome of fault-simulating one sequence.

    Attributes:
        detected: fault -> frame index (within this sequence) of first
            detection.
        good_state: fault-free flip-flop state after the sequence
            (scalars, flip-flop order).
        fault_states: per-surviving-fault faulty flip-flop state after the
            sequence (scalars, flip-flop order).
        good_outputs: fault-free PO scalar values per frame.
        signatures: fault -> all (frame, PO position) observation points,
            populated only when the run recorded full signatures.
    """

    detected: Dict[Fault, int] = field(default_factory=dict)
    good_state: List[int] = field(default_factory=list)
    fault_states: Dict[Fault, List[int]] = field(default_factory=dict)
    good_outputs: List[List[int]] = field(default_factory=list)
    signatures: Dict[Fault, "frozenset"] = field(default_factory=dict)


def _broadcast_vector(vector: Vector, width: int) -> List[Tuple[int, int]]:
    """Replicate one scalar PI vector across all slots."""
    return [pack_const(v, width) for v in vector]


def _pack_frames(
    vectors: Sequence[Vector], width: int
) -> List[List[PackedValue]]:
    """Pre-pack a whole sequence once (three possible pairs per width)."""
    table: Dict[int, PackedValue] = {}
    frames: List[List[PackedValue]] = []
    for vec in vectors:
        row = []
        for v in vec:
            packed = table.get(v)
            if packed is None:
                packed = table[v] = pack_const(v, width)
            row.append(packed)
        frames.append(row)
    return frames


def _fork_available() -> bool:
    """True when fault shards can run as forked worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def _split_chunks(items: List, parts: int) -> List[List]:
    """Split into at most ``parts`` contiguous, near-even, non-empty chunks."""
    parts = max(1, min(parts, len(items)))
    size, extra = divmod(len(items), parts)
    chunks, start = [], 0
    for i in range(parts):
        end = start + size + (1 if i < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


#: Context a forked shard worker inherits (set only around the Pool's life).
_SHARD_CTX: Optional[tuple] = None


def _run_shard(index: int):
    """Worker entry point: fault-simulate one contiguous chunk of batches."""
    sim, frames, chunks, fault_states, stop_early, record_signatures, \
        good_outputs = _SHARD_CTX
    local = FaultSimResult(good_outputs=good_outputs)
    states = dict(fault_states)
    for batch in chunks[index]:
        sim._run_batch(frames, batch, states, local, stop_early,
                       record_signatures)
    return local.detected, local.fault_states, local.signatures


class FaultSimulator:
    """Parallel-fault simulator over a fixed circuit.

    Args:
        circuit: circuit or compiled circuit to simulate.
        width: number of faults packed per pass (word width).
        backend: frame-simulator backend (``"event"``, ``"codegen"``, or
            ``"numpy"``); ``None`` defers to ``REPRO_SIM_BACKEND`` / the
            default.  ``"numpy"`` silently degrades to ``"codegen"`` when
            numpy is not installed.
        jobs: worker processes for :meth:`run`; 1 (the default) runs
            in-process, >1 shards fault batches across forked workers on
            platforms that support ``fork`` (in-process fallback
            elsewhere).  The ``numpy`` backend always runs in-process —
            matrix vectorization replaces sharding, with identical
            results.
        telemetry: metrics recorder (defaults to the shared no-op).
            Frame counters from forked shard workers are not merged back;
            sharded runs record batch counts only.
    """

    def __init__(
        self,
        circuit: "Circuit | CompiledCircuit",
        width: int = 64,
        backend: Optional[str] = None,
        jobs: int = 1,
        telemetry: Optional[Recorder] = None,
    ):
        self.cc = circuit if isinstance(circuit, CompiledCircuit) else compile_circuit(circuit)
        self.width = width
        self.backend = resolve_backend(backend)
        self.jobs = max(1, int(jobs))
        self.telemetry = telemetry or NULL_RECORDER

    # ------------------------------------------------------------------
    def simulate_good(
        self, vectors: Sequence[Vector], state: Optional[Sequence[int]] = None
    ) -> Tuple[List[List[int]], List[int]]:
        """Fault-free simulation: per-frame PO scalars and the final state."""
        sim = make_simulator(self.cc, width=1, backend=self.backend)
        if state is not None:
            sim.set_state([pack_const(v, 1) for v in state])
        outputs: List[List[int]] = []
        for frame in _pack_frames(vectors, 1):
            po = sim.step(frame)
            outputs.append([unpack(v, 1)[0] for v in po])
        final_state = [unpack(v, 1)[0] for v in sim.get_state()]
        self.telemetry.count("sim.good_frames", len(outputs))
        return outputs, final_state

    def run(
        self,
        vectors: Sequence[Vector],
        faults: Sequence[Fault],
        good_state: Optional[Sequence[int]] = None,
        fault_states: Optional[Dict[Fault, List[int]]] = None,
        stop_on_all_detected: bool = True,
        record_signatures: bool = False,
        jobs: Optional[int] = None,
    ) -> FaultSimResult:
        """Fault-simulate ``vectors`` against ``faults``.

        Args:
            vectors: the test sequence (scalars in PI order, X allowed).
            faults: faults to simulate (undetected ones).
            good_state: fault-free starting state (default all-X).
            fault_states: per-fault faulty starting state (default all-X).
            stop_on_all_detected: stop a batch early once every fault in it
                is detected.
            record_signatures: additionally collect every (frame, PO
                position) observation point per fault into
                ``result.signatures`` (disables early stopping) — the raw
                material of a fault dictionary.
            jobs: override the constructor's worker-process count for this
                call.

        Returns:
            A :class:`FaultSimResult`; ``fault_states`` holds final states
            only for faults *not* detected by this sequence.  Results are
            identical whatever ``jobs`` is: batches are sharded whole, and
            shard results merge back in batch order.
        """
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        result = FaultSimResult()
        cache0 = kernel_cache.stats_snapshot()
        with self.telemetry.span("sim.fault_sim"):
            if fault_states is None:
                fault_states = {}
            if record_signatures:
                stop_on_all_detected = False
            self.telemetry.count("sim.runs")
            self.telemetry.count("sim.faults", len(faults))
            if self.backend == "numpy":
                # whole-run vectorized path: the good machine rides in
                # slot 0 of each chunk, detection is computed post-hoc
                # from recorded output planes, and ``jobs`` is ignored —
                # in-process vectorization replaces process sharding with
                # identical results
                from .numpy_backend import run_fault_sim

                frames_run = run_fault_sim(
                    self, vectors, faults, good_state, fault_states,
                    result, record_signatures,
                )
                self.telemetry.count("sim.good_frames", len(vectors))
                self.telemetry.count("sim.frames", frames_run)
                self.telemetry.count(
                    "sim.batches",
                    max(1, -(-len(faults) // self.width)) if faults else 1,
                )
            else:
                result.good_outputs, result.good_state = self.simulate_good(
                    vectors, good_state
                )
                frames = _pack_frames(vectors, self.width)
                batches = [
                    list(faults[start : start + self.width])
                    for start in range(0, len(faults), self.width)
                ]
                self.telemetry.count("sim.batches", len(batches))
                if jobs > 1 and len(batches) > 1 and _fork_available():
                    self._run_sharded(frames, batches, fault_states, result,
                                      stop_on_all_detected,
                                      record_signatures, jobs)
                else:
                    for batch in batches:
                        self._run_batch(frames, batch, fault_states, result,
                                        stop_on_all_detected,
                                        record_signatures)
        for name in ("hits", "misses", "corrupt"):
            delta = kernel_cache.CACHE_STATS[name] - cache0[name]
            if delta:
                self.telemetry.count(f"sim.kernel_cache.{name}", delta)
        return result

    # ------------------------------------------------------------------
    def grade_blocks(
        self,
        blocks: Sequence[Sequence[Vector]],
        faults: Sequence[Fault],
        drop_redundant: bool = True,
        jobs: Optional[int] = None,
    ) -> BlockGradeResult:
        """Grade an ordered series of test-sequence blocks incrementally.

        Each block is applied from the good/faulty circuit states reached
        after the previously *kept* blocks — the same incremental regime
        the driver runs during validation, reused here so a campaign's
        merge stage can re-grade many shards' tests against the full fault
        list without replaying the cumulative set per block.  A block that
        detects no still-undetected fault is dropped (when
        ``drop_redundant``): its state changes are discarded, exactly as
        if it had never been applied.

        Args:
            blocks: test sequences in application order (each a list of
                vectors; campaign merge passes one accepted sequence per
                block).
            faults: the full fault list to grade against — typically a
                whole circuit's collapsed universe, so detections are
                credited across the shards that produced the blocks.
            drop_redundant: drop blocks that add no new detection.
            jobs: worker-process override passed through to :meth:`run`.
        """
        result = BlockGradeResult()
        remaining: List[Fault] = list(faults)
        good_state: Optional[List[int]] = None
        fault_states: Dict[Fault, List[int]] = {}
        with self.telemetry.span("sim.grade_blocks"):
            for index, block in enumerate(blocks):
                if not block or (drop_redundant and not remaining):
                    result.dropped.append(index)
                    result.per_block_new.append(0)
                    continue
                trial = {f: list(s) for f, s in fault_states.items()}
                sim = self.run(
                    block,
                    remaining,
                    good_state=good_state,
                    fault_states=trial,
                    jobs=jobs,
                )
                new = sim.detected
                if new or not drop_redundant:
                    result.kept.append(index)
                    good_state = sim.good_state
                    fault_states = {
                        f: s for f, s in trial.items() if f not in new
                    }
                    fault_states.update(sim.fault_states)
                    for fault in new:
                        result.detected[fault] = index
                    remaining = [f for f in remaining if f not in new]
                else:
                    result.dropped.append(index)
                result.per_block_new.append(len(new))
        result.good_state = list(good_state) if good_state else []
        self.telemetry.count("sim.blocks_graded", len(blocks))
        self.telemetry.count("sim.blocks_dropped", len(result.dropped))
        return result

    # ------------------------------------------------------------------
    def _run_sharded(
        self,
        frames: List[List[PackedValue]],
        batches: List[List[Fault]],
        fault_states: Dict[Fault, List[int]],
        result: FaultSimResult,
        stop_early: bool,
        record_signatures: bool,
        jobs: int,
    ) -> None:
        """Partition whole batches across forked workers; merge in order."""
        global _SHARD_CTX
        chunks = _split_chunks(batches, jobs)
        ctx = multiprocessing.get_context("fork")
        _SHARD_CTX = (self, frames, chunks, fault_states, stop_early,
                      record_signatures, result.good_outputs)
        try:
            with ctx.Pool(processes=len(chunks)) as pool:
                shard_results = pool.map(_run_shard, range(len(chunks)))
        except OSError:
            # fork/pipe failure: degrade gracefully to in-process execution
            for batch in batches:
                self._run_batch(frames, batch, fault_states, result,
                                stop_early, record_signatures)
            return
        finally:
            _SHARD_CTX = None
        # deterministic merge: shards come back in submission order, and
        # each chunk preserves batch order, so the merged maps iterate in
        # exactly the order the in-process loop would produce
        for detected, states, signatures in shard_results:
            result.detected.update(detected)
            result.fault_states.update(states)
            result.signatures.update(signatures)
            for fault in detected:
                fault_states.pop(fault, None)
            fault_states.update(states)

    # ------------------------------------------------------------------
    def _run_batch(
        self,
        frames: List[List[PackedValue]],
        batch: List[Fault],
        fault_states: Dict[Fault, List[int]],
        result: FaultSimResult,
        stop_early: bool,
        record_signatures: bool = False,
    ) -> None:
        w = len(batch)
        mask_all = full_mask(w)
        injections = [
            injection_for(self.cc, fault, 1 << slot)
            for slot, fault in enumerate(batch)
        ]
        sim = make_simulator(self.cc, width=w, injections=injections,
                             backend=self.backend)
        # pack each flip-flop's value across the fault slots
        n_ff = len(self.cc.ff_out)
        if any(f in fault_states for f in batch):
            packed_state = []
            for ff_i in range(n_ff):
                p1 = p0 = 0
                for slot, fault in enumerate(batch):
                    v = fault_states.get(fault, [X] * n_ff)[ff_i]
                    bit = 1 << slot
                    if v == 1:
                        p1 |= bit
                    elif v == 0:
                        p0 |= bit
                    else:
                        p1 |= bit
                        p0 |= bit
                packed_state.append((p1, p0))
            sim.set_state(packed_state)

        detected_mask = 0
        frames_stepped = 0
        signatures = [set() for _ in batch] if record_signatures else None
        for frame, packed_vec in enumerate(frames):
            frames_stepped += 1
            # frames are packed once per sequence at the full word width;
            # the simulator masks them down to this batch's width
            po_vals = sim.step(packed_vec)
            good_po = result.good_outputs[frame]
            for po_pos, ((f1, f0), gv) in enumerate(zip(po_vals, good_po)):
                if gv == X:
                    continue
                if gv == 1:
                    observed = f0 & ~f1 & mask_all
                else:
                    observed = f1 & ~f0 & mask_all
                new = observed & ~detected_mask
                if new:
                    for slot in range(w):
                        if new & (1 << slot):
                            result.detected[batch[slot]] = frame
                    detected_mask |= new
                if signatures is not None and observed:
                    for slot in range(w):
                        if observed & (1 << slot):
                            signatures[slot].add((frame, po_pos))
            if stop_early and detected_mask == mask_all:
                break
        self.telemetry.count("sim.frames", frames_stepped)
        if signatures is not None:
            for slot, fault in enumerate(batch):
                result.signatures[fault] = frozenset(signatures[slot])

        final = sim.get_state()
        for slot, fault in enumerate(batch):
            if detected_mask & (1 << slot):
                fault_states.pop(fault, None)
                continue
            state = []
            for p1, p0 in final:
                bit = 1 << slot
                one = bool(p1 & bit)
                zero = bool(p0 & bit)
                state.append(X if one and zero else (1 if one else 0))
            result.fault_states[fault] = state
            fault_states[fault] = state


def fault_coverage(
    circuit: "Circuit | CompiledCircuit",
    vectors: Sequence[Vector],
    faults: Sequence[Fault],
    width: int = 64,
    backend: Optional[str] = None,
    jobs: int = 1,
) -> float:
    """Fraction of ``faults`` detected by ``vectors`` from the all-X state."""
    if not faults:
        return 0.0
    sim = FaultSimulator(circuit, width=width, backend=backend, jobs=jobs)
    result = sim.run(vectors, faults)
    return len(result.detected) / len(faults)
