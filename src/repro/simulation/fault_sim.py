"""PROOFS-style parallel-fault sequential fault simulation.

Faults are packed ``width`` at a time into the bit slots of one
:class:`~repro.simulation.logic_sim.FrameSimulator`; the fault-free circuit
is simulated once per sequence.  A fault is *detected* at a frame when some
primary output holds a known value in both circuits and the values differ.

Each fault carries its own flip-flop state between calls, so the driver can
fault-simulate only the newly appended test sequence after each accepted
test instead of replaying the whole cumulative test set (the same
incremental regime PROOFS runs inside HITEC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit
from ..faults.model import Fault
from .compiled import CompiledCircuit, compile_circuit
from .encoding import X, full_mask, pack_const, unpack
from .logic_sim import FrameSimulator, Injection


def injection_for(cc: CompiledCircuit, fault: Fault, mask: int) -> Injection:
    """Translate a fault into a simulator :class:`Injection` for ``mask`` slots.

    Branch faults on combinational gates become pin injections; branch
    faults feeding a flip-flop's D pin become flip-flop latch injections
    (applied when the frame is clocked).
    """
    net_idx = cc.index[fault.net]
    if not fault.is_branch:
        return Injection(net=net_idx, stuck=fault.stuck, mask=mask)
    reader = cc.circuit.gates[fault.gate]
    if reader.gtype is GateType.DFF:
        ff_pos = cc.ff_out.index(cc.index[fault.gate])
        return Injection(net=net_idx, stuck=fault.stuck, mask=mask, ff_pos=ff_pos)
    gate_pos = cc.gate_of[cc.index[fault.gate]]
    return Injection(
        net=net_idx, stuck=fault.stuck, mask=mask, gate_pos=gate_pos, pin=fault.pin
    )

#: A test vector: scalar PI values (0/1/X) in primary-input declaration order.
Vector = Sequence[int]


@dataclass
class FaultSimResult:
    """Outcome of fault-simulating one sequence.

    Attributes:
        detected: fault -> frame index (within this sequence) of first
            detection.
        good_state: fault-free flip-flop state after the sequence
            (scalars, flip-flop order).
        fault_states: per-surviving-fault faulty flip-flop state after the
            sequence (scalars, flip-flop order).
        good_outputs: fault-free PO scalar values per frame.
        signatures: fault -> all (frame, PO position) observation points,
            populated only when the run recorded full signatures.
    """

    detected: Dict[Fault, int] = field(default_factory=dict)
    good_state: List[int] = field(default_factory=list)
    fault_states: Dict[Fault, List[int]] = field(default_factory=dict)
    good_outputs: List[List[int]] = field(default_factory=list)
    signatures: Dict[Fault, "frozenset"] = field(default_factory=dict)


def _broadcast_vector(vector: Vector, width: int) -> List[Tuple[int, int]]:
    """Replicate one scalar PI vector across all slots."""
    return [pack_const(v, width) for v in vector]


class FaultSimulator:
    """Parallel-fault simulator over a fixed circuit.

    Args:
        circuit: circuit or compiled circuit to simulate.
        width: number of faults packed per pass (word width).
    """

    def __init__(self, circuit: "Circuit | CompiledCircuit", width: int = 64):
        self.cc = circuit if isinstance(circuit, CompiledCircuit) else compile_circuit(circuit)
        self.width = width

    # ------------------------------------------------------------------
    def simulate_good(
        self, vectors: Sequence[Vector], state: Optional[Sequence[int]] = None
    ) -> Tuple[List[List[int]], List[int]]:
        """Fault-free simulation: per-frame PO scalars and the final state."""
        sim = FrameSimulator(self.cc, width=1)
        if state is not None:
            sim.set_state([pack_const(v, 1) for v in state])
        outputs: List[List[int]] = []
        for vec in vectors:
            po = sim.step(_broadcast_vector(vec, 1))
            outputs.append([unpack(v, 1)[0] for v in po])
        final_state = [unpack(v, 1)[0] for v in sim.get_state()]
        return outputs, final_state

    def run(
        self,
        vectors: Sequence[Vector],
        faults: Sequence[Fault],
        good_state: Optional[Sequence[int]] = None,
        fault_states: Optional[Dict[Fault, List[int]]] = None,
        stop_on_all_detected: bool = True,
        record_signatures: bool = False,
    ) -> FaultSimResult:
        """Fault-simulate ``vectors`` against ``faults``.

        Args:
            vectors: the test sequence (scalars in PI order, X allowed).
            faults: faults to simulate (undetected ones).
            good_state: fault-free starting state (default all-X).
            fault_states: per-fault faulty starting state (default all-X).
            stop_on_all_detected: stop a batch early once every fault in it
                is detected.
            record_signatures: additionally collect every (frame, PO
                position) observation point per fault into
                ``result.signatures`` (disables early stopping) — the raw
                material of a fault dictionary.

        Returns:
            A :class:`FaultSimResult`; ``fault_states`` holds final states
            only for faults *not* detected by this sequence.
        """
        result = FaultSimResult()
        result.good_outputs, result.good_state = self.simulate_good(
            vectors, good_state
        )
        if fault_states is None:
            fault_states = {}
        if record_signatures:
            stop_on_all_detected = False

        for start in range(0, len(faults), self.width):
            batch = list(faults[start : start + self.width])
            self._run_batch(vectors, batch, fault_states, result,
                            stop_on_all_detected, record_signatures)
        return result

    # ------------------------------------------------------------------
    def _run_batch(
        self,
        vectors: Sequence[Vector],
        batch: List[Fault],
        fault_states: Dict[Fault, List[int]],
        result: FaultSimResult,
        stop_early: bool,
        record_signatures: bool = False,
    ) -> None:
        w = len(batch)
        mask_all = full_mask(w)
        injections = [
            injection_for(self.cc, fault, 1 << slot)
            for slot, fault in enumerate(batch)
        ]
        sim = FrameSimulator(self.cc, width=w, injections=injections)
        # pack each flip-flop's value across the fault slots
        n_ff = len(self.cc.ff_out)
        if any(f in fault_states for f in batch):
            packed_state = []
            for ff_i in range(n_ff):
                p1 = p0 = 0
                for slot, fault in enumerate(batch):
                    v = fault_states.get(fault, [X] * n_ff)[ff_i]
                    bit = 1 << slot
                    if v == 1:
                        p1 |= bit
                    elif v == 0:
                        p0 |= bit
                    else:
                        p1 |= bit
                        p0 |= bit
                packed_state.append((p1, p0))
            sim.set_state(packed_state)

        detected_mask = 0
        signatures = [set() for _ in batch] if record_signatures else None
        for frame, vec in enumerate(vectors):
            po_vals = sim.step(_broadcast_vector(vec, w))
            good_po = result.good_outputs[frame]
            for po_pos, ((f1, f0), gv) in enumerate(zip(po_vals, good_po)):
                if gv == X:
                    continue
                if gv == 1:
                    observed = f0 & ~f1 & mask_all
                else:
                    observed = f1 & ~f0 & mask_all
                new = observed & ~detected_mask
                if new:
                    for slot in range(w):
                        if new & (1 << slot):
                            result.detected[batch[slot]] = frame
                    detected_mask |= new
                if signatures is not None and observed:
                    for slot in range(w):
                        if observed & (1 << slot):
                            signatures[slot].add((frame, po_pos))
            if stop_early and detected_mask == mask_all:
                break
        if signatures is not None:
            for slot, fault in enumerate(batch):
                result.signatures[fault] = frozenset(signatures[slot])

        final = sim.get_state()
        for slot, fault in enumerate(batch):
            if detected_mask & (1 << slot):
                fault_states.pop(fault, None)
                continue
            state = []
            for p1, p0 in final:
                bit = 1 << slot
                one = bool(p1 & bit)
                zero = bool(p0 & bit)
                state.append(X if one and zero else (1 if one else 0))
            result.fault_states[fault] = state
            fault_states[fault] = state


def fault_coverage(
    circuit: "Circuit | CompiledCircuit",
    vectors: Sequence[Vector],
    faults: Sequence[Fault],
    width: int = 64,
) -> float:
    """Fraction of ``faults`` detected by ``vectors`` from the all-X state."""
    if not faults:
        return 0.0
    sim = FaultSimulator(circuit, width=width)
    result = sim.run(vectors, faults)
    return len(result.detected) / len(faults)
