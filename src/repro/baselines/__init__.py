"""Historical baselines: random and weighted-random test generation."""

from .random_atpg import (
    RandomAtpgParams,
    RandomTestGenerator,
    WeightedRandomTestGenerator,
)

__all__ = [
    "RandomAtpgParams",
    "RandomTestGenerator",
    "WeightedRandomTestGenerator",
]
