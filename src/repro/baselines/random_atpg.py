"""Random and weighted-random test generation baselines.

The paper's introduction traces simulation-based test generation from
random (Breuer [9]) through weighted random (Schnurmann et al. [10],
Lisanke et al. [11], Wunderlich [12]) to GA-based generators.  These
baselines complete that lineage in the repository:

* :class:`RandomTestGenerator` — uniform random vectors with periodic
  fault dropping;
* :class:`WeightedRandomTestGenerator` — per-input 1-probabilities adapted
  in stages: each stage perturbs the current weights, keeps whichever
  variant detects the most remaining faults (a light self-tuning scheme in
  the spirit of [11]'s testability-driven biasing).

Both report :class:`~repro.hybrid.results.RunResult` records so benchmark
tables can compare them directly with GA-SIM, HITEC, and GA-HITEC.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..circuit.netlist import Circuit
from ..clock import monotonic
from ..faults.collapse import collapse_faults
from ..faults.model import Fault
from ..hybrid.results import PassStats, RunResult
from ..simulation.compiled import compile_circuit
from ..simulation.encoding import X
from ..simulation.fault_sim import FaultSimulator


@dataclass
class RandomAtpgParams:
    """Knobs shared by the random baselines.

    Attributes:
        block_len: vectors simulated between fault-dropping checks.
        stale_blocks: stop after this many blocks with no new detection.
        max_vectors: hard cap on the test-set length.
    """

    block_len: int = 32
    stale_blocks: int = 4
    max_vectors: int = 4000


class RandomTestGenerator:
    """Uniform random vectors with fault dropping (Breuer-style)."""

    name = "RANDOM"

    def __init__(self, circuit: Circuit, seed: int = 0, width: int = 64):
        self.circuit = circuit
        self.cc = compile_circuit(circuit)
        self.rng = random.Random(seed)
        self.sim = FaultSimulator(self.cc, width=width)
        self.n_pi = len(self.cc.pi)

    # ------------------------------------------------------------------
    def weights(self) -> List[float]:
        """Per-PI probability of driving a 1 (uniform here)."""
        return [0.5] * self.n_pi

    def _block(self, weights: Sequence[float], length: int) -> List[List[int]]:
        return [
            [int(self.rng.random() < w) for w in weights]
            for _ in range(length)
        ]

    def run(
        self,
        params: Optional[RandomAtpgParams] = None,
        faults: Optional[Sequence[Fault]] = None,
        time_limit: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> RunResult:
        """Generate until coverage stalls; returns cumulative statistics."""
        params = params or RandomAtpgParams()
        tick = clock or monotonic
        start = tick()
        remaining: List[Fault] = (
            list(faults) if faults is not None else collapse_faults(self.circuit)
        )
        result = RunResult(
            circuit_name=self.circuit.name,
            generator=self.name,
            total_faults=len(remaining),
        )
        test_set: List[List[int]] = []
        good_state: List[int] = [X] * len(self.cc.ff_out)
        fault_states: Dict[Fault, List[int]] = {}
        detected: Dict[Fault, int] = {}
        stale = 0
        block_no = 0

        while (
            remaining
            and stale < params.stale_blocks
            and len(test_set) < params.max_vectors
        ):
            if (
                time_limit is not None
                and tick() - start >= time_limit
            ):
                break
            block_no += 1
            block = self._next_block(params, remaining, good_state, fault_states)
            outcome = self.sim.run(
                block, remaining, good_state=good_state,
                fault_states=fault_states,
            )
            base = len(test_set)
            test_set.extend(block)
            good_state = outcome.good_state
            if outcome.detected:
                result.blocks.append(base)
                for fault in outcome.detected:
                    detected[fault] = base
                remaining = [f for f in remaining if f not in outcome.detected]
                stale = 0
            else:
                stale += 1
            result.passes.append(
                PassStats(
                    number=block_no,
                    approach=self.name.lower(),
                    detected=len(detected),
                    vectors=len(test_set),
                    time_s=tick() - start,
                )
            )

        result.test_set = test_set
        result.detected = detected
        return result

    def _next_block(
        self,
        params: RandomAtpgParams,
        remaining: Sequence[Fault],
        good_state: Sequence[int],
        fault_states: Dict[Fault, List[int]],
    ) -> List[List[int]]:
        return self._block(self.weights(), params.block_len)


class WeightedRandomTestGenerator(RandomTestGenerator):
    """Self-tuning weighted-random generation.

    Each block, a few candidate weight vectors (the incumbent plus random
    perturbations) are scored by trial fault simulation against the
    remaining faults; the winner's block is emitted and becomes the new
    incumbent.  Weights are clamped away from 0/1 so every input keeps
    toggling.
    """

    name = "WRANDOM"

    def __init__(
        self,
        circuit: Circuit,
        seed: int = 0,
        width: int = 64,
        candidates: int = 3,
        step: float = 0.25,
    ):
        super().__init__(circuit, seed=seed, width=width)
        self.candidates = max(1, candidates)
        self.step = step
        self._weights = [0.5] * self.n_pi

    def weights(self) -> List[float]:
        return list(self._weights)

    def _perturb(self) -> List[float]:
        return [
            min(0.9, max(0.1, w + self.rng.uniform(-self.step, self.step)))
            for w in self._weights
        ]

    def _next_block(
        self,
        params: RandomAtpgParams,
        remaining: Sequence[Fault],
        good_state: Sequence[int],
        fault_states: Dict[Fault, List[int]],
    ) -> List[List[int]]:
        options = [self.weights()] + [
            self._perturb() for _ in range(self.candidates - 1)
        ]
        best_block: List[List[int]] = []
        best_score = -1
        best_weights = self._weights
        for weights in options:
            block = self._block(weights, params.block_len)
            trial = {f: list(s) for f, s in fault_states.items()}
            outcome = self.sim.run(
                block, remaining, good_state=list(good_state),
                fault_states=trial, stop_on_all_detected=False,
            )
            score = len(outcome.detected)
            if score > best_score:
                best_score = score
                best_block = block
                best_weights = weights
        self._weights = list(best_weights)
        return best_block
