"""Durable ``repro-knowledge/v1`` sidecar files.

A sidecar holds the knowledge of one or more circuits in a single JSON
document, so a campaign can persist everything its shards learned next to
the journal and a later run (or a resume) can preload it::

    {
      "schema": "repro-knowledge/v1",
      "stores": { "<circuit>": { ...StateKnowledge.to_dict()... }, ... }
    }

A bare single-store document (``StateKnowledge.to_dict()`` at top level)
is also accepted on load, so ``repro atpg --knowledge-out`` files round
trip through the same functions.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Mapping, Optional

from .store import KNOWLEDGE_SCHEMA, KnowledgeError, StateKnowledge


def save_knowledge(
    stores: Mapping[str, StateKnowledge], path: str
) -> None:
    """Write a multi-circuit knowledge sidecar atomically."""
    document = {
        "schema": KNOWLEDGE_SCHEMA,
        "stores": {
            name: store.to_dict() for name, store in sorted(stores.items())
        },
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def load_knowledge(path: str) -> Dict[str, StateKnowledge]:
    """Load a sidecar into per-circuit stores.

    Accepts both the multi-store sidecar layout and a bare single-store
    document (keyed by its own ``circuit`` field).
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise KnowledgeError(f"{path}: knowledge sidecar must be an object")
    schema = data.get("schema")
    if schema != KNOWLEDGE_SCHEMA:
        raise KnowledgeError(
            f"{path}: schema must be {KNOWLEDGE_SCHEMA!r}, got {schema!r}"
        )
    if "stores" in data:
        stores = data["stores"]
        if not isinstance(stores, dict):
            raise KnowledgeError(f"{path}: 'stores' must be an object")
        return {
            name: StateKnowledge.from_dict(doc)
            for name, doc in stores.items()
        }
    store = StateKnowledge.from_dict(data)
    return {store.circuit or os.path.basename(path): store}


def load_store_for(
    path: Optional[str], circuit: str, fingerprint: str
) -> Optional[StateKnowledge]:
    """The sidecar's store for ``circuit``, or None.

    Stores recorded under a different constraint fingerprint are ignored
    rather than rejected — their facts are simply not valid here.
    """
    if path is None:
        return None
    stores = load_knowledge(path)
    store = stores.get(circuit)
    if store is None or store.fingerprint != fingerprint:
        return None
    return store
