"""Live cross-worker knowledge broadcast: the campaign side channel.

A campaign's items are isolated by design — each owns a private
:class:`~repro.knowledge.store.StateKnowledge` so reruns and resumes stay
deterministic.  That isolation also means worker B keeps re-deriving facts
worker A already proved.  This module is the opt-in escape hatch
(``CampaignSpec.knowledge_broadcast``): workers share *proven* facts
through an append-only side channel while the campaign runs, so a state
proved justified or unjustifiable by one worker prunes the same search in
every other worker within seconds, not only at the merge stage.

Layout: the channel is a directory next to the journal
(``<journal stem>.bcast/``) holding one JSONL file per worker.  Each
worker appends its own facts to its own file — single-writer files need no
locking and cannot interleave — and tails every file in the directory
(its own included, so facts survive item boundaries within a worker).  A
fact line is self-describing::

    {"v": 1, "circuit": "s298", "fp": "unconstrained",
     "kind": "justified", "state": [["G10", 1]], "vectors": [[0, 1]]}
    {"v": 1, "circuit": "s298", "fp": "unconstrained",
     "kind": "unjustifiable", "state": [["G11", 0]], "depth": null}

Readers tolerate torn tails (a fact that was mid-write when its worker
died is simply not durable yet) and skip unparseable or mismatched lines:
the channel is an accelerator, never a correctness dependency.

Determinism caveat: folding peer facts mid-run makes an item's trajectory
depend on arrival timing.  Facts are *sound* (only proven states travel),
so results stay valid and the merge re-grades coverage, but broadcast
campaigns trade the strict crash-resume/worker-count bit-equality of
isolated stores for wall-clock speed.  That is why broadcast is off by
default and carried in the spec (it affects results, so a resume must
know it was on).
"""

from __future__ import annotations

import io
import json
import os
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from ..clock import monotonic
from .store import StateKnowledge

#: Version tag on every channel line.
CHANNEL_VERSION = 1


class KnowledgeChannel:
    """One worker's handle on a broadcast directory.

    Args:
        directory: the shared channel directory (created if missing).
        member: this worker's file stem (e.g. ``"w0"``); appends go to
            ``<directory>/<member>.jsonl``.
    """

    def __init__(self, directory: str, member: str) -> None:
        self.directory = directory
        self.member = member
        self.path = os.path.join(directory, f"{member}.jsonl")
        os.makedirs(directory, exist_ok=True)
        self._handle: Optional[io.TextIOWrapper] = None
        #: bytes of each channel file already consumed by :meth:`poll`
        self._offsets: Dict[str, int] = {}

    # -- publishing ----------------------------------------------------
    def publish(self, fact: Dict[str, Any]) -> None:
        """Append one fact to this member's file (flushed, not fsynced).

        Losing a fact to a crash only costs a peer an acceleration; facts
        are re-derivable, so the channel skips the journal's fsync tax.
        """
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        fact = dict(fact)
        fact.setdefault("v", CHANNEL_VERSION)
        self._handle.write(json.dumps(fact, separators=(",", ":")) + "\n")
        self._handle.flush()

    # -- tailing -------------------------------------------------------
    def poll(self) -> List[Dict[str, Any]]:
        """Every complete fact line appended to the channel since the
        last poll, across all member files (own file included)."""
        facts: List[Dict[str, Any]] = []
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return facts
        for name in names:
            if not name.endswith(".jsonl"):
                continue
            path = os.path.join(self.directory, name)
            offset = self._offsets.get(path, 0)
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    data = handle.read()
            except OSError:
                continue
            if not data:
                continue
            # only consume newline-terminated lines; a torn tail stays
            # unconsumed and is re-read once its writer finishes it
            keep = data.rfind(b"\n") + 1
            self._offsets[path] = offset + keep
            for line in data[:keep].splitlines():
                try:
                    fact = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    continue
                if isinstance(fact, dict) and fact.get("v") == CHANNEL_VERSION:
                    facts.append(fact)
        return facts

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "KnowledgeChannel":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class BroadcastKnowledge(StateKnowledge):
    """A :class:`StateKnowledge` wired to a :class:`KnowledgeChannel`.

    Recording a *novel* fact also publishes it to the channel; lookups
    first fold any facts peers published since the last poll (rate
    limited by ``poll_interval`` so the hot justify path stays cheap).
    Folded facts are recorded through the normal store paths — subsumption
    and contradiction guards apply — but are never re-published.

    Args:
        channel: the worker's channel handle.
        poll_interval: minimum seconds between directory polls.
        clock: injectable time source (tests drive folding explicitly).
        (remaining args as for :class:`StateKnowledge`)
    """

    def __init__(
        self,
        circuit: str = "",
        fingerprint: str = "unconstrained",
        max_entries: int = 4096,
        max_seeds: int = 64,
        channel: Optional[KnowledgeChannel] = None,
        poll_interval: float = 0.5,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        super().__init__(
            circuit=circuit,
            fingerprint=fingerprint,
            max_entries=max_entries,
            max_seeds=max_seeds,
        )
        self.channel = channel
        self.poll_interval = poll_interval
        self.clock = clock
        self._folding = False
        self._last_poll = float("-inf")
        # pick up everything already on the channel at construction, so
        # an item starts from the campaign's current shared knowledge
        self.fold()

    # -- recording (publish novel facts) -------------------------------
    def record_justified(
        self, required: Mapping[str, int], vectors: Iterable[Iterable[int]]
    ) -> bool:
        seq = [list(vec) for vec in vectors]
        recorded = super().record_justified(required, seq)
        if recorded and not self._folding and self.channel is not None:
            self.channel.publish({
                "circuit": self.circuit,
                "fp": self.fingerprint,
                "kind": "justified",
                "state": [list(pair) for pair in sorted(required.items())],
                "vectors": seq,
            })
            self.stats["broadcast_published"] += 1
        return recorded

    def record_unjustifiable(
        self, required: Mapping[str, int], depth: Optional[int]
    ) -> bool:
        recorded = super().record_unjustifiable(required, depth)
        if recorded and not self._folding and self.channel is not None:
            self.channel.publish({
                "circuit": self.circuit,
                "fp": self.fingerprint,
                "kind": "unjustifiable",
                "state": [list(pair) for pair in sorted(required.items())],
                "depth": depth,
            })
            self.stats["broadcast_published"] += 1
        return recorded

    # -- lookups (fold peers' facts first) ------------------------------
    def lookup_justified(self, required: Mapping[str, int]):
        self._maybe_fold()
        return super().lookup_justified(required)

    def lookup_unjustifiable(
        self, required: Mapping[str, int], max_depth: Optional[int] = None
    ):
        self._maybe_fold()
        return super().lookup_unjustifiable(required, max_depth)

    # -- preloading ----------------------------------------------------
    def preload(self, store: StateKnowledge) -> None:
        """Merge a sidecar store without re-publishing its facts.

        Sets :attr:`preloaded` (the GA seed-pool gate) exactly like a
        directly-deserialized store would; peers already have sidecar
        facts through their own preload, so publishing them would only
        produce channel noise.
        """
        self._folding = True
        try:
            self.merge(store)
        finally:
            self._folding = False
        self.preloaded = True

    # -- folding -------------------------------------------------------
    def _maybe_fold(self) -> None:
        if self.channel is None:
            return
        now = self.clock()
        if now - self._last_poll < self.poll_interval:
            return
        self.fold()

    def fold(self) -> int:
        """Ingest every new channel fact now; returns facts folded."""
        if self.channel is None:
            return 0
        self._last_poll = self.clock()
        folded = 0
        self._folding = True
        try:
            for fact in self.channel.poll():
                if (
                    fact.get("circuit") != self.circuit
                    or fact.get("fp") != self.fingerprint
                ):
                    continue
                try:
                    state = {
                        str(name): int(value)
                        for name, value in fact.get("state", [])
                    }
                    if not state:
                        continue
                    if fact.get("kind") == "justified":
                        vectors = [
                            [int(v) for v in vec]
                            for vec in fact.get("vectors", [])
                        ]
                        if super().record_justified(state, vectors):
                            folded += 1
                    elif fact.get("kind") == "unjustifiable":
                        depth = fact.get("depth")
                        if super().record_unjustifiable(
                            state, None if depth is None else int(depth)
                        ):
                            folded += 1
                except (KeyError, TypeError, ValueError):
                    continue  # malformed fact: skip, never fail the run
        finally:
            self._folding = False
        if folded:
            self.stats["broadcast_folded"] += folded
        return folded
