"""Cross-fault state knowledge for sequential ATPG.

HITEC's key economy (Rudnick & Patel, DAC 1995) is that work spent on one
fault's time-frame-zero state pays off across the whole fault list: a
state proven justifiable (with the input sequence that reaches it) or
proven unjustifiable is a fact about the *circuit*, not about the fault
that first raised the question.  :class:`StateKnowledge` is the per-circuit
store of those facts, shared by every engine a run builds:

* **(a) justified states** — cared flip-flop assignments together with an
  input sequence that produces them starting from the all-unknown state.
  Because three-valued simulation from the all-X state is conservative,
  a sequence that establishes the assignment from all-X establishes it
  from *every* concrete start state, so reuse is start-state independent.
* **(b) unjustifiable states** — assignments proven unreachable, either
  absolutely (the reverse-time search exhausted with no bound biting) or
  within a recorded frame depth (the depth bound was the only thing that
  bit).  Budget aborts (backtrack/time limits, enumeration truncation)
  are never recorded: they prove nothing.
* **(c) a GA seed pool** — recently successful justification sequences,
  used to seed genetic populations instead of purely random genomes.

Lookups use assignment subsumption, both ways sound:

* a stored *justified* assignment ``K`` answers a query ``Q`` when
  ``K ⊇ Q`` — the stored sequence pins every flip-flop ``Q`` cares about
  to the required value (and possibly more);
* a stored *unjustifiable* assignment ``K`` answers a query ``Q`` when
  ``K ⊆ Q`` — any state satisfying ``Q`` would also satisfy the provably
  unreachable ``K``.  Depth-bounded proofs additionally require the
  stored depth to cover the query's frame bound.

Facts are only valid for the circuit *and input-constraint environment*
they were proven under, so every store carries a fingerprint and refuses
to merge with a store of a different fingerprint.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Serialization schema identifier (see :mod:`repro.knowledge.persist`).
KNOWLEDGE_SCHEMA = "repro-knowledge/v1"

#: Canonical hashable form of a cared flip-flop assignment.
StateKey = Tuple[Tuple[str, int], ...]


class KnowledgeError(RuntimeError):
    """A knowledge document or merge attempt is invalid."""


def state_key(required: Mapping[str, int]) -> StateKey:
    """Canonical key for a cared assignment {ff net name: 0/1}."""
    return tuple(sorted(required.items()))


def constraints_fingerprint(constraints: Any) -> str:
    """Stable fingerprint of an input-constraint environment.

    ``None`` (or a trivial :class:`~repro.atpg.constraints.InputConstraints`)
    fingerprints as ``"unconstrained"``; anything else folds the fixed-pin
    assignments and hold-pin set into a canonical string.
    """
    if constraints is None or getattr(constraints, "is_trivial", False):
        return "unconstrained"
    fixed = ",".join(
        f"{name}={value}" for name, value in sorted(constraints.fixed.items())
    )
    hold = ",".join(sorted(constraints.hold))
    return f"fixed[{fixed}]hold[{hold}]"


def model_fingerprint(base: str, fault_model: str) -> str:
    """Fold the fault model into a constraint-environment fingerprint.

    Justified-state facts mined under one fault model must not seed runs
    targeting another (the environments differ even when constraints
    agree).  Stuck-at — the model every existing sidecar was mined
    under — keeps the bare historical tag, so those sidecars stay valid.
    """
    if fault_model == "stuck_at":
        return base
    return f"{base}|model[{fault_model}]"


class StateKnowledge:
    """Per-circuit store of proven state-justification facts.

    Args:
        circuit: circuit name the facts belong to.
        fingerprint: input-constraint environment fingerprint (see
            :func:`constraints_fingerprint`); facts proven under one
            environment are not reused under another.
        max_entries: cap on stored justified / unjustifiable assignments
            (each); oldest entries are evicted first.
        max_seeds: cap on the GA seed pool; oldest seeds are evicted.
    """

    def __init__(
        self,
        circuit: str = "",
        fingerprint: str = "unconstrained",
        max_entries: int = 4096,
        max_seeds: int = 64,
    ) -> None:
        self.circuit = circuit
        self.fingerprint = fingerprint
        self.max_entries = max(1, int(max_entries))
        self.max_seeds = max(1, int(max_seeds))
        #: True when this store was deserialized (sidecar / cross-run
        #: reuse).  GA population seeding keys off this: a fresh in-run
        #: store never perturbs the GA trajectory of a knowledge-off run.
        self.preloaded = False
        #: (a) assignment -> justifying sequence (from the all-X state)
        self.justified: Dict[StateKey, List[List[int]]] = {}
        #: (b) assignment -> proof depth (``None`` = absolute proof)
        self.unjustifiable: Dict[StateKey, Optional[int]] = {}
        #: (c) recently successful sequences, most recent last
        self.seed_pool: List[List[List[int]]] = []
        #: effectiveness counters, reported into telemetry by the driver
        self.stats: Dict[str, int] = {
            "justified_hits": 0,
            "unjustifiable_hits": 0,
            "misses": 0,
            "stale_hits": 0,
            "records": 0,
            "podem_pruned": 0,
            "ga_seeded": 0,
            "broadcast_published": 0,
            "broadcast_folded": 0,
        }

    # -- queries -------------------------------------------------------
    def lookup_justified(
        self, required: Mapping[str, int]
    ) -> Optional[List[List[int]]]:
        """A sequence known to justify ``required`` from all-X, or None."""
        if not required:
            return []
        key = state_key(required)
        vectors = self.justified.get(key)
        if vectors is None:
            want = set(key)
            for stored, seq in self.justified.items():
                if want <= set(stored):
                    vectors = seq
                    break
        if vectors is None:
            self.stats["misses"] += 1
            return None
        self.stats["justified_hits"] += 1
        return [list(vec) for vec in vectors]

    def lookup_unjustifiable(
        self, required: Mapping[str, int], max_depth: Optional[int] = None
    ) -> Optional[str]:
        """Check whether ``required`` is known unreachable.

        Returns ``"exhausted"`` when an absolute proof applies,
        ``"bounded"`` when a depth-limited proof covers ``max_depth``
        (only consulted when ``max_depth`` is given), and ``None`` when
        nothing is known.  Does not count a miss — callers usually probe
        (b) right after missing (a).
        """
        if not required:
            return None
        want = set(state_key(required))
        verdict: Optional[str] = None
        for stored, depth in self.unjustifiable.items():
            if not set(stored) <= want:
                continue
            if depth is None:
                verdict = "exhausted"
                break
            if max_depth is not None and depth >= max_depth:
                verdict = "bounded"
        if verdict is not None:
            self.stats["unjustifiable_hits"] += 1
        return verdict

    def seed_sequences(self, limit: int) -> List[List[List[int]]]:
        """Up to ``limit`` seed sequences, most recently learned first."""
        if limit <= 0:
            return []
        pool = list(reversed(self.seed_pool))
        if len(pool) < limit:
            for seq in self.justified.values():
                if seq and seq not in pool:
                    pool.append(seq)
                if len(pool) >= limit:
                    break
        return [[list(vec) for vec in seq] for seq in pool[:limit]]

    # -- recording -----------------------------------------------------
    def record_justified(
        self, required: Mapping[str, int], vectors: Iterable[Iterable[int]]
    ) -> bool:
        """Record a sequence proven to justify ``required`` from all-X.

        Returns True when the store changed (a new fact, or a shorter
        sequence for a known one) — broadcast wrappers key off this to
        publish only novel facts.
        """
        if not required:
            return False
        key = state_key(required)
        seq = [list(vec) for vec in vectors]
        known = self.justified.get(key)
        recorded = known is None or len(seq) < len(known)
        if recorded:
            self._evict(self.justified)
            self.justified[key] = seq
            self.stats["records"] += 1
        # a justified state can never also be unjustifiable; drop any
        # stale subsumed claim defensively (should not happen for sound
        # recorders, but the store must never serve contradictions)
        self.unjustifiable.pop(key, None)
        if seq:
            self.add_seed(seq)
        return recorded

    def record_unjustifiable(
        self, required: Mapping[str, int], depth: Optional[int]
    ) -> bool:
        """Record a proof that ``required`` is unreachable.

        ``depth=None`` records an absolute proof (search exhausted with no
        bound biting); an integer records a proof valid for frame bounds
        up to ``depth``.  Never call this for budget aborts.  Returns True
        when the store changed (new fact or strictly stronger proof).
        """
        if not required:
            return False
        key = state_key(required)
        if key in self.justified:
            return False  # contradiction guard: the justified fact wins
        if key in self.unjustifiable:
            known = self.unjustifiable[key]
            if known is None:
                return False  # already an absolute proof
            if depth is not None and depth <= known:
                return False  # weaker than the proof already stored
            self.unjustifiable[key] = depth
            return True
        self._evict(self.unjustifiable)
        self.unjustifiable[key] = depth
        self.stats["records"] += 1
        return True

    def add_seed(self, vectors: Iterable[Iterable[int]]) -> None:
        """Add a successful sequence to the GA seed pool (bounded FIFO)."""
        seq = [list(vec) for vec in vectors]
        if not seq or seq in self.seed_pool:
            return
        self.seed_pool.append(seq)
        if len(self.seed_pool) > self.max_seeds:
            del self.seed_pool[0]

    def _evict(self, table: Dict[StateKey, Any]) -> None:
        while len(table) >= self.max_entries:
            table.pop(next(iter(table)))

    # -- aggregation ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.justified) + len(self.unjustifiable)

    def merge(self, other: "StateKnowledge") -> None:
        """Union another store's facts into this one.

        Justified entries keep the shorter sequence; unjustifiable
        entries keep the stronger proof (absolute beats any depth, larger
        depth beats smaller); seed pools union up to the cap.  Raises
        :class:`KnowledgeError` when the stores describe different
        circuits or constraint environments.
        """
        if other.circuit and self.circuit and other.circuit != self.circuit:
            raise KnowledgeError(
                f"cannot merge knowledge for {other.circuit!r} into "
                f"{self.circuit!r}"
            )
        if other.fingerprint != self.fingerprint:
            raise KnowledgeError(
                "cannot merge knowledge proven under constraint environment "
                f"{other.fingerprint!r} into {self.fingerprint!r}"
            )
        for key, seq in other.justified.items():
            self.record_justified(dict(key), seq)
        for key, depth in other.unjustifiable.items():
            self.record_unjustifiable(dict(key), depth)
        for seq in other.seed_pool:
            self.add_seed(seq)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready ``repro-knowledge/v1`` document for this store."""
        return {
            "schema": KNOWLEDGE_SCHEMA,
            "circuit": self.circuit,
            "fingerprint": self.fingerprint,
            "justified": [
                {"state": [list(pair) for pair in key], "vectors": seq}
                for key, seq in sorted(self.justified.items())
            ],
            "unjustifiable": [
                {"state": [list(pair) for pair in key], "depth": depth}
                for key, depth in sorted(self.unjustifiable.items())
            ],
            "seed_pool": [list(seq) for seq in self.seed_pool],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StateKnowledge":
        if not isinstance(data, Mapping):
            raise KnowledgeError("knowledge document must be a JSON object")
        schema = data.get("schema")
        if schema != KNOWLEDGE_SCHEMA:
            raise KnowledgeError(
                f"knowledge schema must be {KNOWLEDGE_SCHEMA!r}, got "
                f"{schema!r}"
            )
        store = cls(
            circuit=str(data.get("circuit", "")),
            fingerprint=str(data.get("fingerprint", "unconstrained")),
        )
        for entry in data.get("justified", []):
            state = {str(name): int(val) for name, val in entry["state"]}
            store.justified[state_key(state)] = [
                [int(v) for v in vec] for vec in entry["vectors"]
            ]
        for entry in data.get("unjustifiable", []):
            state = {str(name): int(val) for name, val in entry["state"]}
            depth = entry.get("depth")
            store.unjustifiable[state_key(state)] = (
                None if depth is None else int(depth)
            )
        for seq in data.get("seed_pool", []):
            store.seed_pool.append([[int(v) for v in vec] for vec in seq])
        del store.seed_pool[: -store.max_seeds]
        store.stats = {k: 0 for k in store.stats}
        store.preloaded = True
        return store

    def snapshot_stats(self) -> Dict[str, int]:
        """Copy of the effectiveness counters (for delta accounting)."""
        return dict(self.stats)
