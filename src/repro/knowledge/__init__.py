"""Cross-fault state-knowledge layer (HITEC's search economy, made durable).

Public surface:

* :class:`~repro.knowledge.store.StateKnowledge` — per-circuit store of
  justified states (with sequences), proven-unjustifiable states, and a
  GA seed pool;
* :func:`~repro.knowledge.store.state_key` /
  :func:`~repro.knowledge.store.constraints_fingerprint` — canonical keys;
* :func:`~repro.knowledge.persist.save_knowledge` /
  :func:`~repro.knowledge.persist.load_knowledge` /
  :func:`~repro.knowledge.persist.load_store_for` — versioned
  ``repro-knowledge/v1`` sidecar persistence;
* :class:`~repro.knowledge.broadcast.KnowledgeChannel` /
  :class:`~repro.knowledge.broadcast.BroadcastKnowledge` — the opt-in
  live side channel campaign workers use to share proven facts mid-run.

See ``docs/KNOWLEDGE.md`` for the store semantics, the persistence
format, the merge rules, and the soundness argument behind pruning on
proven-unjustifiable states.
"""

from .broadcast import BroadcastKnowledge, KnowledgeChannel
from .persist import load_knowledge, load_store_for, save_knowledge
from .store import (
    KNOWLEDGE_SCHEMA,
    KnowledgeError,
    StateKnowledge,
    constraints_fingerprint,
    model_fingerprint,
    state_key,
)

__all__ = [
    "KNOWLEDGE_SCHEMA",
    "BroadcastKnowledge",
    "KnowledgeChannel",
    "KnowledgeError",
    "StateKnowledge",
    "constraints_fingerprint",
    "model_fingerprint",
    "state_key",
    "load_knowledge",
    "load_store_for",
    "save_knowledge",
]
