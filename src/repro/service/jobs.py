"""Job management: the durable queue between HTTP clients and campaigns.

A *job* is one campaign spec submitted to the service.  Jobs are
content-addressed — the job id **is** the spec hash — which makes
submission idempotent for free: resubmitting a spec returns the existing
job (whatever state it is in) instead of recomputing, and a journal left
on disk by a previous service process (or by ``repro campaign run``
pointed at the same directory) is simply resumed, because the journal
file name is derived from the same hash.

:class:`JobManager` owns:

* the **lanes** — bounded FIFO queues per priority (``high`` /
  ``normal`` / ``low``), drained strictly in that order, with a global
  queue bound and a per-client quota on live (queued + running) jobs;
* the **dispatcher** — an asyncio task that starts up to ``max_running``
  campaigns concurrently, each executed in a worker thread so the
  (blocking, possibly forking) :class:`~repro.campaign.CampaignRunner`
  never stalls the event loop;
* the **warm cache** — per-circuit warm artifacts
  (:func:`repro.campaign.warm.circuit_warm_key`) shared across jobs, so
  kernels, SCOAP, and fault collapse are paid once per circuit hash no
  matter how many specs target it;
* **restart recovery** — :meth:`recover` re-scans the journal directory,
  turning merged journals back into DONE jobs (reports are re-merged on
  demand) and unfinished ones into queued resumes.

Cancellation is cooperative: a queued job is dropped immediately; a
running one has its cancel event polled by the runner's ``stop_check``
between items, after which the job parks as CANCELLED with its journal
intact, ready for :meth:`resume_job`.
"""

from __future__ import annotations

import asyncio
import glob
import os
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..campaign import (
    CampaignCancelled,
    CampaignError,
    CampaignRunner,
    CampaignSpec,
    JournalState,
    merge_campaign,
)
from ..campaign.warm import CircuitWarmState
from ..clock import monotonic, wall
from ..knowledge import save_knowledge
from ..telemetry import NULL_RECORDER, Recorder, RunReport
from .http import ServiceError

#: Dispatch order: a queued high job always starts before a normal one.
PRIORITIES = ("high", "normal", "low")

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


class Job:
    """One submitted campaign and everything the API exposes about it."""

    def __init__(
        self,
        job_id: str,
        spec: CampaignSpec,
        journal_path: str,
        report_path: str,
        client: str = "anon",
        priority: str = "normal",
    ):
        self.job_id = job_id
        self.spec = spec
        self.journal_path = journal_path
        self.report_path = report_path
        self.client = client
        self.priority = priority
        self.state = QUEUED
        self.error: Optional[str] = None
        #: the merged summary dict once the campaign completed
        self.summary: Optional[Dict[str, Any]] = None
        self.submitted_ts: float = 0.0
        self.started_ts: Optional[float] = None
        self.finished_ts: Optional[float] = None
        #: cooperative cancel flag, polled by the runner between items
        self.cancel_event = threading.Event()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job": self.job_id,
            "name": self.spec.name,
            "spec_hash": self.job_id,
            "circuits": list(self.spec.circuits),
            "client": self.client,
            "priority": self.priority,
            "state": self.state,
            "error": self.error,
            "summary": self.summary,
            "submitted_ts": round(self.submitted_ts, 3),
            "started_ts": (
                round(self.started_ts, 3) if self.started_ts else None
            ),
            "finished_ts": (
                round(self.finished_ts, 3) if self.finished_ts else None
            ),
        }


class JobManager:
    """Bounded, fair, restart-surviving dispatch of campaigns.

    Args:
        root: service state directory — journals (``<spec_hash>.jsonl``),
            reports, knowledge sidecars, ``uploads/``, and ``policies/``
            (content-addressed ``repro-policy/v1`` artifacts) live here.
        max_running: campaigns executed concurrently.
        max_queue: total queued jobs across all lanes; submissions past
            it are rejected with 429.
        client_quota: live (queued + running) jobs allowed per client.
        workers_per_job: campaign worker processes per job (1 = inline).
        telemetry: service-level counters/gauges recorder.
        poll_interval: SSE tail poll period, seconds.
    """

    def __init__(
        self,
        root: str,
        max_running: int = 2,
        max_queue: int = 256,
        client_quota: int = 16,
        workers_per_job: int = 1,
        telemetry: Recorder = NULL_RECORDER,
        poll_interval: float = 0.05,
    ):
        self.root = root
        self.uploads_dir = os.path.join(root, "uploads")
        os.makedirs(self.uploads_dir, exist_ok=True)
        self.policies_dir = os.path.join(root, "policies")
        os.makedirs(self.policies_dir, exist_ok=True)
        self.max_running = max(1, int(max_running))
        self.max_queue = max(1, int(max_queue))
        self.client_quota = max(1, int(client_quota))
        self.workers_per_job = max(1, int(workers_per_job))
        self.telemetry = telemetry
        self.poll_interval = poll_interval
        self.jobs: Dict[str, Job] = {}
        self._lanes: Dict[str, Deque[Job]] = {
            priority: deque() for priority in PRIORITIES
        }
        self._running_count = 0
        self._warm_cache: Dict[str, CircuitWarmState] = {}
        self._wake: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._stopping = False

    # -- paths ---------------------------------------------------------
    def journal_path(self, job_id: str) -> str:
        return os.path.join(self.root, f"{job_id}.jsonl")

    def report_path(self, job_id: str) -> str:
        return os.path.join(self.root, f"{job_id}.report.json")

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Recover persisted jobs and start the dispatch loop."""
        self._wake = asyncio.Event()
        self.recover()
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    async def stop(self) -> None:
        """Stop dispatching; running campaigns are cancelled cooperatively."""
        self._stopping = True
        for job in self.jobs.values():
            if job.state == RUNNING:
                job.cancel_event.set()
        if self._dispatcher is not None:
            self._kick()
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None

    def recover(self) -> None:
        """Rebuild the job table from the journal directory.

        Journals whose campaign merged come back as DONE jobs; anything
        unfinished is queued for resume.  Unreadable journals (foreign
        schema, torn beyond the header) are skipped and counted — a bad
        file must not prevent the service from starting.
        """
        for path in sorted(glob.glob(os.path.join(self.root, "*.jsonl"))):
            job_id = os.path.splitext(os.path.basename(path))[0]
            if job_id in self.jobs:
                continue
            try:
                state = JournalState.replay(path)
                spec = CampaignSpec.from_dict(state.spec_data)
            except (CampaignError, OSError):
                self.telemetry.count("service.jobs.unreadable")
                continue
            job = Job(
                job_id,
                spec,
                journal_path=path,
                report_path=self.report_path(job_id),
            )
            job.submitted_ts = wall()
            self.jobs[job_id] = job
            self.telemetry.count("service.jobs.recovered")
            if state.merged is not None:
                job.state = DONE
                job.summary = state.merged
            else:
                self._enqueue(job)

    # -- submission ----------------------------------------------------
    def submit(
        self,
        spec: CampaignSpec,
        client: str = "anon",
        priority: str = "normal",
    ) -> Tuple[Job, bool]:
        """Submit a spec; returns ``(job, created)``.

        Idempotent by spec hash: an identical spec — whatever its job's
        state — returns the existing job with ``created=False`` and
        consumes no quota.
        """
        if priority not in PRIORITIES:
            raise ServiceError(
                400, f"priority must be one of {', '.join(PRIORITIES)}"
            )
        job_id = spec.spec_hash()
        existing = self.jobs.get(job_id)
        if existing is not None:
            self.telemetry.count("service.jobs.deduped")
            return existing, False
        if sum(len(lane) for lane in self._lanes.values()) >= self.max_queue:
            self.telemetry.count("service.jobs.rejected")
            raise ServiceError(429, "job queue is full — retry later")
        live = sum(
            1
            for job in self.jobs.values()
            if job.client == client and job.state in (QUEUED, RUNNING)
        )
        if live >= self.client_quota:
            self.telemetry.count("service.jobs.rejected")
            raise ServiceError(
                429,
                f"client {client!r} already has {live} live jobs "
                f"(quota {self.client_quota})",
            )
        job = Job(
            job_id,
            spec,
            journal_path=self.journal_path(job_id),
            report_path=self.report_path(job_id),
            client=client,
            priority=priority,
        )
        job.submitted_ts = wall()
        self.jobs[job_id] = job
        self.telemetry.count("service.jobs.submitted")
        self._enqueue(job)
        return job, True

    def get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(404, f"no job {job_id}")
        return job

    # -- cancel / resume -----------------------------------------------
    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job now, or a running one cooperatively."""
        job = self.get(job_id)
        if job.state == QUEUED:
            try:
                self._lanes[job.priority].remove(job)
            except ValueError:
                pass
            job.state = CANCELLED
            job.finished_ts = wall()
            self.telemetry.count("service.jobs.cancelled")
        elif job.state == RUNNING:
            job.cancel_event.set()  # the runner raises at its next check
        else:
            raise ServiceError(
                409, f"job {job_id} is already {job.state}"
            )
        return job

    def resume_job(self, job_id: str) -> Job:
        """Requeue a cancelled or failed job; its journal carries on."""
        job = self.get(job_id)
        if job.state not in (CANCELLED, FAILED):
            raise ServiceError(
                409,
                f"job {job_id} is {job.state}; only cancelled or failed "
                "jobs can be resumed",
            )
        job.cancel_event.clear()
        job.error = None
        job.state = QUEUED
        self.telemetry.count("service.jobs.resumed")
        self._enqueue(job)
        return job

    # -- queue internals -----------------------------------------------
    def _enqueue(self, job: Job) -> None:
        job.state = QUEUED
        self._lanes[job.priority].append(job)
        self._record_depth()
        self._kick()

    def _next_job(self) -> Optional[Job]:
        for priority in PRIORITIES:
            lane = self._lanes[priority]
            if lane:
                return lane.popleft()
        return None

    def queue_depth(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def _record_depth(self) -> None:
        self.telemetry.gauge("service.queue.depth", self.queue_depth())
        self.telemetry.gauge("service.jobs.running", self._running_count)

    def _kick(self) -> None:
        if self._wake is not None:
            self._wake.set()

    # -- dispatch ------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while not self._stopping:
            while self._running_count < self.max_running:
                job = self._next_job()
                if job is None:
                    break
                self._running_count += 1
                self._record_depth()
                asyncio.get_running_loop().create_task(self._run_job(job))
            self._wake.clear()
            await self._wake.wait()

    async def _run_job(self, job: Job) -> None:
        job.state = RUNNING
        job.started_ts = wall()
        queued_s = max(0.0, job.started_ts - job.submitted_ts)
        self.telemetry.observe("service.jobs.queued_s", queued_s)
        t0 = monotonic()
        try:
            summary = await asyncio.get_running_loop().run_in_executor(
                None, self._execute, job
            )
        except CampaignCancelled:
            job.state = CANCELLED
            self.telemetry.count("service.jobs.cancelled")
        except Exception as exc:  # noqa: BLE001 — park the job as failed
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = FAILED
            self.telemetry.count("service.jobs.failed")
        else:
            job.summary = summary
            job.state = DONE
            self.telemetry.count("service.jobs.completed")
            self.telemetry.observe("service.jobs.run_s", monotonic() - t0)
        finally:
            job.finished_ts = wall()
            self._running_count -= 1
            self._record_depth()
            self._kick()

    def _execute(self, job: Job) -> Dict[str, Any]:
        """Run one campaign to completion (worker thread)."""
        runner = CampaignRunner(
            job.spec,
            job.journal_path,
            workers=self.workers_per_job,
            stop_check=job.cancel_event.is_set,
            warm_cache=self._warm_cache,
        )
        resume = (
            os.path.exists(job.journal_path)
            and os.path.getsize(job.journal_path) > 0
        )
        result = runner.run(resume=resume)
        if result.report is not None:
            result.report.save(job.report_path)
        return result.summary_dict()

    # -- results -------------------------------------------------------
    def report_of(self, job_id: str) -> Dict[str, Any]:
        """The job's merged ``repro-run-report/v1`` document.

        Re-merged from the journal when the report file is missing —
        e.g. the campaign merged under a previous service process that
        died before writing the report.
        """
        job = self.get(job_id)
        if os.path.exists(job.report_path):
            return RunReport.load(job.report_path).to_dict()
        if job.state != DONE:
            raise ServiceError(
                409, f"job {job_id} is {job.state}; no report yet"
            )
        result = self._remerge(job)
        if result.report is None:
            raise ServiceError(404, f"job {job_id} produced no report")
        return result.report.to_dict()

    def _remerge(self, job: Job):
        state = JournalState.replay(job.journal_path)
        result = merge_campaign(job.spec, dict(state.done))
        if result.report is not None:
            result.report.save(job.report_path)
        if job.spec.knowledge and result.knowledge:
            stem, _ = os.path.splitext(job.journal_path)
            path = f"{stem}.knowledge.json"
            if not os.path.exists(path):
                save_knowledge(result.knowledge, path)
        return result

    def knowledge_of(self, job_id: str) -> str:
        """Path of the job's knowledge sidecar (404 when absent)."""
        job = self.get(job_id)
        stem, _ = os.path.splitext(job.journal_path)
        path = f"{stem}.knowledge.json"
        if not os.path.exists(path):
            raise ServiceError(
                404, f"job {job_id} has no knowledge sidecar"
            )
        return path

    def progress_of(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Live campaign progress from the journal, or None pre-start."""
        job = self.get(job_id)
        try:
            return CampaignRunner.status(job.journal_path)
        except (CampaignError, OSError):
            return None

    # -- stats ---------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        payload: Dict[str, Any] = {
            "jobs": len(self.jobs),
            "states": states,
            "queue_depth": self.queue_depth(),
            "running": self._running_count,
            "max_running": self.max_running,
            "max_queue": self.max_queue,
            "client_quota": self.client_quota,
            "warm_circuits": len(self._warm_cache),
        }
        registry = getattr(self.telemetry, "registry", None)
        if registry is not None:
            payload["metrics"] = registry.to_dict()
        return payload
