"""Minimal asyncio HTTP/1.1 layer: routing, JSON bodies, SSE streams.

The service deliberately runs on the stdlib alone — ``asyncio`` streams
plus a few hundred lines of request parsing — so the repo's no-new-deps
constraint holds and the whole stack stays auditable.  The layer knows
exactly three response shapes:

* :class:`Response` — a complete body (JSON for every API endpoint);
* :class:`EventStream` — a Server-Sent-Events stream fed by an async
  generator of ``(event, payload)`` pairs, flushed as frames arrive;
* :class:`ServiceError` — raised anywhere in a handler, rendered as a
  JSON error document with the carried HTTP status.

Connections are one-request-per-connection (``Connection: close``): the
service's clients are programs, SSE streams monopolize their connection
anyway, and dropping keep-alive removes a whole class of pipelining
bugs.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from ..telemetry import NULL_RECORDER, Recorder

#: Upper bound on request bodies (a .bench upload is well under this).
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ServiceError(Exception):
    """An API error with the HTTP status it should surface as."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class Request:
    """One parsed HTTP request."""

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self) -> Dict[str, Any]:
        """The request body as a JSON object (400 on anything else)."""
        if not self.body:
            raise ServiceError(400, "request body must be a JSON object")
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServiceError(400, "request body is not valid JSON") from None
        if not isinstance(data, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return data


class Response:
    """A complete HTTP response."""

    def __init__(
        self,
        status: int = 200,
        body: bytes = b"",
        content_type: str = "application/json",
    ):
        self.status = status
        self.body = body
        self.content_type = content_type

    @classmethod
    def json(cls, payload: Any, status: int = 200) -> "Response":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return cls(status=status, body=body)


class EventStream:
    """A Server-Sent-Events response: ``(event, payload)`` frames."""

    def __init__(self, events: AsyncIterator[Tuple[str, Any]]):
        self.events = events


#: A handler takes the request plus path parameters; returns a Response
#: or an EventStream.
Handler = Callable[..., Any]


class Router:
    """Method + path-template routing (``/jobs/{job_id}/events``)."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, List[str], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append(
            (method.upper(), pattern.strip("/").split("/"), handler)
        )

    def resolve(self, method: str, path: str) -> Tuple[Handler, Dict[str, str]]:
        """The handler and path params for a request (404/405 on miss)."""
        segments = [unquote(s) for s in path.strip("/").split("/")]
        path_matched = False
        for route_method, template, handler in self._routes:
            params = _match(template, segments)
            if params is None:
                continue
            path_matched = True
            if route_method == method.upper():
                return handler, params
        if path_matched:
            raise ServiceError(405, f"method {method} not allowed for {path}")
        raise ServiceError(404, f"no route for {path}")


def _match(template: List[str], segments: List[str]) -> Optional[Dict[str, str]]:
    if len(template) != len(segments):
        return None
    params: Dict[str, str] = {}
    for part, segment in zip(template, segments):
        if part.startswith("{") and part.endswith("}"):
            if not segment:
                return None
            params[part[1:-1]] = segment
        elif part != segment:
            return None
    return params


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the wire; ``None`` on a closed connection."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line or not request_line.strip():
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        raise ServiceError(400, "malformed request line") from None
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise ServiceError(400, "bad Content-Length") from None
    if length > MAX_BODY_BYTES:
        raise ServiceError(413, "request body too large")
    body = await reader.readexactly(length) if length else b""
    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query))
    return Request(method, parts.path or "/", query, headers, body)


def _head(status: int, content_type: str, extra: str = "") -> bytes:
    reason = _REASONS.get(status, "Unknown")
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        "Connection: close\r\n"
        f"{extra}\r\n"
    ).encode("latin-1")


class HttpServer:
    """One router bound to an ``asyncio.start_server`` listener."""

    def __init__(
        self, router: Router, telemetry: Recorder = NULL_RECORDER
    ) -> None:
        self.router = router
        self.telemetry = telemetry
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self, host: str, port: int) -> Tuple[str, int]:
        """Bind and serve; returns the actual (host, port) bound."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            await self._serve_one(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            self.telemetry.count("service.http.disconnects")
        except Exception:  # noqa: BLE001 — a connection must not kill the loop
            self.telemetry.count("service.http.errors")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await read_request(reader)
        except ServiceError as exc:
            await self._write_response(
                writer, _error_response(exc.status, str(exc))
            )
            return
        if request is None:
            return
        self.telemetry.count("service.http.requests")
        try:
            handler, params = self.router.resolve(request.method, request.path)
            result = handler(request, **params)
            if asyncio.iscoroutine(result):
                result = await result
        except ServiceError as exc:
            self.telemetry.count("service.http.client_errors")
            await self._write_response(
                writer, _error_response(exc.status, str(exc))
            )
            return
        except Exception as exc:  # noqa: BLE001 — surface as a 500
            self.telemetry.count("service.http.server_errors")
            await self._write_response(
                writer,
                _error_response(500, f"{type(exc).__name__}: {exc}"),
            )
            return
        if isinstance(result, EventStream):
            await self._write_stream(writer, result)
        else:
            await self._write_response(writer, result)

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        writer.write(
            _head(
                response.status,
                response.content_type,
                f"Content-Length: {len(response.body)}\r\n",
            )
        )
        writer.write(response.body)
        await writer.drain()

    async def _write_stream(
        self, writer: asyncio.StreamWriter, stream: EventStream
    ) -> None:
        writer.write(
            _head(
                200,
                "text/event-stream",
                "Cache-Control: no-cache\r\n",
            )
        )
        await writer.drain()
        self.telemetry.count("service.streams.opened")
        try:
            async for name, payload in stream.events:
                frame = (
                    f"event: {name}\n"
                    f"data: {json.dumps(payload, sort_keys=True)}\n\n"
                )
                writer.write(frame.encode("utf-8"))
                await writer.drain()
        except (ConnectionError, OSError):
            # the client went away mid-stream; the journal is unaffected
            self.telemetry.count("service.streams.client_gone")
        finally:
            aclose = getattr(stream.events, "aclose", None)
            if aclose is not None:
                await aclose()
            self.telemetry.count("service.streams.closed")


def _error_response(status: int, message: str) -> Response:
    return Response.json({"error": message, "status": status}, status=status)
