"""The ATPG service API: routes, SSE progress streams, and ``serve``.

Endpoints (all JSON unless noted):

====== ================================ =====================================
GET    ``/healthz``                     liveness probe
GET    ``/stats``                       queue depth, job states, telemetry
POST   ``/circuits``                    upload a ``.bench`` netlist
POST   ``/policies``                    upload a ``repro-policy/v1`` artifact
POST   ``/jobs``                        submit a campaign spec (idempotent)
GET    ``/jobs``                        list jobs
GET    ``/jobs/{id}``                   job detail + live journal progress
POST   ``/jobs/{id}/cancel``            cancel (cooperative when running)
POST   ``/jobs/{id}/resume``            requeue a cancelled/failed job
GET    ``/jobs/{id}/events``            SSE progress stream (journal tail)
GET    ``/jobs/{id}/report``            merged ``repro-run-report/v1``
GET    ``/jobs/{id}/report/diff``       diff against ``?against=<job>``
GET    ``/jobs/{id}/knowledge``         ``repro-knowledge/v1`` sidecar
====== ================================ =====================================

The SSE stream tails the campaign's JSONL journal with
:class:`~repro.campaign.journal.JournalTail` — the same torn-tail-safe
reader the resume path uses — so a stream opened at any moment (before
the job starts, mid-run, after completion) replays every durable event
exactly once and then follows live appends.  Frames:

* ``job``      — the job document, sent first;
* ``journal``  — one journal event, in order;
* ``end``      — the final job document; the stream closes after it;
* ``error``    — the journal turned unreadable; the stream closes.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
from typing import Any, AsyncIterator, Dict, Optional, Tuple

from ..campaign import CampaignError, CampaignSpec, JournalTail
from ..circuit.bench import load_bench
from ..circuits.resolve import resolve_circuit
from ..clock import wall
from ..policy import FaultPolicy, PolicyError
from ..telemetry import Recorder, RunReport, TelemetryRecorder, diff_reports
from .http import EventStream, HttpServer, Request, Response, Router, ServiceError
from .jobs import JobManager, TERMINAL_STATES

#: Identifier reported by ``/healthz``.
SERVICE_SCHEMA = "repro-service/v1"


def _spec_from_request(data: Dict[str, Any]) -> CampaignSpec:
    """Parse the submitted spec; every validation error becomes a 400."""
    spec_data = data.get("spec", data)
    if not isinstance(spec_data, dict):
        raise ServiceError(400, "spec must be a JSON object")
    try:
        return CampaignSpec.from_dict(spec_data)
    except (CampaignError, TypeError) as exc:
        raise ServiceError(400, f"invalid spec: {exc}") from None


class ServiceApp:
    """Handlers bound to one :class:`JobManager`."""

    def __init__(self, manager: JobManager):
        self.manager = manager

    def router(self) -> Router:
        router = Router()
        router.add("GET", "/healthz", self.healthz)
        router.add("GET", "/stats", self.stats)
        router.add("POST", "/circuits", self.upload_circuit)
        router.add("POST", "/policies", self.upload_policy)
        router.add("POST", "/jobs", self.submit)
        router.add("GET", "/jobs", self.list_jobs)
        router.add("GET", "/jobs/{job_id}", self.job_detail)
        router.add("POST", "/jobs/{job_id}/cancel", self.cancel)
        router.add("POST", "/jobs/{job_id}/resume", self.resume)
        router.add("GET", "/jobs/{job_id}/events", self.events)
        router.add("GET", "/jobs/{job_id}/report", self.report)
        router.add("GET", "/jobs/{job_id}/report/diff", self.report_diff)
        router.add("GET", "/jobs/{job_id}/knowledge", self.knowledge)
        return router

    # -- service -------------------------------------------------------
    def healthz(self, request: Request) -> Response:
        return Response.json({"status": "ok", "schema": SERVICE_SCHEMA})

    def stats(self, request: Request) -> Response:
        return Response.json(self.manager.stats())

    # -- circuits ------------------------------------------------------
    def upload_circuit(self, request: Request) -> Response:
        """Store an uploaded ``.bench`` netlist under its content hash.

        The returned ``path`` is what a subsequent spec's ``circuits``
        entry should reference.  Content addressing makes uploads
        idempotent and keeps spec hashes stable: the same netlist always
        resolves to the same path.
        """
        data = request.json()
        source = data.get("bench")
        if not isinstance(source, str) or not source.strip():
            raise ServiceError(400, "upload needs a non-empty 'bench' field")
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]
        path = os.path.join(self.manager.uploads_dir, f"{digest}.bench")
        if not os.path.exists(path):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(source)
            try:
                circuit = load_bench(path)
            except Exception as exc:  # noqa: BLE001 — report parse errors
                os.unlink(path)  # reject bad uploads atomically
                raise ServiceError(
                    400, f"bench netlist does not parse: {exc}"
                ) from None
            self.manager.telemetry.count("service.circuits.uploaded")
        else:
            circuit = load_bench(path)
        return Response.json(
            {
                "path": path,
                "circuit": circuit.name,
                "inputs": len(circuit.inputs),
                "outputs": len(circuit.outputs),
                "flip_flops": len(circuit.flops),
            },
            status=201,
        )

    # -- policies ------------------------------------------------------
    def upload_policy(self, request: Request) -> Response:
        """Store an uploaded ``repro-policy/v1`` artifact, content-addressed.

        The returned ``path`` is what a subsequent spec's ``policy_file``
        should reference.  The document is validated before it is kept,
        so a spec naming a stored policy can never fail at warm-build
        time on a malformed artifact.
        """
        data = request.json()
        doc = data.get("policy", data)
        try:
            policy = FaultPolicy.from_dict(doc)
        except PolicyError as exc:
            raise ServiceError(400, f"invalid policy: {exc}") from None
        canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
        path = os.path.join(self.manager.policies_dir, f"{digest}.json")
        if not os.path.exists(path):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(canonical)
                handle.write("\n")
            self.manager.telemetry.count("service.policies.uploaded")
        return Response.json(
            {
                "path": path,
                "fingerprint": policy.fingerprint,
                "circuits": list(policy.circuits),
                "trained_rows": policy.trained_rows,
            },
            status=201,
        )

    # -- jobs ----------------------------------------------------------
    def submit(self, request: Request) -> Response:
        data = request.json()
        spec = _spec_from_request(data)
        for name in spec.circuits:
            try:
                resolve_circuit(name)
            except Exception as exc:  # noqa: BLE001 — bad circuit -> 400
                raise ServiceError(
                    400, f"cannot resolve circuit {name!r}: {exc}"
                ) from None
        if spec.policy_file:
            try:
                FaultPolicy.load(spec.policy_file)
            except PolicyError as exc:  # missing/invalid artifact -> 400
                raise ServiceError(
                    400, f"cannot load policy {spec.policy_file!r}: {exc}"
                ) from None
        job, created = self.manager.submit(
            spec,
            client=str(data.get("client", "anon")),
            priority=str(data.get("priority", "normal")),
        )
        payload = {"created": created, **job.to_dict()}
        return Response.json(payload, status=201 if created else 200)

    def list_jobs(self, request: Request) -> Response:
        jobs = [job.to_dict() for job in self.manager.jobs.values()]
        jobs.sort(key=lambda j: (j["submitted_ts"], j["job"]))
        return Response.json({"jobs": jobs})

    def job_detail(self, request: Request, job_id: str) -> Response:
        job = self.manager.get(job_id)
        payload = job.to_dict()
        payload["progress"] = self.manager.progress_of(job_id)
        return Response.json(payload)

    def cancel(self, request: Request, job_id: str) -> Response:
        return Response.json(self.manager.cancel(job_id).to_dict())

    def resume(self, request: Request, job_id: str) -> Response:
        return Response.json(self.manager.resume_job(job_id).to_dict())

    # -- results -------------------------------------------------------
    def report(self, request: Request, job_id: str) -> Response:
        return Response.json(self.manager.report_of(job_id))

    def report_diff(self, request: Request, job_id: str) -> Response:
        self.manager.get(job_id)  # unknown job is a 404, not a 400
        against = request.query.get("against")
        if not against:
            raise ServiceError(400, "diff needs ?against=<job id>")
        new = RunReport.from_dict(self.manager.report_of(job_id))
        old = RunReport.from_dict(self.manager.report_of(against))
        rows = diff_reports(new, old)
        return Response.json(
            {
                "schema": "repro-report-diff/v1",
                "new": {"job": job_id, "circuit": new.circuit},
                "old": {"job": against, "circuit": old.circuit},
                "fields": {
                    name: {"new": a, "old": b, "delta": delta}
                    for name, (a, b, delta) in rows.items()
                },
            }
        )

    def knowledge(self, request: Request, job_id: str) -> Response:
        path = self.manager.knowledge_of(job_id)
        with open(path, "rb") as handle:
            return Response(status=200, body=handle.read())

    # -- SSE -----------------------------------------------------------
    def events(self, request: Request, job_id: str) -> EventStream:
        job = self.manager.get(job_id)  # 404 before the stream starts
        return EventStream(self._follow(job))

    async def _follow(self, job) -> AsyncIterator[Tuple[str, Any]]:
        telemetry = self.manager.telemetry
        tail = JournalTail(job.journal_path)
        yield "job", job.to_dict()
        while True:
            try:
                events = tail.poll()
            except CampaignError as exc:
                yield "error", {"error": str(exc)}
                return
            for event in events:
                telemetry.count("service.stream.events")
                ts = event.get("ts")
                if isinstance(ts, (int, float)):
                    # journal timestamps are wall-clock: emission delay
                    # behind the fsynced write is the stream's lag
                    telemetry.observe(
                        "service.stream.lag_s", max(0.0, wall() - ts)
                    )
                yield "journal", event
            if not events and job.state in TERMINAL_STATES:
                yield "end", job.to_dict()
                return
            await asyncio.sleep(self.manager.poll_interval)


def build_app(manager: JobManager) -> Router:
    """The service's router; exposed for tests and embedders."""
    return ServiceApp(manager).router()


async def start_service(
    root: str,
    host: str = "127.0.0.1",
    port: int = 0,
    telemetry: Optional[Recorder] = None,
    **manager_kwargs: Any,
) -> Tuple[HttpServer, JobManager, Tuple[str, int]]:
    """Create, recover, and bind a service; returns it un-served.

    Callers drive the returned :class:`HttpServer` themselves (tests use
    the bound ephemeral port; :func:`serve` runs it forever).
    """
    recorder = telemetry if telemetry is not None else TelemetryRecorder()
    manager = JobManager(root, telemetry=recorder, **manager_kwargs)
    await manager.start()
    server = HttpServer(build_app(manager), telemetry=recorder)
    address = await server.start(host, port)
    return server, manager, address


async def serve(
    root: str,
    host: str = "127.0.0.1",
    port: int = 8437,
    telemetry: Optional[Recorder] = None,
    **manager_kwargs: Any,
) -> None:
    """Run the service until cancelled (the ``repro serve`` entry point)."""
    server, manager, (bound_host, bound_port) = await start_service(
        root, host=host, port=port, telemetry=telemetry, **manager_kwargs
    )
    print(
        f"repro service listening on http://{bound_host}:{bound_port} "
        f"(state root: {root})",
        flush=True,
    )
    try:
        await server.serve_forever()
    finally:
        await server.close()
        await manager.stop()
