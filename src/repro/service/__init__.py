"""ATPG-as-a-service: an asyncio HTTP front end for campaign runs.

``repro serve`` exposes the campaign runner over HTTP: idempotent job
submission keyed by spec hash, SSE progress streams that tail the JSONL
journal with the same torn-tail-tolerant reader the resume path uses,
report/knowledge retrieval and diffing, cooperative cancel/resume, and
restart recovery from the journal directory.  Stdlib only — ``asyncio``
streams plus a small routing layer in :mod:`repro.service.http`.

See ``docs/SERVICE.md`` for the API reference.
"""

from .app import SERVICE_SCHEMA, ServiceApp, build_app, serve, start_service
from .http import (
    EventStream,
    HttpServer,
    Request,
    Response,
    Router,
    ServiceError,
)
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    PRIORITIES,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobManager,
)

__all__ = [
    "CANCELLED",
    "DONE",
    "EventStream",
    "FAILED",
    "HttpServer",
    "Job",
    "JobManager",
    "PRIORITIES",
    "QUEUED",
    "RUNNING",
    "Request",
    "Response",
    "Router",
    "SERVICE_SCHEMA",
    "ServiceApp",
    "ServiceError",
    "TERMINAL_STATES",
    "build_app",
    "serve",
    "start_service",
]
