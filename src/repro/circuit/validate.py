"""Structural validation for circuits.

:func:`validate` collects every structural problem in one pass so callers
can report them all at once; :func:`check` raises on the first problem.
These checks run on every circuit the benchmark generators emit, and the
test suite runs them on all embedded circuits.
"""

from __future__ import annotations

from typing import List

from .gates import GateType, valid_arity
from .netlist import Circuit, CircuitError, connected_nets


def validate(circuit: Circuit) -> List[str]:
    """Return a list of structural problems (empty when the circuit is clean).

    Checks performed:

    * every gate input names a declared net;
    * gate arities are legal for their type;
    * every primary output names a declared net;
    * no net is both a primary input and gate-driven;
    * the combinational graph is acyclic;
    * every primary output transitively depends on something (not floating);
    * warns about nets that drive nothing and are not primary outputs.
    """
    problems: List[str] = []
    known = set(circuit.inputs) | set(circuit.gates)

    for g in circuit.gates.values():
        if not valid_arity(g.gtype, len(g.inputs)):
            problems.append(
                f"gate {g.output}: bad arity {len(g.inputs)} for {g.gtype.value}"
            )
        for src in g.inputs:
            if src not in known:
                problems.append(f"gate {g.output}: reads undeclared net {src}")
    for net in circuit.outputs:
        if net not in known:
            problems.append(f"primary output {net} is undeclared")
    for net in circuit.inputs:
        if net in circuit.gates:
            problems.append(f"net {net} is both primary input and gate-driven")

    if not problems:
        try:
            circuit.topo_order
        except CircuitError as exc:
            problems.append(str(exc))

    if not problems:
        sinks = set(circuit.outputs) | {
            g.output for g in circuit.gates.values() if g.gtype is GateType.DFF
        }
        used = connected_nets(circuit, sinks)
        inputs = set(circuit.inputs)
        for net in circuit.nets:
            if net in used or net in circuit.outputs:
                continue
            if net in inputs:
                continue  # an unused PI is part of the declared interface
            problems.append(f"net {net} drives nothing observable (dangling)")
    return problems


def check(circuit: Circuit) -> Circuit:
    """Raise :class:`CircuitError` on the first structural problem found.

    Returns the circuit unchanged when it is clean, so the call can be
    chained: ``sim = LogicSimulator(check(build_foo()))``.
    """
    problems = validate(circuit)
    if problems:
        raise CircuitError(f"{circuit.name}: " + "; ".join(problems[:5]))
    return circuit
