"""Gate primitives for the gate-level netlist model.

The gate set matches what the ISCAS89 ``.bench`` format can express (plus
constants, which simplify programmatic construction): simple boolean gates,
buffers/inverters, and D flip-flops.  Everything downstream — the logic
simulator, the fault simulator, and the ATPG engines — dispatches on
:class:`GateType`.
"""

from __future__ import annotations

import enum


class GateType(enum.Enum):
    """Kinds of netlist primitives.

    ``DFF`` is the single sequential element: a positive-edge D flip-flop
    whose output in time frame ``t + 1`` equals its input in frame ``t``.
    ``CONST0``/``CONST1`` are zero-input tie cells.
    """

    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    DFF = "DFF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    @property
    def is_sequential(self) -> bool:
        """True for the D flip-flop, false for combinational primitives."""
        return self is GateType.DFF

    @property
    def is_constant(self) -> bool:
        """True for the tie-cell primitives ``CONST0`` and ``CONST1``."""
        return self in (GateType.CONST0, GateType.CONST1)


#: Gate types that take exactly one input.
UNARY_TYPES = frozenset({GateType.NOT, GateType.BUF, GateType.DFF})

#: Gate types that take no inputs at all.
NULLARY_TYPES = frozenset({GateType.CONST0, GateType.CONST1})

#: Gate types that accept two or more inputs.
NARY_TYPES = frozenset(
    {GateType.AND, GateType.NAND, GateType.OR, GateType.NOR, GateType.XOR, GateType.XNOR}
)

#: Controlling input value per gate type (the value that alone determines the
#: output), or ``None`` when the gate has no controlling value (XOR family,
#: unary gates).  Used by the ATPG backtrace and by fault collapsing.
CONTROLLING_VALUE = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
    GateType.XOR: None,
    GateType.XNOR: None,
    GateType.NOT: None,
    GateType.BUF: None,
    GateType.DFF: None,
}

#: Output inversion parity per gate type: 1 when the gate inverts the
#: "natural" (AND/OR/identity) function of its inputs.
INVERSION = {
    GateType.AND: 0,
    GateType.NAND: 1,
    GateType.OR: 0,
    GateType.NOR: 1,
    GateType.XOR: 0,
    GateType.XNOR: 1,
    GateType.NOT: 1,
    GateType.BUF: 0,
    GateType.DFF: 0,
}


def valid_arity(gtype: GateType, n_inputs: int) -> bool:
    """Return whether ``n_inputs`` is a legal fan-in count for ``gtype``."""
    if gtype in NULLARY_TYPES:
        return n_inputs == 0
    if gtype in UNARY_TYPES:
        return n_inputs == 1
    return n_inputs >= 1


def eval_gate(gtype: GateType, values: "list[int]") -> int:
    """Evaluate a combinational gate over two-valued inputs.

    ``values`` holds 0/1 integers, one per input pin.  This scalar evaluator
    is the behavioural reference for the bit-parallel simulator; tests check
    the two against each other exhaustively.

    Raises:
        ValueError: for ``DFF`` (not a combinational function) or an arity
            mismatch.
    """
    if not valid_arity(gtype, len(values)):
        raise ValueError(f"{gtype.value} gate cannot take {len(values)} inputs")
    if gtype is GateType.DFF:
        raise ValueError("DFF has no combinational function")
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if gtype is GateType.BUF:
        return values[0]
    if gtype is GateType.NOT:
        return 1 - values[0]
    if gtype is GateType.AND:
        return int(all(values))
    if gtype is GateType.NAND:
        return int(not all(values))
    if gtype is GateType.OR:
        return int(any(values))
    if gtype is GateType.NOR:
        return int(not any(values))
    parity = sum(values) & 1
    if gtype is GateType.XOR:
        return parity
    if gtype is GateType.XNOR:
        return 1 - parity
    raise ValueError(f"unhandled gate type {gtype}")  # pragma: no cover
