"""Full-scan design-for-test transform.

GA-HITEC exists because sequential ATPG without scan is hard; the design
style that eventually made it a niche is *full scan*: every flip-flop is
replaced by a scan flip-flop (a mux in front of the D pin) and chained
into a shift register, making every state bit directly controllable and
observable through the chain.  This transform lets the repository quantify
that trade-off (see ``benchmarks/test_scan_comparison.py``): coverage and
effort for sequential ATPG on the original circuit versus combinational
ATPG on the scan version, against the extra ~3 gates per flip-flop.

The transform is purely structural:

* new primary inputs ``scan_enable`` and ``scan_in``;
* new primary output ``scan_out``;
* each DFF's D input becomes ``MUX(scan_enable, old_d, previous_stage)``,
  realised with AND/OR/NOT gates;
* the last flip-flop drives ``scan_out``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .gates import GateType
from .netlist import Circuit
from .validate import check

SCAN_ENABLE = "scan_enable"
SCAN_IN = "scan_in"
SCAN_OUT = "scan_out"


@dataclass(frozen=True)
class ScanChain:
    """Description of an inserted scan chain.

    Attributes:
        order: flip-flop output nets, scan-in end first.
        enable / input / output: the added port names.
    """

    order: "tuple[str, ...]"
    enable: str = SCAN_ENABLE
    input: str = SCAN_IN
    output: str = SCAN_OUT

    @property
    def length(self) -> int:
        return len(self.order)


def insert_scan(circuit: Circuit, name: str = "") -> "tuple[Circuit, ScanChain]":
    """Return a full-scan copy of ``circuit`` plus the chain description.

    Flip-flops are chained in declaration order.  Raises on circuits that
    already use the reserved scan port names, or that have no flip-flops.
    """
    flops = circuit.flops
    if not flops:
        raise ValueError(f"{circuit.name} has no flip-flops to scan")
    reserved = {SCAN_ENABLE, SCAN_IN, SCAN_OUT}
    if reserved & (set(circuit.nets) | set(circuit.outputs)):
        raise ValueError("circuit already uses reserved scan net names")

    scanned = Circuit(name or f"{circuit.name}_scan")
    scanned.inputs = list(circuit.inputs)
    scanned.outputs = list(circuit.outputs)
    scanned.gates = dict(circuit.gates)
    scanned.add_input(SCAN_ENABLE)
    scanned.add_input(SCAN_IN)
    scanned.add_gate("scan_nen", GateType.NOT, [SCAN_ENABLE])

    previous = SCAN_IN
    for ff in flops:
        old_gate = scanned.gates.pop(ff)
        d_net = old_gate.inputs[0]
        func = f"{ff}_scanf"   # functional path: enabled when scan_enable=0
        shift = f"{ff}_scans"  # shift path: enabled when scan_enable=1
        mux = f"{ff}_scanmux"
        scanned.add_gate(func, GateType.AND, [d_net, "scan_nen"])
        scanned.add_gate(shift, GateType.AND, [previous, SCAN_ENABLE])
        scanned.add_gate(mux, GateType.OR, [func, shift])
        scanned.add_gate(ff, GateType.DFF, [mux])
        previous = ff

    scanned.add_gate(SCAN_OUT, GateType.BUF, [previous])
    scanned.add_output(SCAN_OUT)
    # validate the inserted structure, but do not reject pre-existing
    # dangling logic the input circuit already carried
    from .validate import validate

    problems = [p for p in validate(scanned) if "dangling" not in p]
    if problems:
        from .netlist import CircuitError

        raise CircuitError(f"{scanned.name}: " + "; ".join(problems[:5]))
    return scanned, ScanChain(order=tuple(flops))


def scan_load_sequence(
    chain: ScanChain, state: Dict[str, int], n_pi: int, pi_fill: int = 0
) -> List[List[int]]:
    """Vectors that shift ``state`` into the chain (functional PIs idle).

    The returned vectors are in the *scanned* circuit's PI order, which is
    the original PIs followed by ``scan_enable`` and ``scan_in``.  After
    ``chain.length`` clocks the register named ``chain.order[i]`` holds
    ``state`` bit for that name (don't-care bits shift in as 0).

    Args:
        chain: the inserted chain.
        state: desired values keyed by flip-flop output net.
        n_pi: number of *original* primary inputs.
        pi_fill: value driven on the functional PIs while shifting.
    """
    # bit shifted first ends up in the LAST register of the chain
    bits = [state.get(ff, 0) for ff in chain.order]
    vectors = []
    for bit in reversed(bits):
        vectors.append([pi_fill] * n_pi + [1, bit])
    return vectors


def strip_scan(circuit: Circuit, chain: ScanChain) -> Circuit:
    """Best-effort inverse of :func:`insert_scan` (for round-trip tests)."""
    stripped = Circuit(circuit.name.removesuffix("_scan"))
    stripped.inputs = [
        n for n in circuit.inputs if n not in (chain.enable, chain.input)
    ]
    stripped.outputs = [n for n in circuit.outputs if n != chain.output]
    gates = dict(circuit.gates)
    gates.pop(chain.output, None)
    gates.pop("scan_nen", None)
    for ff in chain.order:
        mux = gates.pop(f"{ff}_scanmux")
        func = gates.pop(f"{ff}_scanf")
        gates.pop(f"{ff}_scans")
        d_net = func.inputs[0]
        ff_gate = gates.pop(ff)
        stripped_gate_inputs = (d_net,)
        from .netlist import Gate

        gates[ff] = Gate(ff, GateType.DFF, stripped_gate_inputs)
    stripped.gates = gates
    return check(stripped)
