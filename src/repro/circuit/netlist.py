"""Gate-level netlist model.

A :class:`Circuit` is a named collection of nets.  Every net is either a
primary input or the output of exactly one :class:`Gate`.  D flip-flops are
ordinary gates of type ``DFF``; for all structural analyses their outputs are
treated as *pseudo primary inputs* (PPIs) and their inputs as *pseudo primary
outputs* (PPOs), which makes the remaining graph acyclic.

The class computes and caches the derived structure every algorithm in the
package needs: fanout lists, a topological order of the combinational gates,
per-net levels, and the sequential depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .gates import GateType, NULLARY_TYPES, valid_arity


class CircuitError(ValueError):
    """Raised for structurally invalid circuits."""


@dataclass(frozen=True)
class Gate:
    """A single netlist primitive.

    Attributes:
        output: name of the net this gate drives.
        gtype: the primitive kind.
        inputs: names of the nets feeding each input pin, in pin order.
    """

    output: str
    gtype: GateType
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not valid_arity(self.gtype, len(self.inputs)):
            raise CircuitError(
                f"gate {self.output}: {self.gtype.value} cannot take "
                f"{len(self.inputs)} inputs"
            )


@dataclass
class Circuit:
    """A sequential gate-level circuit.

    Attributes:
        name: circuit name (e.g. ``"s27"``).
        inputs: primary input net names, in declaration order.
        outputs: primary output net names (each must name an existing net).
        gates: mapping from driven net name to its :class:`Gate`.
    """

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    gates: Dict[str, Gate] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> str:
        """Declare a primary input net and return its name."""
        if net in self.gates:
            raise CircuitError(f"net {net} is already driven by a gate")
        if net in self.inputs:
            raise CircuitError(f"duplicate primary input {net}")
        self.inputs.append(net)
        self._invalidate()
        return net

    def add_output(self, net: str) -> str:
        """Declare an existing net as a primary output and return its name.

        Raises:
            CircuitError: if the net is already a primary output (duplicate
                ports cannot round-trip through interchange formats).
        """
        if net in self.outputs:
            raise CircuitError(f"net {net} is already a primary output")
        self.outputs.append(net)
        self._invalidate()
        return net

    def add_gate(self, output: str, gtype: GateType, inputs: Sequence[str] = ()) -> str:
        """Add a gate driving ``output`` and return the output net name."""
        if output in self.gates:
            raise CircuitError(f"net {output} already has a driver")
        if output in self.inputs:
            raise CircuitError(f"net {output} is a primary input")
        self.gates[output] = Gate(output, gtype, tuple(inputs))
        self._invalidate()
        return output

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def nets(self) -> List[str]:
        """All net names: primary inputs first, then gate outputs."""
        return list(self.inputs) + list(self.gates)

    @property
    def flops(self) -> List[str]:
        """Output nets of all D flip-flops, in insertion order."""
        return [g.output for g in self.gates.values() if g.gtype is GateType.DFF]

    @property
    def num_gates(self) -> int:
        """Number of combinational gates (flip-flops excluded)."""
        return sum(1 for g in self.gates.values() if g.gtype is not GateType.DFF)

    def driver(self, net: str) -> Optional[Gate]:
        """Return the gate driving ``net``, or None for a primary input."""
        return self.gates.get(net)

    def is_input(self, net: str) -> bool:
        """True when ``net`` is a primary input."""
        return net in self._input_set()

    def _input_set(self) -> frozenset:
        if self._inputs_frozen is None:
            self._inputs_frozen = frozenset(self.inputs)
        return self._inputs_frozen

    # ------------------------------------------------------------------
    # derived structure (cached)
    # ------------------------------------------------------------------
    _fanout: Optional[Dict[str, List[Tuple[str, int]]]] = field(
        default=None, repr=False, compare=False
    )
    _topo: Optional[List[str]] = field(default=None, repr=False, compare=False)
    _levels: Optional[Dict[str, int]] = field(default=None, repr=False, compare=False)
    _seq_depth: Optional[int] = field(default=None, repr=False, compare=False)
    _inputs_frozen: Optional[frozenset] = field(default=None, repr=False, compare=False)

    def _invalidate(self) -> None:
        self._fanout = None
        self._topo = None
        self._levels = None
        self._seq_depth = None
        self._inputs_frozen = None

    @property
    def fanout(self) -> Dict[str, List[Tuple[str, int]]]:
        """Map net -> list of (sink gate output net, input pin index)."""
        if self._fanout is None:
            fo: Dict[str, List[Tuple[str, int]]] = {n: [] for n in self.nets}
            for g in self.gates.values():
                for pin, src in enumerate(g.inputs):
                    if src not in fo:
                        raise CircuitError(
                            f"gate {g.output} reads undeclared net {src}"
                        )
                    fo[src].append((g.output, pin))
            self._fanout = fo
        return self._fanout

    @property
    def topo_order(self) -> List[str]:
        """Topological order of *combinational* gate output nets.

        Flip-flop outputs and primary inputs are sources (not included);
        every combinational gate appears after all of its input drivers.

        Raises:
            CircuitError: if the combinational graph contains a cycle.
        """
        if self._topo is None:
            indeg: Dict[str, int] = {}
            for g in self.gates.values():
                if g.gtype is GateType.DFF:
                    continue
                n = 0
                for src in g.inputs:
                    d = self.gates.get(src)
                    if d is not None and d.gtype is not GateType.DFF:
                        n += 1
                indeg[g.output] = n
            ready = [n for n, d in indeg.items() if d == 0]
            fanout = self.fanout
            order: List[str] = []
            while ready:
                net = ready.pop()
                order.append(net)
                for sink, _pin in fanout[net]:
                    if sink in indeg and self.gates[sink].gtype is not GateType.DFF:
                        indeg[sink] -= 1
                        if indeg[sink] == 0:
                            ready.append(sink)
            if len(order) != len(indeg):
                raise CircuitError(f"{self.name}: combinational cycle detected")
            self._topo = order
        return self._topo

    @property
    def levels(self) -> Dict[str, int]:
        """Combinational level per net.

        Primary inputs, flip-flop outputs, and constants are level 0; each
        combinational gate is one more than its deepest input.
        """
        if self._levels is None:
            lv: Dict[str, int] = {n: 0 for n in self.inputs}
            for g in self.gates.values():
                if g.gtype is GateType.DFF or g.gtype in NULLARY_TYPES:
                    lv[g.output] = 0
            for net in self.topo_order:
                g = self.gates[net]
                if g.gtype in NULLARY_TYPES:
                    continue
                lv[net] = 1 + max(lv[src] for src in g.inputs)
            self._levels = lv
        return self._levels

    @property
    def max_level(self) -> int:
        """Deepest combinational level in the circuit."""
        return max(self.levels.values(), default=0)

    @property
    def sequential_depth(self) -> int:
        """Number of flip-flop stages on the longest acyclic register path.

        Computed on the flip-flop dependency graph (edge F1 -> F2 when F2's
        data input combinationally depends on F1's output), measuring the
        longest simple chain reachable from primary inputs; cycles contribute
        their entry depth.  This matches the conventional "sequential depth"
        used to size test sequences (the paper sizes GA sequences as a
        multiple of it).
        """
        if self._seq_depth is None:
            flops = self.flops
            if not flops:
                self._seq_depth = 0
                return 0
            deps = {f: self._flop_support(f) for f in flops}
            depth: Dict[str, int] = {}
            on_path: set = set()

            def visit(root: str) -> int:
                # iterative post-order DFS (deep register chains would
                # overflow Python's recursion limit)
                stack: List[Tuple[str, bool]] = [(root, False)]
                while stack:
                    node, processed = stack.pop()
                    if processed:
                        on_path.discard(node)
                        depth[node] = 1 + max(
                            (depth.get(p, 0) for p in deps[node]), default=0
                        )
                        continue
                    if node in depth or node in on_path:
                        continue  # done, or a cycle back-edge (entry depth rules)
                    on_path.add(node)
                    stack.append((node, True))
                    for p in deps[node]:
                        if p not in depth and p not in on_path:
                            stack.append((p, False))
                return depth[root]

            self._seq_depth = max(visit(f) for f in flops)
        return self._seq_depth

    def _flop_support(self, flop: str) -> List[str]:
        """Flip-flops whose outputs combinationally reach ``flop``'s D input."""
        d_input = self.gates[flop].inputs[0]
        seen = set()
        support: List[str] = []
        stack = [d_input]
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            g = self.gates.get(net)
            if g is None:
                continue
            if g.gtype is GateType.DFF:
                support.append(net)
            else:
                stack.extend(g.inputs)
        return support

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Interface and size statistics (PIs, POs, FFs, gates, depth)."""
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "flops": len(self.flops),
            "gates": self.num_gates,
            "levels": self.max_level,
            "sequential_depth": self.sequential_depth,
        }

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Return an independent structural copy of this circuit."""
        c = Circuit(name or self.name)
        c.inputs = list(self.inputs)
        c.outputs = list(self.outputs)
        c.gates = dict(self.gates)  # Gate is frozen, sharing is safe
        return c

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"Circuit({self.name!r}, pi={s['inputs']}, po={s['outputs']}, "
            f"ff={s['flops']}, gates={s['gates']})"
        )


def connected_nets(circuit: Circuit, roots: Iterable[str]) -> set:
    """Return every net in the transitive fan-in cone of ``roots``."""
    seen: set = set()
    stack = list(roots)
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        g = circuit.gates.get(net)
        if g is not None:
            stack.extend(g.inputs)
    return seen
