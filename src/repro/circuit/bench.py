"""Reader and writer for the ISCAS89 ``.bench`` netlist format.

The format, as used by the ISCAS89 sequential benchmark distribution:

.. code-block:: text

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G8 = AND(G14, G6)
    G14 = NOT(G0)

Gate names are case-insensitive in the wild; we accept any case and the
``DFF``/``AND``/``NAND``/``OR``/``NOR``/``XOR``/``XNOR``/``NOT``/``BUF``
(`BUFF` is a common spelling) primitives plus ``CONST0``/``CONST1``
extensions.  Definitions may appear in any order — forward references are
resolved after the whole file is read.
"""

from __future__ import annotations

import re
from typing import Iterable, List

from .gates import GateType
from .netlist import Circuit, CircuitError


class BenchParseError(CircuitError):
    """Raised when a ``.bench`` description cannot be parsed."""

    def __init__(self, message: str, line_no: int = 0):
        self.line_no = line_no
        super().__init__(f"line {line_no}: {message}" if line_no else message)


_GATE_ALIASES = {
    "BUFF": GateType.BUF,
    "BUF": GateType.BUF,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "DFF": GateType.DFF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^\s()]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^\s=]+)\s*=\s*([A-Za-z0-9_]+)\s*\(\s*(.*?)\s*\)$")


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse a ``.bench`` netlist from a string into a :class:`Circuit`.

    Args:
        text: the full file contents.
        name: name to give the resulting circuit.

    Raises:
        BenchParseError: on malformed lines, unknown gate types, duplicate
            drivers, or dangling net references.
    """
    circuit = Circuit(name)
    pending_outputs: List[str] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            kind, net = decl.group(1).upper(), decl.group(2)
            try:
                if kind == "INPUT":
                    circuit.add_input(net)
                else:
                    pending_outputs.append(net)
            except CircuitError as exc:
                raise BenchParseError(str(exc), line_no) from exc
            continue
        gate = _GATE_RE.match(line)
        if gate:
            out, type_name, arg_text = gate.groups()
            gtype = _GATE_ALIASES.get(type_name.upper())
            if gtype is None:
                raise BenchParseError(f"unknown gate type {type_name!r}", line_no)
            args = [a.strip() for a in arg_text.split(",") if a.strip()] if arg_text else []
            try:
                circuit.add_gate(out, gtype, args)
            except CircuitError as exc:
                raise BenchParseError(str(exc), line_no) from exc
            continue
        raise BenchParseError(f"unrecognised line {raw.strip()!r}", line_no)

    known = set(circuit.inputs) | set(circuit.gates)
    for net in pending_outputs:
        if net not in known:
            raise BenchParseError(f"OUTPUT({net}) names an undeclared net")
        circuit.add_output(net)
    for g in circuit.gates.values():
        for src in g.inputs:
            if src not in known:
                raise BenchParseError(
                    f"gate {g.output} reads undeclared net {src}"
                )
    return circuit


def load_bench(path: str, name: str = "") -> Circuit:
    """Read a ``.bench`` file from disk.

    The circuit name defaults to the file stem.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if not name:
        stem = path.rsplit("/", 1)[-1]
        name = stem[:-6] if stem.endswith(".bench") else stem
    return parse_bench(text, name)


def write_bench(circuit: Circuit) -> str:
    """Render a circuit back to ``.bench`` text.

    The output round-trips through :func:`parse_bench` to an identical
    structure (same nets, same gate types, same pin order).
    """
    lines: List[str] = [f"# {circuit.name}"]
    lines += [f"INPUT({net})" for net in circuit.inputs]
    lines += [f"OUTPUT({net})" for net in circuit.outputs]
    for g in circuit.gates.values():
        if g.gtype is GateType.DFF:
            lines.append(f"{g.output} = DFF({g.inputs[0]})")
    for g in circuit.gates.values():
        if g.gtype is GateType.DFF:
            continue
        args = ", ".join(g.inputs)
        lines.append(f"{g.output} = {g.gtype.value}({args})")
    return "\n".join(lines) + "\n"


def save_bench(circuit: Circuit, path: str) -> None:
    """Write a circuit to a ``.bench`` file on disk."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(write_bench(circuit))
