"""Structural netlist transforms.

Currently: :func:`sweep`, the classic dead-logic sweep — iteratively
removes gates whose outputs neither reach a primary output nor a
flip-flop that itself matters.  The RTL builder runs it after elaboration
(word-level operators like adders produce carry chains whose top carry is
often unused), and it is part of the public API for user netlists.
"""

from __future__ import annotations

from typing import Set

from .gates import GateType
from .netlist import Circuit


def live_nets(circuit: Circuit) -> Set[str]:
    """Nets transitively needed by the primary outputs.

    Flip-flops are kept only when their outputs feed something live
    (the traversal naturally re-visits through DFF data inputs).
    """
    seen: Set[str] = set()
    stack = list(circuit.outputs)
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        gate = circuit.gates.get(net)
        if gate is not None:
            stack.extend(gate.inputs)
    return seen


def sweep(circuit: Circuit) -> Circuit:
    """Return a copy of ``circuit`` without dead gates.

    Primary inputs are all kept (the interface is part of the contract),
    as is every gate in the fan-in cone of some primary output.
    """
    keep = live_nets(circuit)
    swept = Circuit(circuit.name)
    swept.inputs = list(circuit.inputs)
    swept.outputs = list(circuit.outputs)
    swept.gates = {
        net: gate for net, gate in circuit.gates.items() if net in keep
    }
    return swept
