"""Structural Verilog interchange (gate-level subset).

Writes and reads the gate-level Verilog dialect EDA tools exchange:
one module, ``input``/``output``/``wire`` declarations, primitive gate
instantiations (``and``, ``nand``, ``or``, ``nor``, ``xor``, ``xnor``,
``not``, ``buf``) with the output as the first terminal, and D flip-flops
as instances of a ``dff`` cell with ``.q``/``.d`` named ports:

.. code-block:: verilog

    module s27 (G0, G1, G2, G3, G17);
      input G0, G1, G2, G3;
      output G17;
      wire G5, ...;
      dff ff_G5 (.q(G5), .d(G10));
      not u_G14 (G14, G0);
      and u_G8 (G8, G14, G6);
    endmodule

Identifiers that are not valid Verilog names are escaped on write
(``\\name ``) and unescaped on read.  The subset is exactly what
:class:`~repro.circuit.netlist.Circuit` can express, so write → read is an
identity on structure.
"""

from __future__ import annotations

import re
from typing import Dict, List

from .gates import GateType
from .netlist import Circuit, CircuitError

_PRIMITIVES = {
    GateType.AND: "and",
    GateType.NAND: "nand",
    GateType.OR: "or",
    GateType.NOR: "nor",
    GateType.XOR: "xor",
    GateType.XNOR: "xnor",
    GateType.NOT: "not",
    GateType.BUF: "buf",
}
_BY_PRIMITIVE = {v: k for k, v in _PRIMITIVES.items()}

_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")
_KEYWORDS = {"module", "endmodule", "input", "output", "wire", "dff",
             "supply0", "supply1"} | set(_BY_PRIMITIVE)


class VerilogError(CircuitError):
    """Raised when structural Verilog cannot be parsed."""


def _escape(name: str) -> str:
    if _IDENT_RE.match(name) and name not in _KEYWORDS:
        return name
    return f"\\{name} "


def _unescape(token: str) -> str:
    return token[1:] if token.startswith("\\") else token


def write_verilog(circuit: Circuit) -> str:
    """Render a circuit as structural Verilog."""
    ports = [_escape(n) for n in circuit.inputs]
    ports += [_escape(n) for n in dict.fromkeys(circuit.outputs)]
    lines = [f"module {_escape(circuit.name or 'top')} ({', '.join(ports)});"]
    if circuit.inputs:
        lines.append(
            "  input " + ", ".join(_escape(n) for n in circuit.inputs) + ";"
        )
    outs = list(dict.fromkeys(circuit.outputs))
    if outs:
        lines.append("  output " + ", ".join(_escape(n) for n in outs) + ";")
    wires = [n for n in circuit.gates if n not in set(outs)]
    if wires:
        lines.append("  wire " + ", ".join(_escape(n) for n in wires) + ";")
    lines.append("")
    counter = 0
    for gate in circuit.gates.values():
        counter += 1
        out = _escape(gate.output)
        if gate.gtype is GateType.DFF:
            lines.append(
                f"  dff ff_{counter} (.q({out}), .d({_escape(gate.inputs[0])}));"
            )
        elif gate.gtype is GateType.CONST0:
            lines.append(f"  supply0 c_{counter} ({out});")
        elif gate.gtype is GateType.CONST1:
            lines.append(f"  supply1 c_{counter} ({out});")
        else:
            prim = _PRIMITIVES[gate.gtype]
            terms = ", ".join([out] + [_escape(i) for i in gate.inputs])
            lines.append(f"  {prim} u_{counter} ({terms});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_TOKEN_RE = re.compile(r"\\[^\s]+\s|[A-Za-z_$][A-Za-z0-9_$]*|[(),.;]")


def _tokenize(text: str) -> List[str]:
    text = re.sub(r"//[^\n]*", " ", text)
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    return [t.strip() if not t.startswith("\\") else t.rstrip()
            for t in _TOKEN_RE.findall(text)]


def parse_verilog(text: str, name: str = "") -> Circuit:
    """Parse the structural subset back into a :class:`Circuit`."""
    tokens = _tokenize(text)
    pos = 0

    def peek() -> str:
        return tokens[pos] if pos < len(tokens) else ""

    def take(expected: str = "") -> str:
        nonlocal pos
        if pos >= len(tokens):
            raise VerilogError("unexpected end of input")
        token = tokens[pos]
        pos += 1
        if expected and token != expected:
            raise VerilogError(f"expected {expected!r}, got {token!r}")
        return token

    def name_list() -> List[str]:
        names = [_unescape(take())]
        while peek() == ",":
            take(",")
            names.append(_unescape(take()))
        take(";")
        return names

    take("module")
    module_name = _unescape(take())
    circuit = Circuit(name or module_name)
    if peek() == "(":
        take("(")
        while peek() != ")":
            take()
        take(")")
    take(";")

    outputs: List[str] = []
    while peek() and peek() != "endmodule":
        token = take()
        if token == "input":
            for net in name_list():
                circuit.add_input(net)
        elif token == "output":
            outputs.extend(name_list())
        elif token == "wire":
            name_list()  # declarations carry no structure
        elif token in _BY_PRIMITIVE:
            take()  # instance name
            take("(")
            terms = [_unescape(take())]
            while peek() == ",":
                take(",")
                terms.append(_unescape(take()))
            take(")")
            take(";")
            circuit.add_gate(terms[0], _BY_PRIMITIVE[token], terms[1:])
        elif token == "dff":
            take()  # instance name
            take("(")
            port_map: Dict[str, str] = {}
            while True:
                take(".")
                port = take()
                take("(")
                port_map[port] = _unescape(take())
                take(")")
                if peek() != ",":
                    break
                take(",")
            take(")")
            take(";")
            if "q" not in port_map or "d" not in port_map:
                raise VerilogError("dff instance needs .q and .d ports")
            circuit.add_gate(port_map["q"], GateType.DFF, [port_map["d"]])
        elif token in ("supply0", "supply1"):
            take()  # instance name
            take("(")
            net = _unescape(take())
            take(")")
            take(";")
            gtype = GateType.CONST0 if token == "supply0" else GateType.CONST1
            circuit.add_gate(net, gtype, [])
        else:
            raise VerilogError(f"unsupported construct {token!r}")
    take("endmodule")

    known = set(circuit.inputs) | set(circuit.gates)
    for net in outputs:
        if net not in known:
            raise VerilogError(f"output {net} is undeclared")
        circuit.add_output(net)
    return circuit


def save_verilog(circuit: Circuit, path: str) -> None:
    """Write a circuit to a ``.v`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_verilog(circuit))


def load_verilog(path: str, name: str = "") -> Circuit:
    """Read a structural ``.v`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_verilog(handle.read(), name)
