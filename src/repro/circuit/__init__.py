"""Gate-level netlist substrate: circuit model, bench I/O, validation."""

from .gates import GateType, eval_gate, valid_arity, CONTROLLING_VALUE, INVERSION
from .netlist import Circuit, CircuitError, Gate, connected_nets
from .bench import (
    BenchParseError,
    load_bench,
    parse_bench,
    save_bench,
    write_bench,
)
from .scan import ScanChain, insert_scan, scan_load_sequence, strip_scan
from .transform import live_nets, sweep
from .verilog import (
    VerilogError,
    load_verilog,
    parse_verilog,
    save_verilog,
    write_verilog,
)
from .validate import check, validate

__all__ = [
    "BenchParseError",
    "Circuit",
    "CircuitError",
    "CONTROLLING_VALUE",
    "Gate",
    "GateType",
    "INVERSION",
    "ScanChain",
    "VerilogError",
    "check",
    "connected_nets",
    "eval_gate",
    "live_nets",
    "insert_scan",
    "load_bench",
    "load_verilog",
    "parse_bench",
    "parse_verilog",
    "save_bench",
    "save_verilog",
    "scan_load_sequence",
    "strip_scan",
    "sweep",
    "valid_arity",
    "validate",
    "write_bench",
    "write_verilog",
]
