"""SCOAP-style testability measures used to guide PODEM.

Combinational 0/1-controllabilities (CC0/CC1) and observabilities (CO) in
the classic Goldstein formulation, with two sequential adaptations:

* flip-flop outputs (pseudo primary inputs) get a fixed, deliberately high
  controllability ``ppi_cost``, biasing the backtrace toward primary inputs
  so deterministic search leaves as few state requirements as possible for
  the justifier;
* flip-flop D inputs (pseudo primary outputs) get observability
  ``ppo_cost``, biasing D-drive toward real primary outputs.

These are heuristics — any finite values keep PODEM correct; the numbers
only shape the search order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..circuit.gates import GateType
from ..simulation.compiled import CompiledCircuit

#: A large-but-finite stand-in for "very hard"; avoids float('inf') sums.
HARD = 1 << 20


@dataclass
class Testability:
    """Per-net controllability/observability estimates (index-addressed).

    Attributes:
        cc0: cost of setting each net to 0.
        cc1: cost of setting each net to 1.
        co: cost of observing each net at a primary output.
    """

    cc0: List[int]
    cc1: List[int]
    co: List[int]

    def cc(self, idx: int, value: int) -> int:
        """Controllability of ``value`` (0 or 1) on net ``idx``."""
        return self.cc1[idx] if value == 1 else self.cc0[idx]


def compute_testability(
    cc: CompiledCircuit, ppi_cost: int = 50, ppo_cost: int = 30
) -> Testability:
    """Compute SCOAP-lite measures for a compiled circuit.

    Args:
        cc: the compiled circuit.
        ppi_cost: controllability charged for using a flip-flop output.
        ppo_cost: observability charged for driving a fault effect into a
            flip-flop D input instead of a primary output.
    """
    n = cc.num_nets
    cc0 = [HARD] * n
    cc1 = [HARD] * n
    for i in cc.pi:
        cc0[i] = cc1[i] = 1
    for i in cc.ff_out:
        cc0[i] = cc1[i] = ppi_cost

    for gate in cc.gates:  # already in level order
        ins0 = [cc0[i] for i in gate.fanin]
        ins1 = [cc1[i] for i in gate.fanin]
        t = gate.gtype
        if t is GateType.CONST0:
            c0, c1 = 0, HARD
        elif t is GateType.CONST1:
            c0, c1 = HARD, 0
        elif t is GateType.BUF:
            c0, c1 = ins0[0] + 1, ins1[0] + 1
        elif t is GateType.NOT:
            c0, c1 = ins1[0] + 1, ins0[0] + 1
        elif t is GateType.AND:
            c0, c1 = min(ins0) + 1, sum(ins1) + 1
        elif t is GateType.NAND:
            c0, c1 = sum(ins1) + 1, min(ins0) + 1
        elif t is GateType.OR:
            c0, c1 = sum(ins0) + 1, min(ins1) + 1
        elif t is GateType.NOR:
            c0, c1 = min(ins1) + 1, sum(ins0) + 1
        elif t in (GateType.XOR, GateType.XNOR):
            # two-way parity fold: cheapest way to reach even/odd parity
            c_even, c_odd = ins0[0], ins1[0]
            for a0, a1 in zip(ins0[1:], ins1[1:]):
                c_even, c_odd = min(c_even + a0, c_odd + a1), min(
                    c_even + a1, c_odd + a0
                )
            if t is GateType.XOR:
                c0, c1 = c_even + 1, c_odd + 1
            else:
                c0, c1 = c_odd + 1, c_even + 1
        else:  # pragma: no cover - DFFs never appear in cc.gates
            raise ValueError(f"unexpected gate type {t}")
        cc0[gate.out] = min(cc0[gate.out], c0, HARD)
        cc1[gate.out] = min(cc1[gate.out], c1, HARD)

    co = [HARD] * n
    for i in cc.po:
        co[i] = 0
    for i in cc.ff_in:
        co[i] = min(co[i], ppo_cost)
    for gate in reversed(cc.gates):
        out_co = co[gate.out]
        if out_co >= HARD:
            continue  # unobservable output: inputs gain nothing through it
        t = gate.gtype
        for pin, src in enumerate(gate.fanin):
            if t in (GateType.BUF, GateType.NOT):
                cost = out_co + 1
            elif t in (GateType.AND, GateType.NAND):
                cost = out_co + 1 + sum(
                    cc1[s] for j, s in enumerate(gate.fanin) if j != pin
                )
            elif t in (GateType.OR, GateType.NOR):
                cost = out_co + 1 + sum(
                    cc0[s] for j, s in enumerate(gate.fanin) if j != pin
                )
            elif t in (GateType.XOR, GateType.XNOR):
                cost = out_co + 1 + sum(
                    min(cc0[s], cc1[s])
                    for j, s in enumerate(gate.fanin)
                    if j != pin
                )
            else:  # pragma: no cover
                raise ValueError(f"unexpected gate type {t}")
            co[src] = min(co[src], cost)

    return Testability(cc0=cc0, cc1=cc1, co=co)
