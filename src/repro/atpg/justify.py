"""Deterministic state justification by reverse time processing.

Given a required flip-flop state, search backwards one time frame at a
time: each step runs a fault-free JUSTIFY-mode PODEM that finds primary
input values (plus, when unavoidable, previous-frame state requirements)
making the flip-flop D inputs produce the required values.  The recursion
bottoms out when a step needs **no** state requirement at all — the
assembled vector sequence then justifies the state from the all-unknown
(power-up) state, which is exactly HITEC's notion of justification.

Alternative single-step solutions are enumerated on demand from the PODEM
engine, so the search backtracks across frames like HITEC's reverse time
processing.  Exhaustion is tracked precisely enough to distinguish "proven
unjustifiable within the depth bound" from "gave up on a budget limit",
and precise enough to feed the cross-fault
:class:`~repro.knowledge.StateKnowledge` store: only genuine proofs are
recorded (budget aborts and enumeration truncation never are), and known
facts short-circuit both the top-level query and every sub-requirement the
recursion produces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..knowledge import StateKnowledge
from ..simulation.compiled import CompiledCircuit
from .constraints import InputConstraints
from .podem import Limits, PodemEngine, SearchStatus
from .scoap import Testability, compute_testability


class JustifyStatus(enum.Enum):
    """How a reverse-time justification attempt ended."""

    JUSTIFIED = "justified"    #: sequence found (valid from the all-X state)
    EXHAUSTED = "exhausted"    #: proven impossible within the depth bound
    LIMIT = "limit"            #: backtrack/time budget hit
    BOUNDED = "bounded"        #: failed, but the depth bound was binding


@dataclass
class JustifyResult:
    """Outcome of :func:`justify_state`.

    Attributes:
        status: how the search ended.
        vectors: justification sequence (earliest vector first), with X for
            unconstrained inputs; empty when the requirement was empty.
        frames: number of reverse frames used.
    """

    status: JustifyStatus
    vectors: List[List[int]] = field(default_factory=list)

    @property
    def frames(self) -> int:
        return len(self.vectors)

    @property
    def success(self) -> bool:
        return self.status is JustifyStatus.JUSTIFIED


def justify_state(
    cc: CompiledCircuit,
    required: Dict[str, int],
    max_depth: int,
    limits: Limits,
    testability: Optional[Testability] = None,
    solutions_per_step: int = 8,
    constraints: "Optional[InputConstraints]" = None,
    knowledge: "Optional[StateKnowledge]" = None,
) -> JustifyResult:
    """Find an input sequence that justifies ``required`` from the all-X state.

    Args:
        cc: compiled circuit.
        required: cared flip-flop values {ff net name: 0/1}.
        max_depth: maximum number of reverse time frames to chain.
        limits: shared search budget (backtracks count across all steps).
        testability: SCOAP measures (computed once if omitted).
        solutions_per_step: alternative single-frame solutions to try before
            giving up on a partial requirement.
        constraints: environment-imposed input constraints applied to every
            justification vector.
        knowledge: optional cross-fault store; known-justified states
            short-circuit the search (top level and every sub-requirement),
            known-unjustifiable states prune it, and proofs produced here
            are recorded back.  The caller is responsible for passing a
            store whose constraint fingerprint matches ``constraints``.
    """
    meas = testability or compute_testability(cc)
    # Three distinct failure bits so knowledge recording stays sound:
    # ``depth`` (the frame bound bit) yields a depth-limited proof,
    # ``truncated`` (solutions_per_step cut the enumeration) and
    # ``limit`` (backtrack/time budget) prove nothing.
    flags = {"limit": False, "depth": False, "truncated": False}

    if knowledge is not None and required:
        known = knowledge.lookup_justified(required)
        if known is not None:
            return JustifyResult(JustifyStatus.JUSTIFIED, known)
        verdict = knowledge.lookup_unjustifiable(required, max_depth)
        if verdict == "exhausted":
            return JustifyResult(JustifyStatus.EXHAUSTED)
        if verdict == "bounded":
            return JustifyResult(JustifyStatus.BOUNDED)

    def dfs(
        req: Dict[str, int], depth: int, seen: FrozenSet[FrozenSet]
    ) -> Optional[List[List[int]]]:
        if not req:
            return []
        if knowledge is not None:
            known = knowledge.lookup_justified(req)
            if known is not None:
                return known
            verdict = knowledge.lookup_unjustifiable(req, depth)
            if verdict == "exhausted":
                return None  # absolute fact: prune without raising a flag
            if verdict == "bounded":
                flags["depth"] = True
                return None
        if depth <= 0:
            flags["depth"] = True
            return None
        key = frozenset(req.items())
        if key in seen:
            return None  # state-requirement loop: cannot make progress
        engine = PodemEngine(cc, targets=req, testability=meas,
                             constraints=constraints, knowledge=knowledge)
        tried = 0
        for sol in engine.solutions(limits):
            tried += 1
            prefix = dfs(sol.required_state, depth - 1, seen | {key})
            if prefix is not None:
                if knowledge is not None and sol.required_state:
                    knowledge.record_justified(sol.required_state, prefix)
                return prefix + [sol.vectors[0]]
            if tried >= solutions_per_step:
                flags["truncated"] = True
                break
        if engine.status is SearchStatus.LIMIT:
            flags["limit"] = True
        return None

    vectors = dfs(dict(required), max_depth, frozenset())
    if vectors is not None:
        if knowledge is not None:
            knowledge.record_justified(required, vectors)
        return JustifyResult(JustifyStatus.JUSTIFIED, vectors)
    if flags["limit"]:
        return JustifyResult(JustifyStatus.LIMIT)
    if flags["depth"] or flags["truncated"]:
        # A pure depth-bound failure is a proof valid up to max_depth;
        # enumeration truncation is a budget effect and proves nothing.
        if knowledge is not None and not flags["truncated"]:
            knowledge.record_unjustifiable(required, max_depth)
        return JustifyResult(JustifyStatus.BOUNDED)
    if knowledge is not None:
        knowledge.record_unjustifiable(required, None)
    return JustifyResult(JustifyStatus.EXHAUSTED)
