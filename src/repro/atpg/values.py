"""Nine-valued ATPG algebra on top of the packed two-slot encoding.

The deterministic engines simulate the good and faulty circuits together in
one :mod:`packed <repro.simulation.encoding>` word pair of width 2: slot 0
carries the good-circuit value, slot 1 the faulty-circuit value.  Each slot
is three-valued, giving Muth's nine-valued algebra for free; the classic
five D-algebra values are the subset with equal-or-known slots:

========  ===========  ============
name      good slot    faulty slot
========  ===========  ============
``ZERO``  0            0
``ONE``   1            1
``D``     1            0
``DBAR``  0            1
``XX``    X            X
========  ===========  ============

All helpers below operate on ``(p1, p0)`` pairs masked to width 2.
"""

from __future__ import annotations

from typing import Tuple

from ..simulation.encoding import PackedValue, X, get_slot, pack

#: Word mask for the two-slot (good, faulty) packing.
MASK2 = 0b11

ZERO: PackedValue = pack([0, 0])
ONE: PackedValue = pack([1, 1])
D: PackedValue = pack([1, 0])
DBAR: PackedValue = pack([0, 1])
XX: PackedValue = pack([X, X])


def make9(good: int, faulty: int) -> PackedValue:
    """Pack a (good, faulty) scalar pair into a two-slot value."""
    return pack([good, faulty])


def good_of(v: PackedValue) -> int:
    """Good-circuit scalar component (0, 1, or X)."""
    return get_slot(v, 0)


def faulty_of(v: PackedValue) -> int:
    """Faulty-circuit scalar component (0, 1, or X)."""
    return get_slot(v, 1)


def is_d(v: PackedValue) -> bool:
    """True when the value is D or D̄ (both slots known and different)."""
    g, f = good_of(v), faulty_of(v)
    return g != f and g != X and f != X


def is_known(v: PackedValue) -> bool:
    """True when neither slot is X."""
    return good_of(v) != X and faulty_of(v) != X


def has_x(v: PackedValue) -> bool:
    """True when either slot is X."""
    return good_of(v) == X or faulty_of(v) == X


def show9(v: PackedValue) -> str:
    """Human-readable name: 0, 1, D, D', X, or a good/faulty pair."""
    g, f = good_of(v), faulty_of(v)
    if g == f:
        return "X" if g == X else str(g)
    if (g, f) == (1, 0):
        return "D"
    if (g, f) == (0, 1):
        return "D'"
    names = {0: "0", 1: "1", X: "x"}
    return f"{names[g]}/{names[f]}"
