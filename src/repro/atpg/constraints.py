"""Input constraints on generated test sequences (Section VI).

The paper closes by arguing the hybrid's key practical advantage: *"Real
circuits may impose constraints on the test generator which are difficult
to satisfy with deterministic approaches … processing is restricted to the
forward direction during state justification.  Thus, constraints are more
easily imposed on the test sequences generated."*

Two constraint kinds cover the common cases:

* **fixed pins** — a primary input tied to a constant for every vector of
  every test (test-mode enables, disabled resets, bus-grant lines);
* **hold pins** — a primary input that may take either value, but must
  keep that value for the whole duration of one test sequence (slow
  configuration straps).

The GA justifier enforces both *by construction* when decoding candidate
sequences — the forward-only property the paper highlights.  The
deterministic engines pre-assign fixed pins in every time frame; hold
pins are linked by mirroring any decision on one frame's pin into every
other frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence

from ..circuit.netlist import Circuit


@dataclass(frozen=True)
class InputConstraints:
    """Environment-imposed restrictions on primary-input sequences.

    Attributes:
        fixed: PI name -> constant value (0/1) applied to every vector.
        hold: PI names whose value is free but must stay constant across
            each generated sequence.
    """

    fixed: Mapping[str, int] = field(default_factory=dict)
    hold: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "fixed", dict(self.fixed))
        object.__setattr__(self, "hold", frozenset(self.hold))
        for name, value in self.fixed.items():
            if value not in (0, 1):
                raise ValueError(f"fixed pin {name} must be 0 or 1")
        overlap = set(self.fixed) & set(self.hold)
        if overlap:
            raise ValueError(f"pins both fixed and held: {sorted(overlap)}")

    @property
    def is_trivial(self) -> bool:
        """True when no constraint is imposed."""
        return not self.fixed and not self.hold

    def validate(self, circuit: Circuit) -> None:
        """Raise if a constrained pin is not a primary input."""
        pis = set(circuit.inputs)
        for name in list(self.fixed) + list(self.hold):
            if name not in pis:
                raise ValueError(f"{name} is not a primary input of "
                                 f"{circuit.name}")

    # ------------------------------------------------------------------
    def satisfied_by(self, circuit: Circuit,
                     vectors: Sequence[Sequence[int]]) -> bool:
        """Check a scalar vector sequence against the constraints."""
        if not vectors:
            return True
        index = {net: i for i, net in enumerate(circuit.inputs)}
        for name, value in self.fixed.items():
            i = index[name]
            if any(vec[i] not in (value, 2) for vec in vectors):
                return False
        for name in self.hold:
            i = index[name]
            seen = {vec[i] for vec in vectors if vec[i] != 2}
            if len(seen) > 1:
                return False
        return True

    def apply_to_vectors(
        self, circuit: Circuit, vectors: List[List[int]],
        hold_values: Mapping[str, int] = (),
    ) -> List[List[int]]:
        """Force the constraints onto a sequence (in place; returned).

        Fixed pins are overwritten with their constants; hold pins take
        ``hold_values`` (or the first definite value seen, or 0).
        """
        if not vectors:
            return vectors
        index = {net: i for i, net in enumerate(circuit.inputs)}
        for name, value in self.fixed.items():
            i = index[name]
            for vec in vectors:
                vec[i] = value
        hold_values = dict(hold_values)
        for name in self.hold:
            i = index[name]
            if name not in hold_values:
                definite = [vec[i] for vec in vectors if vec[i] in (0, 1)]
                hold_values[name] = definite[0] if definite else 0
            for vec in vectors:
                vec[i] = hold_values[name]
        return vectors


#: No constraints at all (the default everywhere).
UNCONSTRAINED = InputConstraints()
