"""PODEM branch-and-bound search over the unrolled time-frame model.

One engine serves both deterministic phases of the hybrid test generator:

* ``DETECT`` mode — excite the target fault in frame 0 and drive a D/D̄ to
  a primary output of any frame in the window (HITEC's fault excitation
  and propagation phases);
* ``JUSTIFY`` mode — fault-free, single frame: find primary-input values
  (and, where unavoidable, previous-state requirements) that set the
  flip-flop D inputs to a required next state (one reverse-time step of
  HITEC's deterministic state justification).

Decisions are made only on *leaves* (primary inputs of any frame, pseudo
primary inputs of frame 0), so value conflicts are impossible and
backtracking is a pure undo — classic PODEM.  The search yields successive
solutions on demand, which the sequential engines use to try alternative
propagation paths when a required state proves unjustifiable (the
"backtracks are made in the fault propagation phase" loop of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..circuit.gates import CONTROLLING_VALUE, INVERSION, GateType
from ..clock import monotonic
from ..faults.model import Fault
from ..knowledge import StateKnowledge
from ..simulation.compiled import CompiledCircuit
from ..simulation.encoding import X
from .constraints import InputConstraints
from .scoap import Testability, compute_testability
from .unrolled import Leaf, UndoRecord, UnrolledModel
from .values import good_of, has_x, is_d


class SearchStatus(enum.Enum):
    """How a PODEM search ended."""

    SUCCESS = "success"          #: goal reached; solution extracted
    EXHAUSTED = "exhausted"      #: full search space covered, no solution
    LIMIT = "limit"              #: backtrack or time limit hit
    WINDOW = "window"            #: failed, but the frame window was binding


@dataclass
class Limits:
    """Search budget.

    Attributes:
        max_backtracks: decision reversals before giving up.
        deadline: absolute ``clock()`` instant to stop at, or None.
        clock: time source the deadline is measured against; injectable so
            timeout paths can be exercised deterministically in tests and
            campaign workers can enforce budgets against a shared clock.
    """

    max_backtracks: int = 1000
    deadline: Optional[float] = None
    clock: Callable[[], float] = monotonic

    def expired(self) -> bool:
        """True when the wall-clock deadline has passed."""
        return self.deadline is not None and self.clock() >= self.deadline


@dataclass
class Solution:
    """One satisfying assignment found by the search.

    Attributes:
        vectors: per-frame primary-input scalars (0/1/X), frames 0..k.
        required_state: cared frame-0 flip-flop values {net: 0/1}.
        detect_frame: frame whose PO shows the fault effect (DETECT mode).
        backtracks: cumulative backtracks when this solution was found.
    """

    vectors: List[List[int]]
    required_state: Dict[str, int]
    detect_frame: int
    backtracks: int


@dataclass
class _Decision:
    leaf: Leaf
    value: int
    flipped: bool
    undo: List[UndoRecord]


class PodemEngine:
    """Branch-and-bound search over an :class:`UnrolledModel`.

    Args:
        cc: compiled circuit.
        fault: target fault (``None`` in JUSTIFY mode).
        num_frames: window size (DETECT) or 1 (JUSTIFY).
        targets: JUSTIFY-mode goals, as {D-input net name: 0/1}.
        testability: SCOAP measures (computed on demand if omitted).
        knowledge: optional cross-fault store; in JUSTIFY mode, solutions
            whose previous-frame state requirement is *absolutely* proven
            unjustifiable are pruned instead of yielded.  Only absolute
            proofs prune (the engine cannot know the caller's remaining
            frame budget), so pruning never weakens an EXHAUSTED claim.
    """

    def __init__(
        self,
        cc: CompiledCircuit,
        fault: Optional[Fault] = None,
        num_frames: int = 1,
        targets: Optional[Dict[str, int]] = None,
        testability: Optional[Testability] = None,
        constraints: "Optional[InputConstraints]" = None,
        observe_ppo: bool = False,
        knowledge: "Optional[StateKnowledge]" = None,
    ):
        if fault is None and not targets:
            raise ValueError("need a fault (DETECT) or targets (JUSTIFY)")
        if fault is not None and targets:
            raise ValueError("DETECT and JUSTIFY modes are exclusive")
        self.cc = cc
        self.fault = fault
        self.model = UnrolledModel(cc, fault, num_frames)
        self.meas = testability or compute_testability(cc)
        self.observe_ppo = observe_ppo
        self._hold_pins: set = set()
        if constraints is not None and not constraints.is_trivial:
            # fixed pins become permanent assignments in every frame;
            # hold pins are remembered so decisions mirror across frames
            for name, value in constraints.fixed.items():
                idx = cc.index[name]
                for frame in range(num_frames):
                    if self.model.good(frame, idx) == X:
                        self.model.assign(frame, idx, value)
            self._hold_pins = {cc.index[name] for name in constraints.hold}
        self._targets: List[Tuple[int, int]] = []
        if targets:
            for name, val in targets.items():
                ff_idx = cc.index[name]
                if ff_idx not in cc.ff_out:
                    raise ValueError(f"{name} is not a flip-flop output")
                d_idx = cc.ff_in[cc.ff_out.index(ff_idx)]
                self._targets.append((d_idx, val))
        self.knowledge = knowledge if fault is None else None
        self.backtracks = 0
        self.window_hit = False
        self._stack: List[_Decision] = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solutions(self, limits: Limits) -> Iterator[Solution]:
        """Yield satisfying assignments until the space or budget runs out.

        After exhausting the iterator, inspect :attr:`status` — it
        distinguishes a proven-exhausted space from a budget abort.
        """
        self.status = SearchStatus.EXHAUSTED
        while True:
            found = self._search(limits)
            if not found:
                return
            sol = self._extract()
            if (
                self.knowledge is not None
                and sol.required_state
                and self.knowledge.lookup_unjustifiable(sol.required_state)
                == "exhausted"
            ):
                # dead branch: this assignment needs a provably unreachable
                # previous-frame state, so enumerate the next one instead
                self.knowledge.stats["podem_pruned"] += 1
                if not self._backtrack():
                    self.status = (
                        SearchStatus.WINDOW if self.window_hit
                        else SearchStatus.EXHAUSTED
                    )
                    return
                continue
            yield sol
            # treat the solution as a dead end to enumerate the next one;
            # window pressure recorded on other branches must survive, or
            # the caller would wrongly stop growing the frame window
            if not self._backtrack():
                self.status = (
                    SearchStatus.WINDOW if self.window_hit
                    else SearchStatus.EXHAUSTED
                )
                return

    def run(self, limits: Limits) -> Optional[Solution]:
        """Convenience: first solution or ``None``."""
        return next(self.solutions(limits), None)

    status: SearchStatus = SearchStatus.EXHAUSTED

    # ------------------------------------------------------------------
    # search core
    # ------------------------------------------------------------------
    def _search(self, limits: Limits) -> bool:
        while True:
            if self.backtracks > limits.max_backtracks or limits.expired():
                self.status = SearchStatus.LIMIT
                return False
            if self._goal_reached():
                self.status = SearchStatus.SUCCESS
                return True
            objective = self._objective()
            if objective is None:
                if not self._backtrack():
                    self.status = (
                        SearchStatus.WINDOW if self.window_hit
                        else SearchStatus.EXHAUSTED
                    )
                    return False
                continue
            leaf_assign = self._backtrace(*objective)
            if leaf_assign is None:
                if not self._backtrack():
                    self.status = (
                        SearchStatus.WINDOW if self.window_hit
                        else SearchStatus.EXHAUSTED
                    )
                    return False
                continue
            (frame, idx), value = leaf_assign
            undo = self._assign_decision(frame, idx, value)
            self._stack.append(_Decision((frame, idx), value, False, undo))

    def _goal_reached(self) -> bool:
        if self.fault is not None:
            return self.model.detected_at(self.observe_ppo) is not None
        return all(self.model.good(0, d) == v for d, v in self._targets)

    def _objective(self) -> Optional[Tuple[int, int, int]]:
        """Next (frame, net index, good value) goal, or None at a dead end."""
        model = self.model
        if self.fault is None:
            for d_idx, val in self._targets:
                g = model.good(0, d_idx)
                if g == X:
                    return (0, d_idx, val)
                if g != val:
                    return None  # requirement provably violated
            return None  # all satisfied (goal check happens first, not here)

        launch = model.launch_frame
        if launch >= model.num_frames:
            # the launch frame lies past the window: growing it is the
            # only way forward, never a proof of untestability
            self.window_hit = True
            return None
        if not model.excitation_possible(launch):
            return None
        site = model.site_idx
        if launch:
            # transition launch: the site must hold the initial value in
            # the frame before the slow edge (stuck == initial value)
            g = model.good(launch - 1, site)
            if g == X:
                return (launch - 1, site, self.fault.stuck)
            if g != self.fault.stuck:
                return None  # site pinned at the final value: no edge
        if not model.fault_excited(launch):
            return (launch, site, 1 - self.fault.stuck)

        frontier = model.d_frontier()
        if not frontier:
            if model.d_reaches_window_edge():
                self.window_hit = True
            return None
        po_reachable, edge_reachable = model.x_path_info(frontier)
        if self.observe_ppo and edge_reachable:
            # a D captured at a last-frame flip-flop is itself observable
            # (it will be shifted out), so the path is not dead
            po_reachable = True
        if not po_reachable:
            if edge_reachable or model.d_reaches_window_edge():
                self.window_hit = True
            return None
        for frame, pos in sorted(
            frontier,
            key=lambda fp: (fp[0], self.meas.co[self.cc.gates[fp[1]].out]),
        ):
            gate = self.cc.gates[pos]
            vals = model.effective_inputs(frame, pos)
            ctrl = CONTROLLING_VALUE.get(gate.gtype)
            want = (1 - ctrl) if ctrl is not None else None
            for pin, v in enumerate(vals):
                if good_of(v) == X and not is_d(v):
                    src = gate.fanin[pin]
                    if want is not None:
                        return (frame, src, want)
                    return (
                        frame, src,
                        0 if self.meas.cc0[src] <= self.meas.cc1[src] else 1,
                    )
        # No frontier gate offers a good-X input, yet an X path exists: the
        # remaining unknowns are faulty-slot-only and resolve as more leaves
        # get values.  Fill any free leaf to keep the enumeration complete.
        return self._fill_objective()

    def _fill_objective(self) -> Optional[Tuple[int, int, int]]:
        """Pick an unassigned leaf when no frontier objective is available."""
        model = self.model
        for frame in range(model.num_frames):
            for idx in self.cc.pi:
                if model.good(frame, idx) == X:
                    return (
                        frame, idx,
                        0 if self.meas.cc0[idx] <= self.meas.cc1[idx] else 1,
                    )
        for idx in self.cc.ff_out:
            if model.good(0, idx) == X:
                return (0, idx, 0)
        return None  # everything decided and still no detection: dead end

    def _backtrace(
        self, frame: int, idx: int, value: int
    ) -> Optional[Tuple[Leaf, int]]:
        """Walk an objective back to an unassigned leaf (classic PODEM)."""
        cc = self.cc
        model = self.model
        guard = 0
        while True:
            guard += 1
            if guard > 10 * cc.num_nets * model.num_frames:
                return None  # defensive: malformed circuit
            if model.is_leaf(frame, idx):
                if model.good(frame, idx) != X:
                    return None  # already decided; objective unreachable
                return (frame, idx), value
            gate_pos = cc.gate_of[idx]
            if gate_pos is None:
                # flip-flop output in frame > 0: cross the frame boundary
                ff_pos = cc.ff_out.index(idx)
                if frame == 0:
                    return None  # unreachable: frame-0 PPIs are leaves
                frame -= 1
                idx = cc.ff_in[ff_pos]
                continue
            gate = cc.gates[gate_pos]
            t = gate.gtype
            inv = INVERSION[t]
            if t in (GateType.CONST0, GateType.CONST1):
                return None  # cannot control a constant
            if t in (GateType.BUF, GateType.NOT, GateType.DFF):
                idx = gate.fanin[0]
                value ^= inv
                continue
            if t in (GateType.XOR, GateType.XNOR):
                vals = model.effective_inputs(frame, gate_pos)
                parity = inv
                chosen = None
                for pin, v in enumerate(vals):
                    g = good_of(v)
                    if g == X:
                        if chosen is None:
                            chosen = gate.fanin[pin]
                        else:
                            pass  # other X inputs default to 0 (no parity)
                    else:
                        parity ^= g
                if chosen is None:
                    return None
                idx = chosen
                value = value ^ parity
                continue
            ctrl = CONTROLLING_VALUE[t]
            need = value ^ inv  # the AND/OR-sense output value required
            xs = [
                (pin, gate.fanin[pin])
                for pin, v in enumerate(model.effective_inputs(frame, gate_pos))
                if good_of(v) == X
            ]
            if not xs:
                return None
            if need == ctrl:
                # one controlling input suffices: pick the easiest
                pin, src = min(xs, key=lambda ps: self.meas.cc(ps[1], ctrl))
                idx, value = src, ctrl
            else:
                # all inputs must be non-controlling: attack the hardest first
                pin, src = max(xs, key=lambda ps: self.meas.cc(ps[1], 1 - ctrl))
                idx, value = src, 1 - ctrl

    def _assign_decision(self, frame: int, idx: int, value: int):
        """Assign a decision leaf; hold pins mirror into every frame."""
        undo = self.model.assign(frame, idx, value)
        if idx in self._hold_pins:
            for other in range(self.model.num_frames):
                if other != frame and self.model.good(other, idx) == X:
                    undo.extend(self.model.assign(other, idx, value))
        return undo

    def _backtrack(self) -> bool:
        """Reverse the most recent untried decision; False when exhausted."""
        while self._stack:
            dec = self._stack.pop()
            self.model.unassign(dec.undo)
            self.backtracks += 1
            if not dec.flipped:
                value = 1 - dec.value
                undo = self._assign_decision(dec.leaf[0], dec.leaf[1], value)
                self._stack.append(_Decision(dec.leaf, value, True, undo))
                return True
        return False

    # ------------------------------------------------------------------
    def _extract(self) -> Solution:
        model = self.model
        if self.fault is not None:
            hit = model.detected_at(self.observe_ppo)
            detect_frame = hit[0] if hit else model.num_frames - 1
            vectors = model.extract_vectors(detect_frame)
        else:
            detect_frame = 0
            vectors = model.extract_vectors(0)
        required = model.required_state()
        if required:
            required = self._minimize_requirement(vectors, required)
        return Solution(
            vectors=vectors,
            required_state=required,
            detect_frame=detect_frame,
            backtracks=self.backtracks,
        )

    def _minimize_requirement(
        self, vectors: List[List[int]], required: Dict[str, int]
    ) -> Dict[str, int]:
        """Greedily drop frame-0 state requirements the goal does not need.

        PODEM's backtrace decides *some* sufficient assignment; a decided
        pseudo primary input is not necessarily a *necessary* one (an AND
        gate needs only one controlling input).  Each requirement is
        tentatively replaced by X on a scratch model; if the goal — fault
        detection, or the justification targets — still holds, it is
        dropped for good.  Smaller requirements are strictly easier for
        every justifier, and minimal requirements are what keep the
        reverse-time justification search from missing reachable options.
        """
        kept = dict(required)
        for name in list(required):
            trial = {k: v for k, v in kept.items() if k != name}
            if self._goal_with(vectors, trial):
                kept = trial
        return kept

    def _goal_with(self, vectors: List[List[int]], state: Dict[str, int]) -> bool:
        """Check the search goal on a fresh model under given assignments."""
        scratch = UnrolledModel(self.cc, self.fault, self.model.num_frames)
        for frame, vec in enumerate(vectors):
            for pin, idx in enumerate(self.cc.pi):
                if vec[pin] != X and scratch.good(frame, idx) == X:
                    scratch.assign(frame, idx, vec[pin])
        for name, value in state.items():
            idx = self.cc.index[name]
            if scratch.good(0, idx) == X:
                scratch.assign(0, idx, value)
        if self.fault is not None:
            return scratch.detected_at(self.observe_ppo) is not None
        return all(scratch.good(0, d) == v for d, v in self._targets)
