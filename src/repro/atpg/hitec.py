"""HITEC-style sequential test generation for a single target fault.

The engine runs the paper's Fig. 1 flow: deterministically excite the fault
in time frame 0 and propagate its effect to a primary output over a growing
window of forward time frames (PODEM over the unrolled model), then hand
the required frame-0 state to a pluggable *justifier* — the genetic
justifier in the hybrid's first passes, the deterministic reverse-time
justifier otherwise.  When justification fails, the engine backtracks into
the propagation search and tries the next excitation/propagation solution,
exactly the loop drawn in the paper's Figure 1.

Untestability is reported only when the whole space was exhausted without
any budget or window limit biting, so the claim is sound with respect to
the configured frame bounds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..circuit.netlist import Circuit
from ..faults.model import Fault, resolve_fault_model
from ..knowledge import StateKnowledge
from ..simulation.compiled import CompiledCircuit
from ..simulation.encoding import X
from ..simulation.fault_sim import FaultSimulator
from ..telemetry import Recorder
from .constraints import InputConstraints
from .context import AtpgContext
from .justify import JustifyResult, JustifyStatus
from .podem import Limits, PodemEngine, SearchStatus, Solution
from .scoap import Testability


class TestGenStatus(enum.Enum):
    """Per-fault outcome of sequential test generation."""

    # not a test class, despite the name pytest pattern-matches when a
    # test module imports it
    __test__ = False

    DETECTED = "detected"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


#: A justifier maps a required good-circuit state to a result; the hybrid
#: driver plugs in either the GA or the deterministic reverse-time search.
Justifier = Callable[[Dict[str, int]], JustifyResult]


@dataclass
class FlowCounters:
    """Phase counters for the Figure-1 flow trace.

    Attributes:
        excite_attempts: PODEM searches started (one per window size).
        propagation_solutions: excitation/propagation solutions found.
        justify_calls: justifier invocations (state was non-trivial).
        justify_successes: justifications that produced a sequence.
        propagation_backtracks: solutions abandoned because justification
            failed (the Fig. 1 "backtrack to propagation phase" arrow).
    """

    excite_attempts: int = 0
    propagation_solutions: int = 0
    justify_calls: int = 0
    justify_successes: int = 0
    propagation_backtracks: int = 0
    verification_rejects: int = 0


@dataclass
class TestGenResult:
    """Outcome for one target fault.

    Attributes:
        status: detected / untestable / aborted.
        sequence: full test sequence — justification prefix followed by the
            excitation/propagation vectors (scalars, X allowed).
        justification_frames: length of the justification prefix.
        backtracks: PODEM backtracks spent.
        counters: Figure-1 flow counters.
    """

    status: TestGenStatus
    sequence: List[List[int]] = field(default_factory=list)
    justification_frames: int = 0
    backtracks: int = 0
    counters: FlowCounters = field(default_factory=FlowCounters)


class SequentialTestGenerator:
    """Deterministic excitation/propagation with pluggable justification.

    Args:
        circuit: an :class:`~repro.atpg.context.AtpgContext`, or (legacy
            shim) a circuit / compiled circuit plus the keyword arguments
            below, which are folded into a private context.
        max_frames: largest forward propagation window to try.
        max_solutions: propagation alternatives to offer the justifier.
        testability: shared SCOAP measures (legacy shim; lives on the
            context).
        constraints: environment-imposed input constraints applied to the
            excitation/propagation vectors (legacy shim; lives on the
            context).
        verify: confirm every candidate by fault simulation before
            reporting DETECTED (rejects the rare optimistic candidate
            whose frame-0 faulty state differs from the good state the
            justifier produced); unverified candidates count as
            justification failures and the search continues.
        backend / telemetry: legacy shims; live on the context.

    When the context carries a :class:`~repro.knowledge.StateKnowledge`
    store, known-justified frame-0 states short-circuit the justifier
    (still verified before acceptance, with fallback to the real
    justifier on a stale hit) and absolutely-unjustifiable states are
    treated as exhausted without a search — which keeps UNTESTABLE
    claims sound, since only absolute proofs are consulted.
    """

    def __init__(
        self,
        circuit: "Circuit | CompiledCircuit | AtpgContext",
        max_frames: int = 8,
        max_solutions: int = 8,
        testability: Optional[Testability] = None,
        constraints: Optional[InputConstraints] = None,
        verify: bool = True,
        backend: Optional[str] = None,
        telemetry: Optional[Recorder] = None,
    ):
        self.ctx = AtpgContext.ensure(
            circuit,
            testability=testability,
            constraints=constraints,
            backend=backend,
            telemetry=telemetry,
        )
        self.cc = self.ctx.cc
        self.max_frames = max(1, max_frames)
        self.max_solutions = max(1, max_solutions)
        self.verify = verify

    # Shared artifacts live on the context; these aliases keep the
    # pre-context attribute surface working.
    @property
    def meas(self) -> Testability:
        return self.ctx.testability

    @property
    def constraints(self) -> Optional[InputConstraints]:
        return self.ctx.active_constraints

    @property
    def telemetry(self) -> Recorder:
        return self.ctx.telemetry

    @property
    def knowledge(self) -> Optional[StateKnowledge]:
        return self.ctx.knowledge

    @property
    def _verifier(self) -> FaultSimulator:
        return self.ctx.verifier()

    def generate(
        self,
        fault: Fault,
        justifier: Justifier,
        limits: Limits,
        start_good_state: Optional[List[int]] = None,
        start_fault_state: Optional[List[int]] = None,
    ) -> TestGenResult:
        """Generate a test for ``fault``, or prove it untestable.

        The propagation window grows one frame at a time; within each
        window, successive PODEM solutions are handed to the justifier
        until one of them yields a justifiable state.

        Args:
            fault: the target fault.
            justifier: state-justification callback (GA or deterministic).
            limits: search budget.
            start_good_state / start_fault_state: the states the test will
                actually be applied from (defaults: all-unknown) — used to
                verify candidates when ``verify`` is on.
        """
        with self.telemetry.span("atpg.fault"):
            result = self._generate(
                fault, justifier, limits, start_good_state, start_fault_state
            )
        tel = self.telemetry
        c = result.counters
        tel.count("atpg.faults_targeted")
        tel.count(f"atpg.status.{result.status.value}")
        tel.count("atpg.backtracks", result.backtracks)
        tel.count("atpg.excite_attempts", c.excite_attempts)
        tel.count("atpg.propagation_solutions", c.propagation_solutions)
        tel.count("atpg.justify_calls", c.justify_calls)
        tel.count("atpg.justify_successes", c.justify_successes)
        tel.count("atpg.propagation_backtracks", c.propagation_backtracks)
        tel.count("atpg.verification_rejects", c.verification_rejects)
        return result

    def _generate(
        self,
        fault: Fault,
        justifier: Justifier,
        limits: Limits,
        start_good_state: Optional[List[int]] = None,
        start_fault_state: Optional[List[int]] = None,
    ) -> TestGenResult:
        self._start_good = start_good_state
        self._start_fault = start_fault_state
        self._fault = fault
        counters = FlowCounters()
        any_limit = False
        prior_solutions = False
        justify_all_exhausted = True
        total_backtracks = 0

        fm = resolve_fault_model(fault.model)
        # Models whose engine view is an approximation (transition) may
        # not claim untestability: the nine-valued window search is only
        # an optimistic filter there, so exhaustion means ABORTED.
        proven_status = (
            TestGenStatus.UNTESTABLE
            if fm.untestable_proofs
            else TestGenStatus.ABORTED
        )
        frames = min(max(1, fm.min_window), self.max_frames)
        while frames <= self.max_frames:
            if limits.expired():
                any_limit = True
                break
            engine = PodemEngine(
                self.cc, fault=fault, num_frames=frames,
                testability=self.meas, constraints=self.constraints,
            )
            counters.excite_attempts += 1
            solutions_tried = 0
            truncated = False
            solutions = engine.solutions(limits)
            while True:
                with self.telemetry.span("atpg.propagate"):
                    sol = next(solutions, None)
                if sol is None:
                    break
                counters.propagation_solutions += 1
                solutions_tried += 1
                result, jstatus = self._try_justify(sol, justifier, counters)
                if (
                    result is not None
                    and self.verify
                    and not self._confirm(result)
                ):
                    counters.verification_rejects += 1
                    justify_all_exhausted = False
                    result = None
                    jstatus = JustifyStatus.BOUNDED
                if result is not None:
                    result.backtracks = total_backtracks + engine.backtracks
                    result.counters = counters
                    return result
                if jstatus is not JustifyStatus.EXHAUSTED:
                    justify_all_exhausted = False
                if jstatus is JustifyStatus.LIMIT:
                    any_limit = True
                counters.propagation_backtracks += 1
                if solutions_tried >= self.max_solutions:
                    truncated = True
                    break
            total_backtracks += engine.backtracks
            prior_solutions = prior_solutions or solutions_tried > 0
            if truncated:
                break
            if engine.status is SearchStatus.LIMIT:
                any_limit = True
                break
            if engine.status is SearchStatus.WINDOW:
                frames += 1
                continue
            # Search space exhausted within this window with no window
            # pressure: a larger window cannot create new behaviour.
            provable = not any_limit and frames <= self.max_frames
            if solutions_tried == 0 and not prior_solutions and provable:
                return TestGenResult(
                    proven_status,
                    backtracks=total_backtracks,
                    counters=counters,
                )
            if provable and justify_all_exhausted:
                # every achievable required state was proven unjustifiable
                return TestGenResult(
                    proven_status,
                    backtracks=total_backtracks,
                    counters=counters,
                )
            break

        return TestGenResult(
            TestGenStatus.ABORTED, backtracks=total_backtracks, counters=counters
        )

    # ------------------------------------------------------------------
    def _try_justify(
        self, sol: Solution, justifier: Justifier, counters: FlowCounters
    ) -> "tuple[Optional[TestGenResult], JustifyStatus]":
        required = sol.required_state
        if not required:
            return (
                TestGenResult(
                    TestGenStatus.DETECTED,
                    sequence=list(sol.vectors),
                    justification_frames=0,
                ),
                JustifyStatus.JUSTIFIED,
            )
        know = self.knowledge
        if know is not None:
            # Absolute unjustifiability proofs only: the generator does
            # not know the justifier's frame budget, and a depth-bounded
            # fact must not masquerade as EXHAUSTED here.
            if know.lookup_unjustifiable(required) == "exhausted":
                return None, JustifyStatus.EXHAUSTED
            seq = know.lookup_justified(required)
            if seq is not None:
                candidate = TestGenResult(
                    TestGenStatus.DETECTED,
                    sequence=list(seq) + list(sol.vectors),
                    justification_frames=len(seq),
                )
                if not self.verify or self._confirm(candidate):
                    counters.justify_successes += 1
                    return candidate, JustifyStatus.JUSTIFIED
                # stale sidecar entry: fall through to the real justifier
                know.stats["stale_hits"] += 1
        counters.justify_calls += 1
        with self.telemetry.span("atpg.justify"):
            jres = justifier(required)
        if jres.success:
            counters.justify_successes += 1
            return (
                TestGenResult(
                    TestGenStatus.DETECTED,
                    sequence=list(jres.vectors) + list(sol.vectors),
                    justification_frames=len(jres.vectors),
                ),
                jres.status,
            )
        return None, jres.status

    # ------------------------------------------------------------------
    def _fill(self, sequence: List[List[int]]) -> List[List[int]]:
        """Resolve don't-cares deterministically (constraints-aware)."""
        filled = [[0 if v == X else v for v in vec] for vec in sequence]
        if self.constraints is not None:
            self.constraints.apply_to_vectors(self.cc.circuit, filled)
        return filled

    def _confirm(self, result: TestGenResult) -> bool:
        """Fault-simulate the candidate from the actual start states."""
        filled = self._fill(result.sequence)
        states = (
            {self._fault: list(self._start_fault)}
            if self._start_fault is not None
            else None
        )
        outcome = self._verifier.run(
            filled,
            [self._fault],
            good_state=self._start_good,
            fault_states=states,
        )
        if self._fault in outcome.detected:
            result.sequence = filled
            return True
        return False
