"""Shared per-circuit ATPG state: one context instead of five rebuilds.

Before this module, every layer that touched a circuit — the hybrid
driver, :class:`~repro.atpg.hitec.SequentialTestGenerator`,
:func:`~repro.atpg.justify.justify_state`, the GA justifier, the fault
simulator — independently coerced ``Circuit | CompiledCircuit``, computed
SCOAP testability, collapsed the fault universe, and built simulator
instances.  :class:`AtpgContext` owns all of that once per circuit:

* the :class:`~repro.simulation.compiled.CompiledCircuit` (compiled on
  demand from a :class:`~repro.circuit.netlist.Circuit`);
* SCOAP :class:`~repro.atpg.scoap.Testability` measures (lazy);
* the collapsed fault universe (lazy);
* fault-simulator handles, cached by ``(width, jobs)``;
* deterministic RNG derivation (named streams off one base seed);
* the telemetry recorder and the injectable wall clock;
* the optional cross-fault :class:`~repro.knowledge.StateKnowledge` store.

Engines take a context (or build one through :meth:`AtpgContext.ensure`,
which also accepts the legacy ``circuit``/``testability`` keyword style,
kept as thin deprecated shims).
"""

from __future__ import annotations

import random
import zlib
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..circuit.netlist import Circuit
from ..clock import monotonic
from ..faults.collapse import collapse_faults
from ..faults.model import DEFAULT_FAULT_MODEL, Fault, resolve_fault_model
from ..knowledge import (
    StateKnowledge,
    constraints_fingerprint,
    model_fingerprint,
)
from ..simulation.compiled import CompiledCircuit, compile_circuit
from ..simulation.fault_sim import FaultSimulator
from ..telemetry import NULL_RECORDER, Recorder
from .constraints import InputConstraints, UNCONSTRAINED
from .scoap import Testability, compute_testability

#: Anything the legacy engine constructors accepted as "the circuit".
CircuitLike = Union[Circuit, CompiledCircuit]


def _derive(seed: int, token: str) -> int:
    """Deterministic, platform-stable named-stream seed derivation."""
    return (seed * 0x9E3779B1 + zlib.crc32(token.encode("utf-8"))) & 0x7FFFFFFF


class AtpgContext:
    """Owns every piece of shared per-circuit ATPG state.

    Args:
        circuit: the circuit under test, compiled or not.
        testability: precomputed SCOAP measures (computed lazily when
            omitted).
        constraints: environment input constraints (``None`` or a trivial
            constraint set both normalise to unconstrained).
        backend: simulation backend for every simulator the context
            builds (``None`` defers to ``REPRO_SIM_BACKEND``).
        telemetry: shared metrics recorder (defaults to the no-op).
        clock: injectable wall-clock source for every deadline derived
            from this context.
        seed: base seed for :meth:`rng` stream derivation.
        knowledge: cross-fault state-knowledge store shared by every
            engine built on this context (``None`` disables reuse).
        fault_model: registered fault-model name the context's fault
            universe (and knowledge environment) is built for; defaults
            to stuck-at.
    """

    def __init__(
        self,
        circuit: CircuitLike,
        testability: Optional[Testability] = None,
        constraints: Optional[InputConstraints] = None,
        backend: Optional[str] = None,
        telemetry: Optional[Recorder] = None,
        clock: Optional[Callable[[], float]] = None,
        seed: int = 0,
        knowledge: Optional[StateKnowledge] = None,
        fault_model: str = DEFAULT_FAULT_MODEL,
    ) -> None:
        if isinstance(circuit, CompiledCircuit):
            self.cc: CompiledCircuit = circuit
        else:
            self.cc = compile_circuit(circuit)
        self.circuit: Circuit = self.cc.circuit
        self.constraints: InputConstraints = constraints or UNCONSTRAINED
        self.backend = backend
        self.telemetry: Recorder = telemetry or NULL_RECORDER
        self.clock: Callable[[], float] = clock or monotonic
        self.seed = seed
        self.knowledge = knowledge
        self.fault_model = resolve_fault_model(fault_model).name
        self._testability = testability
        self._faults: Optional[List[Fault]] = None
        self._simulators: Dict[Tuple[int, int], FaultSimulator] = {}

    # -- construction helpers ------------------------------------------
    @classmethod
    def ensure(
        cls,
        circuit: "CircuitLike | AtpgContext",
        **kwargs: object,
    ) -> "AtpgContext":
        """Coerce a circuit / compiled circuit / context into a context.

        This is the deprecation shim behind every legacy engine
        signature: passing an existing context returns it unchanged
        (keyword overrides are rejected to avoid silently forking shared
        state); anything else builds a fresh context from the legacy
        keywords.
        """
        if isinstance(circuit, AtpgContext):
            overrides = {k: v for k, v in kwargs.items() if v is not None}
            if overrides:
                raise ValueError(
                    "cannot override context attributes "
                    f"({', '.join(sorted(overrides))}) when passing an "
                    "AtpgContext; build a new context instead"
                )
            return circuit
        return cls(circuit, **kwargs)  # type: ignore[arg-type]

    # -- lazy shared artifacts -----------------------------------------
    @property
    def testability(self) -> Testability:
        """SCOAP measures, computed once per context."""
        if self._testability is None:
            self._testability = compute_testability(self.cc)
        return self._testability

    @property
    def faults(self) -> List[Fault]:
        """The collapsed fault universe, computed once per context."""
        if self._faults is None:
            self._faults = collapse_faults(self.circuit, self.fault_model)
        return list(self._faults)

    @property
    def active_constraints(self) -> Optional[InputConstraints]:
        """The constraints when non-trivial, else ``None`` (engine form)."""
        return None if self.constraints.is_trivial else self.constraints

    @property
    def knowledge_fingerprint(self) -> str:
        """Constraint-environment fingerprint knowledge facts carry.

        The fault model is part of the environment: justified-state
        facts mined under one model must not seed runs targeting
        another.  Stuck-at keeps the historical tag so existing sidecars
        stay valid.
        """
        return model_fingerprint(
            constraints_fingerprint(self.active_constraints),
            self.fault_model,
        )

    def make_knowledge(self) -> StateKnowledge:
        """Attach (and return) a fresh store matching this environment."""
        self.knowledge = StateKnowledge(
            circuit=self.circuit.name,
            fingerprint=self.knowledge_fingerprint,
        )
        return self.knowledge

    # -- derived handles -----------------------------------------------
    def rng(self, token: str = "") -> random.Random:
        """A named deterministic random stream derived from the seed."""
        return random.Random(_derive(self.seed, token))

    def fault_simulator(self, width: int = 64, jobs: int = 1) -> FaultSimulator:
        """A fault simulator for this circuit, cached by ``(width, jobs)``."""
        key = (width, jobs)
        sim = self._simulators.get(key)
        if sim is None:
            sim = FaultSimulator(
                self.cc,
                width=width,
                backend=self.backend,
                jobs=jobs,
                telemetry=self.telemetry,
            )
            self._simulators[key] = sim
        return sim

    def verifier(self) -> FaultSimulator:
        """The width-1 simulator used to confirm single candidates."""
        return self.fault_simulator(width=1, jobs=1)
