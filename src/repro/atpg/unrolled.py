"""Iterative time-frame expansion model for sequential ATPG.

:class:`UnrolledModel` materialises ``num_frames`` copies of the circuit's
combinational logic.  Frame ``f``'s flip-flop outputs equal frame ``f-1``'s
D-input values; frame 0's flip-flop outputs are free *pseudo primary
inputs* (the state the justifier must later produce).  Every net in every
frame carries a packed two-slot (good, faulty) nine-valued word, with the
target fault injected into the faulty slot of **every** frame, PROOFS-style.

The model supports the exact operations PODEM needs:

* assign a value to a leaf (a PI of any frame, or a frame-0 PPI),
* event-driven forward propagation with an undo log per decision,
* D-frontier / fault-excitation / PO-detection / X-path queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import GateType
from ..faults.model import DEFAULT_FAULT_MODEL, Fault, resolve_fault_model
from ..simulation.compiled import CompiledCircuit
from ..simulation.encoding import PackedValue, X, eval_packed
from ..simulation.logic_sim import _eval_ints
from .values import MASK2, XX, faulty_of, good_of, has_x, is_d, make9

#: A leaf the search may decide on: (frame, net index).
Leaf = Tuple[int, int]

#: One undo record: (frame, net index, old p1, old p0).
UndoRecord = Tuple[int, int, int, int]


def _stuck_mask(value: PackedValue, stuck: int) -> PackedValue:
    """Force the faulty slot (bit 1) of ``value`` to the stuck constant."""
    p1, p0 = value
    if stuck == 1:
        return p1 | 0b10, p0 & ~0b10 & MASK2
    return p1 & ~0b10 & MASK2, p0 | 0b10


class UnrolledModel:
    """Nine-valued good/faulty simulation over an unrolled frame window.

    Args:
        cc: compiled circuit.
        fault: the target fault, or ``None`` for fault-free operation
            (used by deterministic state justification).
        num_frames: number of time frames in the window (≥ 1).
    """

    def __init__(
        self, cc: CompiledCircuit, fault: Optional[Fault], num_frames: int = 1
    ):
        if num_frames < 1:
            raise ValueError("num_frames must be >= 1")
        self.cc = cc
        self.fault = fault
        self.num_frames = num_frames

        # injection handles
        self._stem_idx: Optional[int] = None
        self._pin_gate: Optional[int] = None  # gate position
        self._pin: Optional[int] = None
        self._ff_pos: Optional[int] = None
        self._site_idx: Optional[int] = None
        self._stuck = 0
        #: first frame the injection is active in.  Stuck-at faults are
        #: present in every frame; a transition fault's slow edge only
        #: matters from the launch frame on — the engine approximates it
        #: as the stuck value in frames >= launch and requires the site
        #: to hold the initial value in the frame before (candidates are
        #: confirmed against true two-frame semantics by fault
        #: simulation before being reported).
        self._inject_from = 0
        if fault is not None and fault.model != DEFAULT_FAULT_MODEL:
            self._inject_from = resolve_fault_model(
                fault.model
            ).inject_from_frame
        if fault is not None:
            self._stuck = fault.stuck
            self._site_idx = cc.index[fault.net]
            if not fault.is_branch:
                self._stem_idx = self._site_idx
            else:
                reader = cc.circuit.gates[fault.gate]
                if reader.gtype is GateType.DFF:
                    self._ff_pos = cc.ff_out.index(cc.index[fault.gate])
                else:
                    self._pin_gate = cc.gate_of[cc.index[fault.gate]]
                    self._pin = fault.pin

        n = cc.num_nets
        self.v1: List[List[int]] = [[XX[0]] * n for _ in range(num_frames)]
        self.v0: List[List[int]] = [[XX[1]] * n for _ in range(num_frames)]
        self._pending: List[List[Set[int]]] = [
            [set() for _ in range(cc.num_levels + 1)] for _ in range(num_frames)
        ]
        self._init_sweep()

    # ------------------------------------------------------------------
    # value access
    # ------------------------------------------------------------------
    def value(self, frame: int, idx: int) -> PackedValue:
        """Packed (good, faulty) value of a net in a frame."""
        return self.v1[frame][idx], self.v0[frame][idx]

    def good(self, frame: int, idx: int) -> int:
        """Good-circuit scalar value of a net in a frame."""
        return good_of(self.value(frame, idx))

    @property
    def launch_frame(self) -> int:
        """Frame the fault must be excited in (0 except for transition)."""
        return self._inject_from

    @property
    def site_idx(self) -> Optional[int]:
        """Net index of the fault site, or ``None`` when fault-free."""
        return self._site_idx

    def is_leaf(self, frame: int, idx: int) -> bool:
        """True for decidable leaves: any-frame PIs and frame-0 PPIs."""
        if self.cc.gate_of[idx] is not None:
            return False
        g = self.cc.circuit.gates.get(self.cc.net_names[idx])
        if g is None:  # primary input
            return True
        return frame == 0  # flip-flop output: leaf only in frame 0

    # ------------------------------------------------------------------
    # assignment / propagation / undo
    # ------------------------------------------------------------------
    def assign(self, frame: int, idx: int, scalar: int) -> List[UndoRecord]:
        """Assign a 0/1 value to a leaf and propagate; returns the undo log.

        Leaf values are identical in the good and faulty circuits (inputs
        are never faulted differently; a stuck PI is handled by the
        injection masking below).
        """
        if not self.is_leaf(frame, idx):
            raise ValueError(
                f"({frame}, {self.cc.net_names[idx]}) is not a decidable leaf"
            )
        undo: List[UndoRecord] = []
        self._write(frame, idx, make9(scalar, scalar), undo)
        self._settle(frame, undo)
        return undo

    def unassign(self, undo: List[UndoRecord]) -> None:
        """Revert a previous :meth:`assign` using its undo log."""
        for frame, idx, p1, p0 in reversed(undo):
            self.v1[frame][idx] = p1
            self.v0[frame][idx] = p0
        for frame_buckets in self._pending:
            for bucket in frame_buckets:
                bucket.clear()

    def _write(
        self, frame: int, idx: int, value: PackedValue, undo: List[UndoRecord]
    ) -> None:
        p1, p0 = value
        if self._stem_idx == idx and frame >= self._inject_from:
            p1, p0 = _stuck_mask((p1, p0), self._stuck)
        if (p1, p0) == (self.v1[frame][idx], self.v0[frame][idx]):
            return
        undo.append((frame, idx, self.v1[frame][idx], self.v0[frame][idx]))
        self.v1[frame][idx] = p1
        self.v0[frame][idx] = p0
        for pos in self.cc.fanout_gates[idx]:
            self._pending[frame][self.cc.gates[pos].level].add(pos)

    def effective_inputs(self, frame: int, pos: int) -> List[PackedValue]:
        """Gate input values as the gate sees them (branch fault applied)."""
        gate = self.cc.gates[pos]
        vals = [self.value(frame, i) for i in gate.fanin]
        if pos == self._pin_gate and frame >= self._inject_from:
            vals[self._pin] = _stuck_mask(vals[self._pin], self._stuck)
        return vals

    def _settle(self, start_frame: int, undo: List[UndoRecord]) -> None:
        cc = self.cc
        pin_gate = self._pin_gate
        for frame in range(start_frame, self.num_frames):
            buckets = self._pending[frame]
            v1, v0 = self.v1[frame], self.v0[frame]
            for bucket in buckets:
                while bucket:
                    pos = bucket.pop()
                    gate = cc.gates[pos]
                    if pos == pin_gate:
                        vals = self.effective_inputs(frame, pos)
                        out = eval_packed(gate.gtype, vals, MASK2)
                    else:
                        out = _eval_ints(gate.code, gate.fanin, v1, v0, MASK2)
                    self._write(frame, gate.out, out, undo)
            if frame + 1 < self.num_frames:
                self._latch(frame, undo)

    def _latch(self, frame: int, undo: List[UndoRecord]) -> None:
        """Carry frame ``frame`` D-input values into frame ``frame+1``."""
        cc = self.cc
        for ff_pos, (out_idx, in_idx) in enumerate(zip(cc.ff_out, cc.ff_in)):
            val = self.value(frame, in_idx)
            if ff_pos == self._ff_pos and frame + 1 >= self._inject_from:
                val = _stuck_mask(val, self._stuck)
            self._write(frame + 1, out_idx, val, undo)

    def _init_sweep(self) -> None:
        """Full initial evaluation (applies injections to the all-X state)."""
        cc = self.cc
        scratch: List[UndoRecord] = []  # discarded: this *is* the baseline
        for frame in range(self.num_frames):
            active = frame >= self._inject_from
            if (
                active
                and self._stem_idx is not None
                and cc.is_source(self._stem_idx)
            ):
                p1, p0 = _stuck_mask(self.value(frame, self._stem_idx), self._stuck)
                self.v1[frame][self._stem_idx] = p1
                self.v0[frame][self._stem_idx] = p0
            for pos, gate in enumerate(cc.gates):
                vals = self.effective_inputs(frame, pos)
                out = eval_packed(gate.gtype, vals, MASK2)
                if self._stem_idx == gate.out and active:
                    out = _stuck_mask(out, self._stuck)
                self.v1[frame][gate.out] = out[0]
                self.v0[frame][gate.out] = out[1]
            if frame + 1 < self.num_frames:
                self._latch(frame, scratch)
        for frame_buckets in self._pending:
            for bucket in frame_buckets:
                bucket.clear()

    # ------------------------------------------------------------------
    # ATPG queries
    # ------------------------------------------------------------------
    def detected_at(self, observe_ppo: bool = False) -> Optional[Tuple[int, int]]:
        """First (frame, net index) where a D/D̄ reaches an observation point.

        Observation points are the primary outputs; with ``observe_ppo``
        the last frame's flip-flop D inputs count too (scan-style testing,
        where captured state is shifted out and compared).
        """
        for frame in range(self.num_frames):
            for po in self.cc.po:
                if is_d(self.value(frame, po)):
                    return frame, po
        if observe_ppo:
            last = self.num_frames - 1
            for idx in self.cc.ff_in:
                if is_d(self.value(last, idx)):
                    return last, idx
        return None

    def fault_excited(self, frame: int = 0) -> bool:
        """True when the fault produces a D at its site in ``frame``.

        For a stem fault the injected net itself shows D; for a branch
        fault the site is the reading gate's input view.
        """
        if self.fault is None:
            return True
        site = self.value(frame, self._site_idx)
        if self._stem_idx is not None:
            return is_d(site)
        # branch fault: excited when the source's good value opposes stuck
        g = good_of(site)
        return g != X and g != self._stuck

    def excitation_possible(self, frame: int = 0) -> bool:
        """False once the site's good value is fixed at the stuck value."""
        if self.fault is None:
            return True
        g = self.good(frame, self._site_idx)
        return g == X or g != self._stuck

    def d_frontier(self) -> List[Tuple[int, int]]:
        """Gates with a D/D̄ input and an X-bearing output, as (frame, pos).

        Works on raw value words: a slot pair is D/D̄ when both two-bit
        halves are known (``p1 ^ p0 == 0b11``) and the good and faulty
        bits of ``p1`` differ; the output bears X when ``p1 & p0 != 0``.
        """
        frontier: List[Tuple[int, int]] = []
        gates = self.cc.gates
        pin_gate = self._pin_gate
        for frame in range(self.num_frames):
            v1, v0 = self.v1[frame], self.v0[frame]
            for pos, gate in enumerate(gates):
                out = gate.out
                if not (v1[out] & v0[out]):  # fully known output: not frontier
                    continue
                if pos == pin_gate:
                    if any(is_d(v) for v in self.effective_inputs(frame, pos)):
                        frontier.append((frame, pos))
                    continue
                for i in gate.fanin:
                    a1, a0 = v1[i], v0[i]
                    if (a1 ^ a0) == MASK2 and (a1 & 1) != (a1 >> 1):
                        frontier.append((frame, pos))
                        break
        return frontier

    def d_reaches_window_edge(self) -> bool:
        """True when a fault effect sits at the last frame's D inputs.

        Indicates the propagation window (not the logic) cut the search
        short — the caller must not claim untestability in that case.  A
        branch fault feeding a flip-flop's D pin counts as soon as it is
        excitable in the last frame: its effect only ever materialises one
        frame later.
        """
        last = self.num_frames - 1
        if any(is_d(self.value(last, i)) for i in self.cc.ff_in):
            return True
        if self._ff_pos is not None:
            g = self.good(last, self._site_idx)
            return g == X or g != self._stuck
        return False

    def x_path_exists(self, frontier: Sequence[Tuple[int, int]]) -> bool:
        """Check some frontier gate still has an all-X path to a PO."""
        return self.x_path_info(frontier)[0]

    def x_path_info(
        self, frontier: Sequence[Tuple[int, int]]
    ) -> Tuple[bool, bool]:
        """X-path reachability from the D-frontier.

        Returns:
            ``(po_reachable, edge_reachable)`` — whether an all-X path
            leads from some frontier gate to a primary output within the
            window, and whether one leads to a last-frame flip-flop D
            input (i.e. the fault effect could survive past the window,
            so failure must not be treated as proof of untestability).
        """
        if not frontier:
            return False, False
        cc = self.cc
        po_set = set(cc.po)
        last = self.num_frames - 1
        ff_in_pos = {idx: pos for pos, idx in enumerate(cc.ff_in)}
        seen: Set[Tuple[int, int]] = set()
        stack: List[Tuple[int, int]] = [
            (frame, cc.gates[pos].out) for frame, pos in frontier
        ]
        edge = False
        while stack:
            frame, idx = stack.pop()
            if (frame, idx) in seen:
                continue
            seen.add((frame, idx))
            val = self.value(frame, idx)
            if not (has_x(val) or is_d(val)):
                continue
            if idx in po_set:
                return True, edge
            if idx in ff_in_pos:
                if frame + 1 < self.num_frames:
                    stack.append((frame + 1, cc.ff_out[ff_in_pos[idx]]))
                elif frame == last:
                    edge = True
            for pos in cc.fanout_gates[idx]:
                out = cc.gates[pos].out
                if has_x(self.value(frame, out)):
                    stack.append((frame, out))
        return False, edge

    # ------------------------------------------------------------------
    # solution extraction
    # ------------------------------------------------------------------
    def extract_vectors(self, up_to_frame: int) -> List[List[int]]:
        """Good-slot PI values per frame, scalars in PI order (X allowed)."""
        return [
            [self.good(f, i) for i in self.cc.pi] for f in range(up_to_frame + 1)
        ]

    def required_state(self) -> Dict[str, int]:
        """Cared frame-0 flip-flop requirements, as {ff net name: 0/1}."""
        req: Dict[str, int] = {}
        for idx in self.cc.ff_out:
            g = self.good(0, idx)
            if g != X:
                req[self.cc.net_names[idx]] = g
        return req
