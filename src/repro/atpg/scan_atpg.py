"""Scan-based test generation (the combinational flow full scan enables).

With a scan chain inserted, sequential ATPG collapses to a combinational
problem per fault: choose any flip-flop state (it can be shifted in),
choose one primary-input vector, and observe fault effects either at the
primary outputs of the capture cycle or in the captured next state (it
can be shifted out).  Each generated test is the classic scan protocol::

    load:    chain-length shift cycles  (scan_enable=1, state enters)
    capture: one functional cycle       (scan_enable per the pattern)
    unload:  chain-length shift cycles  (captured state reaches scan_out)

The generator targets the *scanned* netlist's complete fault list — scan
cells included — validates every assembled sequence with the fault
simulator, and reports the same :class:`~repro.hybrid.results.RunResult`
records as the other generators, so the scan-versus-sequential trade-off
benchmarks read directly off the same tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..circuit.netlist import Circuit
from ..clock import monotonic
from ..circuit.scan import ScanChain, insert_scan, scan_load_sequence
from ..faults.collapse import collapse_faults
from ..faults.model import Fault
from ..hybrid.results import PassStats, RunResult
from ..simulation.compiled import CompiledCircuit, compile_circuit
from ..simulation.encoding import X
from ..simulation.fault_sim import FaultSimulator
from .podem import Limits, PodemEngine, SearchStatus
from .scoap import compute_testability


@dataclass
class ScanAtpgParams:
    """Budgets for the scan flow.

    Attributes:
        max_backtracks: PODEM budget per fault.
        time_limit: overall wall-clock budget in seconds (None = none).
    """

    max_backtracks: int = 1000
    time_limit: Optional[float] = None


class ScanTestGenerator:
    """Combinational-style ATPG over a full-scan version of a circuit.

    Args:
        circuit: the *original* (unscanned) circuit; the generator inserts
            the chain itself and exposes it as :attr:`scanned` /
            :attr:`chain`.
        width: fault-simulation word width.
    """

    def __init__(self, circuit: Circuit, width: int = 64):
        self.original = circuit
        self.scanned, self.chain = insert_scan(circuit)
        self.cc: CompiledCircuit = compile_circuit(self.scanned)
        self.meas = compute_testability(self.cc)
        self.sim = FaultSimulator(self.cc, width=width)
        self.n_pi_orig = len(circuit.inputs)

    # ------------------------------------------------------------------
    def run(
        self,
        params: Optional[ScanAtpgParams] = None,
        faults: Optional[Sequence[Fault]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> RunResult:
        """Generate scan tests for every fault of the scanned netlist."""
        params = params or ScanAtpgParams()
        tick = clock or monotonic
        start = tick()
        remaining: List[Fault] = (
            list(faults) if faults is not None else collapse_faults(self.scanned)
        )
        result = RunResult(
            circuit_name=self.scanned.name,
            generator="SCAN",
            total_faults=len(remaining),
        )
        test_set: List[List[int]] = []
        good_state: List[int] = [X] * len(self.cc.ff_out)
        fault_states: Dict[Fault, List[int]] = {}
        detected: Dict[Fault, int] = {}
        untestable: List[Fault] = []
        aborted = 0
        targeted = 0

        deadline = (
            start + params.time_limit if params.time_limit is not None else None
        )
        for fault in list(remaining):
            if fault in detected:
                continue
            if deadline and tick() >= deadline:
                break
            targeted += 1
            sequence, proof = self._target(fault, params, deadline, tick)
            if proof:
                untestable.append(fault)
                remaining.remove(fault)
                continue
            if sequence is None:
                aborted += 1
                continue
            trial = {f: list(s) for f, s in fault_states.items()}
            outcome = self.sim.run(
                sequence, remaining, good_state=good_state, fault_states=trial
            )
            if fault not in outcome.detected:
                aborted += 1
                continue
            base = len(test_set)
            result.blocks.append(base)
            test_set.extend(sequence)
            good_state = outcome.good_state
            fault_states = trial
            for f in outcome.detected:
                detected[f] = base
            remaining = [f for f in remaining if f not in outcome.detected]

        result.passes.append(
            PassStats(
                number=1,
                approach="scan",
                detected=len(detected),
                vectors=len(test_set),
                time_s=tick() - start,
                untestable=len(untestable),
                targeted=targeted,
                aborted=aborted,
            )
        )
        result.test_set = test_set
        result.detected = detected
        result.untestable = untestable
        return result

    # ------------------------------------------------------------------
    def _target(self, fault: Fault, params: ScanAtpgParams, deadline, tick):
        """One scan test (load + capture + unload), or an untestable proof."""
        engine = PodemEngine(
            self.cc,
            fault=fault,
            num_frames=1,
            testability=self.meas,
            observe_ppo=True,
        )
        limits = Limits(max_backtracks=params.max_backtracks,
                        deadline=deadline, clock=tick)
        sol = engine.run(limits)
        if sol is None:
            if engine.status is SearchStatus.EXHAUSTED and not engine.window_hit:
                return None, True  # combinationally untestable, even with scan
            return None, False

        load = scan_load_sequence(
            self.chain, sol.required_state, self.n_pi_orig
        )
        capture = [0 if v == X else v for v in sol.vectors[0]]
        unload = [
            [0] * self.n_pi_orig + [1, 0] for _ in range(self.chain.length)
        ]
        return load + [capture] + unload, False
