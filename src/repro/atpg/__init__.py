"""Deterministic ATPG: PODEM over unrolled time frames, HITEC-style engine."""

from .values import D, DBAR, MASK2, ONE, XX, ZERO, faulty_of, good_of, has_x, is_d, is_known, make9, show9
from .scoap import HARD, Testability, compute_testability
from .unrolled import UnrolledModel
from .podem import Limits, PodemEngine, SearchStatus, Solution
from .constraints import InputConstraints, UNCONSTRAINED
from .justify import JustifyResult, JustifyStatus, justify_state
from .scan_atpg import ScanAtpgParams, ScanTestGenerator
from .hitec import (
    FlowCounters,
    Justifier,
    SequentialTestGenerator,
    TestGenResult,
    TestGenStatus,
)

__all__ = [
    "D",
    "DBAR",
    "FlowCounters",
    "HARD",
    "InputConstraints",
    "Justifier",
    "JustifyResult",
    "JustifyStatus",
    "Limits",
    "MASK2",
    "ONE",
    "PodemEngine",
    "SearchStatus",
    "ScanAtpgParams",
    "ScanTestGenerator",
    "SequentialTestGenerator",
    "Solution",
    "Testability",
    "UNCONSTRAINED",
    "TestGenResult",
    "TestGenStatus",
    "UnrolledModel",
    "XX",
    "ZERO",
    "compute_testability",
    "faulty_of",
    "good_of",
    "has_x",
    "is_d",
    "is_known",
    "justify_state",
    "make9",
    "show9",
]
