"""Durable, resumable, multi-process ATPG campaign orchestration.

A *campaign* runs the hybrid test generator over many circuits' fault
lists as a fleet of bounded work items: each circuit's collapsed fault
list is partitioned into per-fault items (or larger shards) with
deterministic seeds, and items execute inline or across a pool of forked
worker processes with per-item timeouts, heartbeats, and bounded
retries.  The pool is warm-forked — the parent compiles circuits,
computes SCOAP, collapses faults, and warms simulation kernels *before*
forking (:mod:`~repro.campaign.warm`), so workers inherit everything
copy-on-write — and dispatch is lease-based work stealing: small
adaptive batches per worker, revoked and reassigned when a worker runs
dry.  With ``knowledge_broadcast`` on, workers additionally share proven
justification facts through a live side channel
(:mod:`repro.knowledge.broadcast`).  Every state transition lands in an
append-only JSONL journal, so a campaign killed at any instant resumes
to the same final test set and coverage an uninterrupted run would have
produced.  The merge stage re-fault-simulates all accepted sequences
across shards, crediting incidental detections and dropping redundant
sequences.
"""

from .journal import (
    JOURNAL_SCHEMA,
    Journal,
    JournalState,
    JournalTail,
    read_events,
)
from .merge import CampaignResult, CircuitMergeResult, merge_campaign
from .warm import CampaignWarmState, CircuitWarmState
from .queue import (
    ItemState,
    WorkItem,
    WorkQueue,
    build_items,
    seed_for_attempt,
    shard_faults,
)
from .runner import CampaignRunner
from .spec import (
    SPEC_SCHEMA,
    CampaignCancelled,
    CampaignError,
    CampaignSpec,
    derive_seed,
)
from .worker import ItemOutcome, run_item, worker_main

__all__ = [
    "CampaignCancelled",
    "CampaignError",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignWarmState",
    "CircuitMergeResult",
    "CircuitWarmState",
    "ItemOutcome",
    "ItemState",
    "JOURNAL_SCHEMA",
    "Journal",
    "JournalState",
    "JournalTail",
    "SPEC_SCHEMA",
    "WorkItem",
    "WorkQueue",
    "build_items",
    "derive_seed",
    "merge_campaign",
    "read_events",
    "run_item",
    "seed_for_attempt",
    "shard_faults",
    "worker_main",
]
