"""Durable, resumable, multi-process ATPG campaign orchestration.

A *campaign* runs the hybrid test generator over many circuits' fault
lists as a fleet of bounded work items: each circuit's collapsed fault
list is partitioned into shards, each shard becomes a work item with a
deterministic seed, and items execute inline or across forked worker
processes with per-item timeouts, heartbeats, and bounded retries.
Every state transition lands in an append-only JSONL journal, so a
campaign killed at any instant resumes to the same final test set and
coverage an uninterrupted run would have produced.  The merge stage
re-fault-simulates all accepted sequences across shards, crediting
incidental detections and dropping redundant sequences.
"""

from .journal import JOURNAL_SCHEMA, Journal, JournalState, read_events
from .merge import CampaignResult, CircuitMergeResult, merge_campaign
from .queue import (
    ItemState,
    WorkItem,
    WorkQueue,
    build_items,
    seed_for_attempt,
    shard_faults,
)
from .runner import CampaignRunner
from .spec import SPEC_SCHEMA, CampaignError, CampaignSpec, derive_seed
from .worker import ItemOutcome, run_item, worker_main

__all__ = [
    "CampaignError",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CircuitMergeResult",
    "ItemOutcome",
    "ItemState",
    "JOURNAL_SCHEMA",
    "Journal",
    "JournalState",
    "SPEC_SCHEMA",
    "WorkItem",
    "WorkQueue",
    "build_items",
    "derive_seed",
    "merge_campaign",
    "read_events",
    "run_item",
    "seed_for_attempt",
    "shard_faults",
    "worker_main",
]
