"""Append-only campaign journal: durability and resume in one JSONL file.

Every state transition the runner makes is appended as one JSON line and
fsynced, so the journal survives SIGKILL of the campaign at any instant.
``repro campaign resume`` replays the file: items with a ``item_done``
event keep their recorded results (including accepted vectors and their
``repro-run-report/v1`` payloads); items that were merely started are
rerun from scratch with their original seeds.  The final line of a killed
process may be truncated — the reader tolerates exactly that, and the
writer drops the torn (never durable) tail before appending.

Event types (all carry ``ts``):

``campaign``        — campaign header: schema, spec, spec hash, item count.
``items``           — the item catalogue (ids + fault hashes), for drift
                      detection on resume.
``item_started``    — an attempt began (item id, attempt, worker pid).
``heartbeat``       — a worker's liveness beacon for its running item.
``item_done``       — attempt finished; carries the full item payload.
``item_failed``     — attempt raised or timed out; carries the error.
``item_interrupted``— a worker held the item (running or leased) when it
                      died or was revoked; the item was requeued without
                      consuming an attempt.
``lease``           — the runner granted a worker a batch of items.
``steal``           — a worker honoured a revoke; the named items went
                      back to the shared queue for reassignment.
``merged``          — the merge stage ran; carries the campaign summary.

``lease`` and ``steal`` are diagnostic: replay reconstructs state from
the ``item_*`` events alone (unknown or extra event types are ignored),
so journals from older runners resume under newer ones and vice versa.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..clock import wall
from .spec import CampaignError

#: Identifier embedded in the journal's campaign header line.
JOURNAL_SCHEMA = "repro-campaign-journal/v1"


class Journal:
    """Append-only JSONL writer with per-event fsync durability."""

    def __init__(self, path: str, clock: Callable[[], float] = wall):
        self.path = path
        self.clock = clock
        self._handle: Optional[io.TextIOWrapper] = None

    def _open(self) -> io.TextIOWrapper:
        if self._handle is None:
            # a killed writer can leave a torn final line (no trailing
            # newline); that event was never durable, so drop it before
            # appending — otherwise it would corrupt the middle of the file
            if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
                with open(self.path, "r+b") as existing:
                    data = existing.read()
                    if not data.endswith(b"\n"):
                        keep = data.rfind(b"\n") + 1
                        existing.truncate(keep)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, event: Dict[str, Any]) -> None:
        """Write one event durably (flush + fsync)."""
        handle = self._open()
        event = dict(event)
        event.setdefault("ts", round(self.clock(), 3))
        handle.write(json.dumps(event, separators=(",", ":")) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class JournalTail:
    """Incremental torn-tail-tolerant journal reader.

    The single reader implementation behind both the resume path
    (:func:`read_events` drains a journal in one :meth:`poll`) and live
    consumers such as the service's SSE streams, which keep one tail per
    stream and poll it while the campaign is still writing.

    Only byte ranges ending in a newline are ever consumed: a torn final
    line — a mid-write kill, or a concurrent writer whose line has not
    fully landed yet — stays unread until it either completes or the
    writer truncates it away on reopen.  Because the writer only ever
    truncates a newline-less tail, the consumed offset can never point
    past a truncation, so tailing a live journal is race-free.
    """

    def __init__(self, path: str):
        self.path = path
        #: byte offset of the first unconsumed line
        self.offset = 0
        #: complete lines consumed so far (for error messages)
        self.lines = 0

    def poll(self) -> List[Dict[str, Any]]:
        """Every event that became durable since the last poll.

        A journal that does not exist yet reads as empty (the campaign
        may not have started); a journal that *shrank* (rewritten from
        scratch) is re-read from the top.
        """
        try:
            if os.path.getsize(self.path) <= self.offset:
                return []
        except OSError:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self.offset)
            data = handle.read()
        keep = data.rfind(b"\n") + 1  # never consume a torn tail
        events: List[Dict[str, Any]] = []
        for raw in data[:keep].split(b"\n"):
            raw = raw.strip()
            if not raw:
                continue
            self.lines += 1
            try:
                events.append(json.loads(raw.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise CampaignError(
                    f"{self.path}:{self.lines}: corrupt journal line"
                ) from None
        self.offset += keep
        return events


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse a journal, tolerating a torn final line from a killed writer."""
    with open(path, "r", encoding="utf-8"):
        pass  # a missing journal is the caller's error, not an empty one
    return JournalTail(path).poll()


@dataclass
class JournalState:
    """Campaign state reconstructed by replaying a journal.

    Attributes:
        spec_data: the spec document from the campaign header.
        spec_hash: spec hash recorded at campaign start.
        item_hashes: item id -> fault hash from the catalogue event.
        done: item id -> the *first* recorded result payload.  First wins:
            once a result is durable it is final, so a duplicate event
            (e.g. a worker that raced a requeue) cannot change history.
        failed: item id -> last error for permanently failed items.
        attempts: item id -> failed attempts recorded so far.
        started: item ids with a started attempt and no terminal event.
        merged: the merge summary, when the campaign completed.
    """

    spec_data: Dict[str, Any] = field(default_factory=dict)
    spec_hash: str = ""
    item_hashes: Dict[str, str] = field(default_factory=dict)
    done: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    failed: Dict[str, str] = field(default_factory=dict)
    attempts: Dict[str, int] = field(default_factory=dict)
    started: Dict[str, int] = field(default_factory=dict)
    merged: Optional[Dict[str, Any]] = None

    @classmethod
    def replay(cls, path: str) -> "JournalState":
        state = cls()
        for event in read_events(path):
            kind = event.get("type")
            item_id = event.get("item")
            if kind == "campaign":
                if event.get("schema") != JOURNAL_SCHEMA:
                    raise CampaignError(
                        f"journal schema {event.get('schema')!r} is not "
                        f"{JOURNAL_SCHEMA!r}"
                    )
                state.spec_data = event.get("spec", {})
                state.spec_hash = event.get("spec_hash", "")
            elif kind == "items":
                state.item_hashes = {
                    entry["item"]: entry["fault_hash"]
                    for entry in event.get("catalogue", [])
                }
            elif kind == "item_started":
                state.started[item_id] = event.get("attempt", 1)
            elif kind == "item_done":
                state.done.setdefault(item_id, event.get("payload", {}))
                state.started.pop(item_id, None)
                state.failed.pop(item_id, None)
            elif kind == "item_failed":
                state.attempts[item_id] = event.get("attempt", 1)
                state.failed[item_id] = event.get("error", "unknown")
                state.started.pop(item_id, None)
            elif kind == "item_interrupted":
                state.started.pop(item_id, None)
            elif kind == "merged":
                state.merged = event.get("summary", {})
        if not state.spec_data:
            raise CampaignError(f"{path}: no campaign header event")
        # permanently-failed means: failed with no later success
        state.failed = {
            item_id: error
            for item_id, error in state.failed.items()
            if item_id not in state.done
        }
        return state
