"""Campaign worker processes: bounded, heartbeat-emitting item execution.

:func:`run_item` is the single place a work item turns into ATPG results —
the runner calls it inline in single-worker mode and
:func:`worker_main` calls it inside each forked worker process, so both
execution modes produce byte-identical payloads.  Each item builds its own
:class:`~repro.hybrid.driver.HybridTestGenerator` restricted to the item's
fault shard and runs the spec's schedule under the item's wall-clock
deadline; the worker's heartbeat thread keeps beaconing while the (single
threaded, GIL-holding) ATPG loop runs, so the parent can tell a slow item
from a dead process.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..clock import monotonic
from ..hybrid.driver import HybridTestGenerator
from ..circuits.resolve import resolve_circuit
from ..knowledge import KnowledgeError, StateKnowledge, load_store_for
from .queue import WorkItem, _hash_faults, shard_faults
from .spec import CampaignError, CampaignSpec


@dataclass
class ItemOutcome:
    """Durable result payload of one completed work item.

    Everything the merge stage and the journal need: the accepted vectors
    with their block offsets, the per-shard dispositions, the item's
    ``repro-run-report/v1`` document, and the item's serialized
    ``repro-knowledge/v1`` store (so the merge stage can union knowledge
    across shards and resumes can replay it from the journal).
    """

    item_id: str
    circuit: str
    seed: int
    vectors: List[List[int]] = field(default_factory=list)
    blocks: List[int] = field(default_factory=list)
    detected: List[str] = field(default_factory=list)
    untestable: List[str] = field(default_factory=list)
    total_faults: int = 0
    timed_out: bool = False
    report: Optional[Dict[str, Any]] = None
    knowledge: Optional[Dict[str, Any]] = None
    knowledge_stats: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def run_item(
    spec: CampaignSpec,
    item: WorkItem,
    clock: Optional[Callable[[], float]] = None,
) -> ItemOutcome:
    """Execute one work item; deterministic given the item's seed.

    Raises :class:`CampaignError` when the circuit's current fault list no
    longer matches the hash recorded when the campaign was planned (code
    or netlist drift between run and resume would silently grade the
    wrong faults otherwise).
    """
    if spec.synthetic_item_seconds is not None:
        # drill mode: a fixed-cost stand-in for ATPG work, so benchmarks
        # measure the orchestration layer itself
        time.sleep(spec.synthetic_item_seconds)
        return ItemOutcome(
            item_id=item.item_id,
            circuit=item.circuit,
            seed=item.seed,
            total_faults=item.count,
        )
    tick = clock or monotonic
    circuit = resolve_circuit(item.circuit)
    faults = shard_faults(spec, item.circuit)
    shard = faults[item.start : item.start + item.count]
    if _hash_faults(shard) != item.fault_hash:
        raise CampaignError(
            f"{item.item_id}: fault shard drifted since the campaign was "
            f"planned (hash mismatch) — start a fresh campaign"
        )
    # Each item owns an isolated knowledge store (optionally preloaded
    # from the spec's fixed sidecar file): items never see each other's
    # in-flight facts, so reruns and resumes reproduce results exactly.
    knowledge: "bool | StateKnowledge" = spec.knowledge
    if spec.knowledge and spec.knowledge_file:
        try:
            preloaded = load_store_for(
                spec.knowledge_file, circuit.name, "unconstrained"
            )
        except (OSError, KnowledgeError):
            preloaded = None  # an accelerator, never a failed item
        if preloaded is not None:
            knowledge = preloaded
    driver = HybridTestGenerator(
        circuit,
        seed=item.seed,
        width=spec.width,
        faults=shard,
        backend=spec.backend,
        generator_name="HITEC" if spec.baseline else "GA-HITEC",
        clock=clock,
        knowledge=knowledge,
    )
    deadline = (
        tick() + spec.item_timeout_s
        if spec.item_timeout_s is not None
        else None
    )
    result = driver.run(spec.schedule_for(circuit), deadline=deadline)
    return ItemOutcome(
        item_id=item.item_id,
        circuit=item.circuit,
        seed=item.seed,
        vectors=[list(v) for v in result.test_set],
        blocks=list(result.blocks),
        detected=sorted(str(f) for f in result.detected),
        untestable=sorted(str(f) for f in result.untestable),
        total_faults=item.count,
        timed_out=result.deadline_expired,
        report=result.report.to_dict() if result.report else None,
        knowledge=(
            driver.knowledge.to_dict()
            if driver.knowledge is not None
            and (len(driver.knowledge) or driver.knowledge.seed_pool)
            else None
        ),
        knowledge_stats=dict(result.knowledge_stats),
    )


class _Heartbeat(threading.Thread):
    """Beacon thread: emits (worker, item) liveness while an item runs."""

    def __init__(self, result_q, worker_id: int, item_id: str,
                 interval: float):
        super().__init__(daemon=True)
        self._result_q = result_q
        self._worker_id = worker_id
        self._item_id = item_id
        self._interval = interval
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            try:
                self._result_q.put(
                    ("heartbeat", self._worker_id, self._item_id, None)
                )
            except Exception:
                return  # parent gone; the worker is about to die anyway

    def stop(self) -> None:
        """Ask the beacon to exit; safe to call more than once."""
        self._halt.set()


def worker_main(
    worker_id: int,
    task_q,
    result_q,
    spec_data: Dict[str, Any],
    heartbeat_interval: float = 0.5,
) -> None:
    """Worker-process entry point: drain the task queue until poisoned.

    Messages back to the parent (all on ``result_q``):

    * ``("started", worker_id, item_id, (attempt, pid))``
    * ``("heartbeat", worker_id, item_id, None)``
    * ``("done", worker_id, item_id, payload_dict)``
    * ``("failed", worker_id, item_id, error_string)``
    """
    spec = CampaignSpec.from_dict(spec_data)
    while True:
        message = task_q.get()
        if message is None:
            return
        item, attempt = message
        result_q.put(("started", worker_id, item.item_id,
                      (attempt, os.getpid())))
        beacon = _Heartbeat(result_q, worker_id, item.item_id,
                            heartbeat_interval)
        beacon.start()
        try:
            outcome = run_item(spec, item)
            result_q.put(("done", worker_id, item.item_id,
                          outcome.to_dict()))
        except Exception as exc:  # noqa: BLE001 — report, don't die
            result_q.put(("failed", worker_id, item.item_id,
                          f"{type(exc).__name__}: {exc}"))
        finally:
            beacon.stop()
            beacon.join(timeout=2.0)
