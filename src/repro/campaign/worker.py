"""Campaign worker processes: leased, heartbeat-emitting item execution.

:func:`run_item` is the single place a work item turns into ATPG results —
the runner calls it inline in single-worker mode and
:func:`worker_main` calls it inside each forked worker process, so both
execution modes produce byte-identical payloads.  Each item builds its own
:class:`~repro.hybrid.driver.HybridTestGenerator` restricted to the item's
fault shard and runs the spec's schedule under the item's wall-clock
deadline; the worker's heartbeat thread keeps beaconing while the (single
threaded, GIL-holding) ATPG loop runs, so the parent can tell a slow item
from a dead process.

Pooled workers speak the lease protocol: the parent grants small batches
of items (``("lease", [(item, attempt), ...])``), the worker holds them in
a local backlog and runs them in order, and the parent may claw unstarted
backlog back (``("revoke", [item_ids])``) to feed an idle peer — the
worker answers with a ``released`` message naming exactly the items it
gave up, and those are the only items the parent may reassign.  Every
artifact an item needs (compiled circuit, SCOAP, collapsed faults, the
knowledge preload) is served from the parent's pre-fork warm state
(:mod:`repro.campaign.warm`) when present, so a per-fault item pays only
for solving.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from queue import Empty
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..clock import monotonic
from ..hybrid.driver import HybridTestGenerator
from ..circuits.resolve import resolve_circuit
from ..knowledge import (
    BroadcastKnowledge,
    KnowledgeChannel,
    KnowledgeError,
    StateKnowledge,
    load_store_for,
    model_fingerprint,
)
from ..policy.model import FaultPolicy, PolicyError
from ..policy.schedule import PolicyPlan
from ..telemetry import TelemetryRecorder
from . import warm
from .queue import WorkItem, _hash_faults, shard_faults
from .spec import CampaignError, CampaignSpec


@dataclass
class ItemOutcome:
    """Durable result payload of one completed work item.

    Everything the merge stage and the journal need: the accepted vectors
    with their block offsets, the per-shard dispositions, the item's
    ``repro-run-report/v1`` document, and the item's serialized
    ``repro-knowledge/v1`` store (so the merge stage can union knowledge
    across shards and resumes can replay it from the journal).
    """

    item_id: str
    circuit: str
    seed: int
    vectors: List[List[int]] = field(default_factory=list)
    blocks: List[int] = field(default_factory=list)
    detected: List[str] = field(default_factory=list)
    untestable: List[str] = field(default_factory=list)
    total_faults: int = 0
    timed_out: bool = False
    report: Optional[Dict[str, Any]] = None
    knowledge: Optional[Dict[str, Any]] = None
    knowledge_stats: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def _item_knowledge(
    spec: CampaignSpec,
    circuit_name: str,
    warm_circuit: Optional[warm.CircuitWarmState],
    channel: Optional[KnowledgeChannel],
) -> "bool | StateKnowledge":
    """The knowledge store one item should run with.

    Isolated-store semantics (the default): each item owns a private
    store, optionally preloaded from the spec's fixed sidecar, so reruns
    and resumes reproduce results exactly.  With broadcast on and a
    channel available, the private store additionally publishes novel
    facts and folds peers' — sound, but timing-dependent.
    """
    if not spec.knowledge:
        return False
    preloaded: Optional[StateKnowledge] = None
    if warm_circuit is not None:
        preloaded = warm_circuit.knowledge_store()
    elif spec.knowledge_file:
        try:
            preloaded = load_store_for(
                spec.knowledge_file,
                circuit_name,
                model_fingerprint("unconstrained", spec.fault_model),
            )
        except (OSError, KnowledgeError):
            preloaded = None  # an accelerator, never a failed item
    if channel is not None and spec.knowledge_broadcast:
        store = BroadcastKnowledge(
            circuit=circuit_name,
            fingerprint=model_fingerprint("unconstrained", spec.fault_model),
            channel=channel,
        )
        if preloaded is not None:
            store.preload(preloaded)
        return store
    if preloaded is not None:
        return preloaded
    return True


def _item_policy(
    spec: CampaignSpec,
    warm_circuit: Optional[warm.CircuitWarmState],
) -> "PolicyPlan | FaultPolicy | None":
    """The scheduling policy one item's driver should run under.

    Warm items get the plan precomputed at warm-build time; cold items
    load the artifact and let the driver build an identical plan (plan
    construction is deterministic, so both paths agree bit for bit).
    An unreadable artifact fails the item: the policy is named by the
    spec and affects results, unlike the knowledge accelerator.
    """
    if not spec.policy_file:
        return None
    if warm_circuit is not None:
        return warm_circuit.policy_plan
    try:
        return FaultPolicy.load(spec.policy_file)
    except PolicyError as exc:
        raise CampaignError(str(exc)) from exc


def run_item(
    spec: CampaignSpec,
    item: WorkItem,
    clock: Optional[Callable[[], float]] = None,
    channel: Optional[KnowledgeChannel] = None,
) -> ItemOutcome:
    """Execute one work item; deterministic given the item's seed.

    With ``channel`` set (pooled workers under ``knowledge_broadcast``),
    the item's store also trades facts with peers — see
    :mod:`repro.knowledge.broadcast` for the determinism tradeoff.

    Raises :class:`CampaignError` when the circuit's current fault list no
    longer matches the hash recorded when the campaign was planned (code
    or netlist drift between run and resume would silently grade the
    wrong faults otherwise).
    """
    if spec.synthetic_item_seconds is not None:
        # drill mode: a fixed-cost stand-in for ATPG work, so benchmarks
        # measure the orchestration layer itself
        time.sleep(spec.synthetic_item_seconds)
        return ItemOutcome(
            item_id=item.item_id,
            circuit=item.circuit,
            seed=item.seed,
            total_faults=item.count,
        )
    tick = clock or monotonic
    warm_state = warm.active_for(spec)
    warm_circuit = warm_state.get(item.circuit) if warm_state else None
    if warm_circuit is not None:
        circuit = warm_circuit.circuit
    else:
        circuit = resolve_circuit(item.circuit)
    faults = shard_faults(spec, item.circuit)
    shard = faults[item.start : item.start + item.count]
    if _hash_faults(shard) != item.fault_hash:
        raise CampaignError(
            f"{item.item_id}: fault shard drifted since the campaign was "
            f"planned (hash mismatch) — start a fresh campaign"
        )
    knowledge = _item_knowledge(spec, circuit.name, warm_circuit, channel)
    policy = _item_policy(spec, warm_circuit)
    # policy-steered items carry a real recorder so the campaign report
    # rolls up the atpg.policy.* counters (reorders, skips, deferrals);
    # plain items keep the no-op recorder and their payloads unchanged
    recorder = TelemetryRecorder() if spec.policy_file else None
    driver = HybridTestGenerator(
        circuit,
        seed=item.seed,
        width=spec.width,
        faults=shard,
        backend=spec.backend,
        generator_name="HITEC" if spec.baseline else "GA-HITEC",
        clock=clock,
        knowledge=knowledge,
        testability=(
            warm_circuit.testability if warm_circuit is not None else None
        ),
        policy=policy,
        telemetry=recorder,
        fault_model=spec.fault_model,
    )
    deadline = (
        tick() + spec.item_timeout_s
        if spec.item_timeout_s is not None
        else None
    )
    result = driver.run(spec.schedule_for(circuit), deadline=deadline)
    return ItemOutcome(
        item_id=item.item_id,
        circuit=item.circuit,
        seed=item.seed,
        vectors=[list(v) for v in result.test_set],
        blocks=list(result.blocks),
        detected=sorted(str(f) for f in result.detected),
        untestable=sorted(str(f) for f in result.untestable),
        total_faults=item.count,
        timed_out=result.deadline_expired,
        report=result.report.to_dict() if result.report else None,
        knowledge=(
            driver.knowledge.to_dict()
            if driver.knowledge is not None
            and (len(driver.knowledge) or driver.knowledge.seed_pool)
            else None
        ),
        knowledge_stats=dict(result.knowledge_stats),
    )


class _Heartbeat(threading.Thread):
    """Beacon thread: emits (worker, item) liveness while an item runs."""

    def __init__(self, result_q, worker_id: int, item_id: str,
                 interval: float):
        super().__init__(daemon=True)
        self._result_q = result_q
        self._worker_id = worker_id
        self._item_id = item_id
        self._interval = interval
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            try:
                self._result_q.put(
                    ("heartbeat", self._worker_id, self._item_id, None)
                )
            except Exception:
                return  # parent gone; the worker is about to die anyway

    def stop(self) -> None:
        """Ask the beacon to exit; safe to call more than once."""
        self._halt.set()


def worker_main(
    worker_id: int,
    task_q,
    result_q,
    spec_data: Dict[str, Any],
    heartbeat_interval: float = 0.5,
    broadcast_dir: Optional[str] = None,
) -> None:
    """Worker-process entry point: serve leases until poisoned.

    Messages from the parent (all on ``task_q``):

    * ``("lease", [(item, attempt), ...])`` — append to the backlog.
    * ``("revoke", [item_id, ...])`` — give back any of these items that
      have not started; always answered with one ``released`` message.
    * ``None`` — drain nothing further and exit.

    Messages back to the parent (all on ``result_q``):

    * ``("started", worker_id, item_id, (attempt, pid))``
    * ``("heartbeat", worker_id, item_id, None)``
    * ``("done", worker_id, item_id, payload_dict)``
    * ``("failed", worker_id, item_id, error_string)``
    * ``("released", worker_id, None, [item_id, ...])``
    """
    spec = CampaignSpec.from_dict(spec_data)
    channel: Optional[KnowledgeChannel] = None
    if broadcast_dir is not None and spec.knowledge_broadcast:
        channel = KnowledgeChannel(broadcast_dir, f"w{worker_id}")
    backlog: Deque[Tuple[WorkItem, int]] = deque()
    poisoned = False

    def ingest(message: Any) -> None:
        nonlocal poisoned
        if message is None:
            poisoned = True
            return
        kind, payload = message
        if kind == "lease":
            backlog.extend(payload)
        elif kind == "revoke":
            wanted = set(payload)
            released = [
                item.item_id
                for item, _ in backlog
                if item.item_id in wanted
            ]
            if released:
                kept = [
                    entry
                    for entry in backlog
                    if entry[0].item_id not in set(released)
                ]
                backlog.clear()
                backlog.extend(kept)
            # always answer, even empty: the parent's steal bookkeeping
            # must learn which items it may (not) reassign
            result_q.put(("released", worker_id, None, released))

    try:
        while True:
            # absorb everything the parent queued (new leases, revokes)
            while True:
                try:
                    ingest(task_q.get_nowait())
                except Empty:
                    break
            if poisoned and not backlog:
                return
            if not backlog:
                message = task_q.get()  # idle: block for the next grant
                ingest(message)
                continue
            item, attempt = backlog.popleft()
            result_q.put(("started", worker_id, item.item_id,
                          (attempt, os.getpid())))
            beacon = _Heartbeat(result_q, worker_id, item.item_id,
                                heartbeat_interval)
            beacon.start()
            try:
                outcome = run_item(spec, item, channel=channel)
                result_q.put(("done", worker_id, item.item_id,
                              outcome.to_dict()))
            except Exception as exc:  # noqa: BLE001 — report, don't die
                result_q.put(("failed", worker_id, item.item_id,
                              f"{type(exc).__name__}: {exc}"))
            finally:
                beacon.stop()
                beacon.join(timeout=2.0)
    finally:
        if channel is not None:
            channel.close()
