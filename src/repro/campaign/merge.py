"""Campaign merge stage: shard results → one graded, compacted test set.

Per-item runs only know their own fault shard; the merge stage restores
the whole-circuit view.  For each circuit it concatenates the accepted
test sequences of every shard (in canonical item order, so the result is
independent of which worker finished first), then re-fault-simulates them
against the circuit's *full* target fault list via
:meth:`~repro.simulation.fault_sim.FaultSimulator.grade_blocks` — crediting
incidental cross-shard detections and dropping sequences that no longer
add coverage.  Per-item telemetry reports roll up into one campaign-level
``repro-run-report/v1`` document whose headline numbers are the merged
(cross-credited) truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..knowledge import KnowledgeError, StateKnowledge
from ..simulation.compiled import compile_circuit
from ..simulation.fault_sim import FaultSimulator
from ..circuits.resolve import resolve_circuit
from ..telemetry import Recorder, RunReport, merge_run_reports
from .queue import shard_faults
from .spec import CampaignSpec


@dataclass
class CircuitMergeResult:
    """Merged view of one circuit across all of its shards.

    Attributes:
        circuit: circuit specifier.
        vectors: merged test set (kept sequences, concatenated).
        blocks: starting offset of each kept sequence in ``vectors``.
        detected: faults detected by the merged set (names).
        total_faults: size of the circuit's target fault list.
        untestable: faults some shard proved untestable (names).
        dropped_sequences: shard sequences dropped as redundant.
    """

    circuit: str
    vectors: List[List[int]] = field(default_factory=list)
    blocks: List[int] = field(default_factory=list)
    detected: List[str] = field(default_factory=list)
    total_faults: int = 0
    untestable: List[str] = field(default_factory=list)
    dropped_sequences: int = 0

    @property
    def coverage(self) -> float:
        if not self.total_faults:
            return 0.0
        return len(self.detected) / self.total_faults


@dataclass
class CampaignResult:
    """Final outcome of a campaign: per-circuit merges plus the rollup.

    ``knowledge`` holds the per-circuit union of every item's serialized
    state-knowledge store (empty when the spec disables knowledge); the
    runner persists it as a ``repro-knowledge/v1`` sidecar.
    """

    name: str
    spec_hash: str
    circuits: Dict[str, CircuitMergeResult] = field(default_factory=dict)
    report: Optional[RunReport] = None
    items_done: int = 0
    items_failed: int = 0
    wall_time_s: float = 0.0
    knowledge: Dict[str, StateKnowledge] = field(default_factory=dict)
    knowledge_stats: Dict[str, int] = field(default_factory=dict)
    #: runner lifecycle timing: warm / fork / solve / merge wall seconds
    phase_times: Dict[str, float] = field(default_factory=dict)

    @property
    def total_faults(self) -> int:
        return sum(c.total_faults for c in self.circuits.values())

    @property
    def detected(self) -> int:
        return sum(len(c.detected) for c in self.circuits.values())

    @property
    def vectors(self) -> int:
        return sum(len(c.vectors) for c in self.circuits.values())

    @property
    def fault_coverage(self) -> float:
        total = self.total_faults
        return self.detected / total if total else 0.0

    def summary(self) -> str:
        lines = [
            f"campaign {self.name} [{self.spec_hash}]: "
            f"{self.items_done} items done, {self.items_failed} failed, "
            f"wall {self.wall_time_s:.2f}s",
        ]
        for name in sorted(self.circuits):
            c = self.circuits[name]
            lines.append(
                f"  {name:<10s} coverage {100.0 * c.coverage:5.1f}%  "
                f"vectors {len(c.vectors):>5d}  "
                f"untestable {len(c.untestable):>4d}  "
                f"redundant dropped {c.dropped_sequences}"
            )
        lines.append(
            f"  total      coverage {100.0 * self.fault_coverage:.1f}%  "
            f"vectors {self.vectors}"
        )
        return "\n".join(lines)

    def summary_dict(self) -> Dict[str, Any]:
        """Machine-readable digest (journaled by the merge event)."""
        return {
            "name": self.name,
            "spec_hash": self.spec_hash,
            "items_done": self.items_done,
            "items_failed": self.items_failed,
            "phase_times": {
                name: round(seconds, 3)
                for name, seconds in sorted(self.phase_times.items())
            },
            "total_faults": self.total_faults,
            "detected": self.detected,
            "vectors": self.vectors,
            "fault_coverage": round(self.fault_coverage, 6),
            "circuits": {
                name: {
                    "detected": len(c.detected),
                    "total_faults": c.total_faults,
                    "vectors": len(c.vectors),
                    "untestable": len(c.untestable),
                    "dropped_sequences": c.dropped_sequences,
                }
                for name, c in sorted(self.circuits.items())
            },
        }


def _sequences_of(payload: Dict[str, Any]) -> List[List[List[int]]]:
    """Split an item payload's flat vector list into accepted sequences."""
    vectors = payload.get("vectors") or []
    blocks = payload.get("blocks") or []
    sequences = []
    for i, start in enumerate(blocks):
        end = blocks[i + 1] if i + 1 < len(blocks) else len(vectors)
        sequences.append(vectors[start:end])
    return sequences


def _merge_knowledge(
    result: CampaignResult, circuit_name: str, doc: Dict[str, Any]
) -> None:
    """Union one item's serialized knowledge store into the campaign's.

    Invalid or incompatible documents (schema drift, fingerprint
    mismatch) are skipped: knowledge is an accelerator, never a
    correctness dependency, so a bad store must not fail the merge.
    """
    try:
        store = StateKnowledge.from_dict(doc)
        union = result.knowledge.get(circuit_name)
        if union is None:
            result.knowledge[circuit_name] = store
        else:
            union.merge(store)
    except (KnowledgeError, KeyError, TypeError, ValueError):
        pass


def merge_campaign(
    spec: CampaignSpec,
    payloads: Dict[str, Dict[str, Any]],
    telemetry: Optional[Recorder] = None,
) -> CampaignResult:
    """Merge item payloads (from the journal) into the campaign result.

    ``payloads`` maps item id -> the ``item_done`` payload dict.  Items
    are processed in sorted item-id order, which equals shard order, so
    the merged output is independent of worker scheduling.
    """
    result = CampaignResult(name=spec.name, spec_hash=spec.spec_hash())
    reports: List[RunReport] = []
    for circuit_name in spec.circuits:
        prefix = f"{circuit_name}/"
        item_ids = sorted(i for i in payloads if i.startswith(prefix))
        sequences: List[List[List[int]]] = []
        untestable: List[str] = []
        for item_id in item_ids:
            payload = payloads[item_id]
            sequences.extend(_sequences_of(payload))
            untestable.extend(payload.get("untestable") or [])
            if payload.get("report"):
                reports.append(RunReport.from_dict(payload["report"]))
            if payload.get("knowledge"):
                _merge_knowledge(result, circuit_name, payload["knowledge"])
            for key, value in (payload.get("knowledge_stats") or {}).items():
                result.knowledge_stats[key] = (
                    result.knowledge_stats.get(key, 0) + int(value)
                )
        circuit = resolve_circuit(circuit_name)
        faults = shard_faults(spec, circuit_name)
        merged = CircuitMergeResult(
            circuit=circuit_name,
            total_faults=len(faults),
            untestable=sorted(set(untestable)),
        )
        if sequences:
            sim = FaultSimulator(
                compile_circuit(circuit),
                width=spec.width,
                backend=spec.backend,
                telemetry=telemetry,
            )
            grade = sim.grade_blocks(sequences, faults, drop_redundant=True)
            for index in grade.kept:
                merged.blocks.append(len(merged.vectors))
                merged.vectors.extend(sequences[index])
            merged.detected = sorted(str(f) for f in grade.detected)
            merged.dropped_sequences = len(grade.dropped)
        result.circuits[circuit_name] = merged
    result.items_done = len(payloads)
    if reports:
        merged_report = merge_run_reports(
            reports, circuit=f"campaign:{spec.name}"
        )
        # overwrite per-item sums with the cross-credited merged truth
        merged_report.total_faults = result.total_faults
        merged_report.detected = result.detected
        merged_report.vectors = result.vectors
        merged_report.fault_coverage = result.fault_coverage
        result.report = merged_report
    return result
