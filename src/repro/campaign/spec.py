"""Campaign specifications: what an ATPG campaign runs, declaratively.

A :class:`CampaignSpec` names the circuits, the shared pass-schedule
parameters, the seed, and the fault-partitioning policy of one campaign.
Everything that affects *results* lives in the spec; everything that only
affects *execution* (worker count, heartbeat cadence) is a runner option,
so a campaign can be resumed under different resources and still produce
identical output.

Specs serialize to a versioned JSON document and hash canonically
(:meth:`CampaignSpec.spec_hash`); the journal records the hash so a resume
refuses to continue someone else's campaign.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, List, Optional, Tuple

from ..circuit.netlist import Circuit
from ..faults.model import (
    DEFAULT_FAULT_MODEL,
    FaultModelError,
    resolve_fault_model,
)
from ..hybrid.passes import PassConfig, gahitec_schedule, hitec_schedule

#: Identifier embedded in every serialized spec.
SPEC_SCHEMA = "repro-campaign-spec/v1"


class CampaignError(RuntimeError):
    """A campaign spec, journal, or resume attempt is invalid."""


class CampaignCancelled(CampaignError):
    """A campaign was cancelled cooperatively via the runner's stop check.

    The journal stays durable: every completed item's result survives,
    and ``resume`` continues the campaign exactly where it stopped.
    """


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one ATPG campaign.

    Attributes:
        circuits: circuit specifiers, as the CLI resolves them (built-in
            benchmark names or ``.bench``/``.v`` paths).
        name: campaign label, recorded in journals and reports.
        seed: base seed; per-item seeds derive from it deterministically.
        shard_size: maximum collapsed faults per work item.  Defaults to
            1 — per-fault items — so the pool's work-stealing dispatch
            can rebalance at the granularity where one hard fault cannot
            straggle a whole shard.  Larger shards only make sense when
            journal size matters more than load balance.
        passes: number of schedule passes per item.
        seq_len: GA sequence length ``x`` (0 = per-circuit default,
            ``4 * sequential_depth`` clamped to at least 4).
        time_scale: fraction of the paper's per-fault wall-clock limits;
            ``None`` disables them, which keeps items deterministic and is
            what campaign resume equality relies on.
        backtracks: pass-1 PODEM backtrack budget.
        justify_depth: deterministic reverse-time justification frame
            bound.  The default (16) matches the schedule builders;
            wall-clock-free campaigns on deeper circuits shrink it so the
            deterministic passes stay polynomial (every budget must then
            be structural).  Serialized only when non-default, so
            existing specs keep their hash.
        baseline: run the deterministic HITEC baseline schedule instead of
            GA-HITEC.
        backend: simulation backend for every item (``None`` = default).
        width: fault-simulation word width.
        fault_limit: cap each circuit's collapsed fault list to its first
            N entries (smoke tests and CI drills; ``None`` = all).
        item_timeout_s: per-item wall-clock budget; a timed-out item is
            retried with a perturbed seed, and its final attempt keeps the
            partial result.
        max_attempts: total attempts per item (crashes of the *campaign*
            do not consume attempts — an interrupted item is simply rerun
            with its original seed so resumes stay deterministic).
        synthetic_item_seconds: drill mode — replace each item's ATPG run
            with a fixed-duration synthetic workload, so orchestration
            overhead and scaling can be measured independently of ATPG
            cost and host core count (benchmarks and failure drills only).
        knowledge: per-item cross-fault state-knowledge reuse (each item
            builds its own isolated store, so results stay deterministic
            under resume); the merge stage unions every item's store into
            a ``repro-knowledge/v1`` sidecar next to the journal.
        knowledge_file: optional ``repro-knowledge/v1`` sidecar preloaded
            into every item's store (a fixed input, so determinism holds).
        policy_file: optional ``repro-policy/v1`` artifact (trained via
            ``repro train-policy``) applied to every item: faults are
            reordered cheap-first and passes predicted not to resolve a
            fault skip it, with the schedule's final pass always
            targeting everything remaining (the mop-up safety net).
            Lives in the spec because it affects results; serialized
            only when set, so policy-less specs keep the hash (and
            journal identity) they had before the field existed.
        fault_model: registered fault-model name every item targets
            (``"stuck_at"`` or ``"transition"``).  Lives in the spec
            because it defines the fault universe and detection
            semantics; serialized only when non-default, so stuck-at
            specs keep the hash (and journal identity) they had before
            the field existed.
        knowledge_broadcast: live cross-worker fact sharing.  When on,
            pooled workers publish proven justified/unjustifiable states
            to a side channel next to the journal and fold peers' facts
            into their own stores mid-run.  Facts are sound, so results
            stay valid — but an item's trajectory then depends on fact
            arrival timing, so broadcast campaigns trade the strict
            bit-equality (across worker counts and resumes) of isolated
            stores for wall-clock speed.  Off by default; lives in the
            spec because it affects results.
    """

    circuits: Tuple[str, ...]
    name: str = "campaign"
    seed: int = 0
    shard_size: int = 1
    passes: int = 3
    seq_len: int = 0
    time_scale: Optional[float] = None
    backtracks: int = 100
    justify_depth: int = 16
    baseline: bool = False
    backend: Optional[str] = None
    width: int = 64
    fault_limit: Optional[int] = None
    item_timeout_s: Optional[float] = None
    max_attempts: int = 3
    synthetic_item_seconds: Optional[float] = None
    knowledge: bool = True
    knowledge_file: Optional[str] = None
    knowledge_broadcast: bool = False
    policy_file: Optional[str] = None
    fault_model: str = "stuck_at"

    def __post_init__(self) -> None:
        if not self.circuits:
            raise CampaignError("campaign needs at least one circuit")
        if self.shard_size < 1:
            raise CampaignError("shard_size must be at least 1")
        if self.passes < 1:
            raise CampaignError("passes must be at least 1")
        if self.max_attempts < 1:
            raise CampaignError("max_attempts must be at least 1")
        if self.justify_depth < 1:
            raise CampaignError("justify_depth must be at least 1")
        try:
            resolve_fault_model(self.fault_model)
        except FaultModelError as exc:
            raise CampaignError(str(exc)) from exc
        # tuple-ify so specs parsed from JSON lists hash identically
        if not isinstance(self.circuits, tuple):
            object.__setattr__(self, "circuits", tuple(self.circuits))

    # -- schedules -----------------------------------------------------
    def schedule_for(self, circuit: Circuit) -> List[PassConfig]:
        """The pass schedule every work item of ``circuit`` runs."""
        if self.baseline:
            return hitec_schedule(
                num_passes=self.passes,
                time_scale=self.time_scale,
                backtrack_base=self.backtracks,
                justify_depth=self.justify_depth,
            )
        x = self.seq_len or max(4, 4 * circuit.sequential_depth)
        return gahitec_schedule(
            x=x,
            num_passes=self.passes,
            time_scale=self.time_scale,
            backtrack_base=self.backtracks,
            justify_depth=self.justify_depth,
        )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["circuits"] = list(self.circuits)
        data["schema"] = SPEC_SCHEMA
        # serialized only when on: specs that never opt in keep the hash
        # (and journal identity) they had before the field existed
        if not self.knowledge_broadcast:
            del data["knowledge_broadcast"]
        if self.policy_file is None:
            del data["policy_file"]
        if self.justify_depth == 16:
            del data["justify_depth"]
        if self.fault_model == DEFAULT_FAULT_MODEL:
            del data["fault_model"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        if not isinstance(data, dict):
            raise CampaignError("campaign spec must be a JSON object")
        schema = data.get("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise CampaignError(
                f"spec schema must be {SPEC_SCHEMA!r}, got {schema!r}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known - {"schema"}
        if unknown:
            raise CampaignError(
                f"unknown spec keys: {', '.join(sorted(unknown))}"
            )
        kwargs = {k: v for k, v in data.items() if k in known}
        if "circuits" in kwargs:
            kwargs["circuits"] = tuple(kwargs["circuits"])
        return cls(**kwargs)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def spec_hash(self) -> str:
        """Canonical content hash; the journal's identity check."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def derive_seed(base: int, token: str) -> int:
    """Deterministic, platform-stable seed derivation for items/attempts."""
    return (base * 0x9E3779B1 + zlib.crc32(token.encode("utf-8"))) & 0x7FFFFFFF
