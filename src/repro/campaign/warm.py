"""Warm-fork state: build per-circuit ATPG artifacts once, before forking.

A cold campaign worker re-derives everything per item: resolve the
circuit, compile it, compute SCOAP testability, collapse the fault
universe, and (under the codegen backend) compile simulation kernels.
For per-fault work items that fixed cost dwarfs the ATPG itself.  The
warm-fork protocol moves all of it into the *parent* before any worker
exists:

1. the runner calls :meth:`CampaignWarmState.build` — one pass over the
   spec's circuits that resolves, compiles, computes testability,
   collapses faults, parses the knowledge preload sidecar, and runs one
   fault-free frame so the backend's kernels are compiled;
2. the runner enters :func:`activate`, installing the state in this
   module's registry, **then** forks its workers — children inherit the
   registry (and every compiled artifact it references) copy-on-write;
3. :func:`~repro.campaign.queue.shard_faults` and
   :func:`~repro.campaign.worker.run_item` consult :func:`active` and
   skip straight to solving when the warm state covers their circuit.

Keeping the *same* ``Circuit`` object alive matters more than it looks:
:func:`~repro.simulation.compiled.compile_circuit` caches by object
identity, so every downstream layer that accepts a ``Circuit`` (the
driver, the merge stage's grader) transparently reuses the warm compile
without any plumbing.

The warm state is purely an accelerator: every artifact it holds is a
deterministic function of the spec, so an item computes identical results
with or without it (``run_item`` inline, in a cold worker, and in a warm
worker all agree bit for bit).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from ..atpg.scoap import Testability, compute_testability
from ..circuit.netlist import Circuit
from ..circuits.resolve import resolve_circuit
from ..faults.collapse import collapse_faults
from ..faults.model import Fault
from ..knowledge import (
    KnowledgeError,
    StateKnowledge,
    load_store_for,
    model_fingerprint,
)
from ..policy.model import FaultPolicy, PolicyError
from ..policy.schedule import PolicyPlan, build_plan
from ..simulation.compiled import CompiledCircuit, compile_circuit
from ..simulation.fault_sim import FaultSimulator
from .spec import CampaignError, CampaignSpec


@dataclass
class CircuitWarmState:
    """Everything per-item setup would otherwise recompute for a circuit.

    Attributes:
        circuit: the resolved circuit — the canonical object identity all
            compile-cache hits key off.
        cc: its compiled form.
        testability: SCOAP measures.
        faults: the collapsed fault list with the spec's ``fault_limit``
            applied — the campaign's target list in canonical order.
        knowledge_doc: the parsed ``repro-knowledge/v1`` store for this
            circuit from the spec's preload sidecar, or ``None``.  Kept
            serialized: each item deserializes its own private copy, so
            warm preloading cannot leak state between items.
        policy_plan: the precomputed
            :class:`~repro.policy.schedule.PolicyPlan` for this circuit
            under the spec's ``policy_file``, or ``None`` (no policy,
            or the circuit is outside the policy's trained family —
            items then run the static schedule).  The plan is immutable
            and deterministic, so sharing one object across items is
            safe.
    """

    circuit: Circuit
    cc: CompiledCircuit
    testability: Testability
    faults: List[Fault]
    knowledge_doc: Optional[Dict[str, Any]] = None
    policy_plan: Optional[PolicyPlan] = None

    def knowledge_store(self) -> Optional[StateKnowledge]:
        """A fresh, private preloaded store (or None without a preload)."""
        if self.knowledge_doc is None:
            return None
        return StateKnowledge.from_dict(self.knowledge_doc)


def circuit_warm_key(spec: CampaignSpec, name: str) -> Optional[str]:
    """Cache key for one circuit's warm artifacts across campaign specs.

    Two specs that agree on these facets produce identical
    :class:`CircuitWarmState` content for ``name`` — worker count,
    seeds, schedules, and the like do not feed the warm build — so a
    long-lived host (the service) can reuse one build across many jobs.
    Returns ``None`` when the state must not be cached: a knowledge
    preload or a policy artifact reads a mutable file whose contents
    affect results, so caching it could serve a stale store or plan.
    """
    if spec.knowledge and spec.knowledge_file:
        return None
    if spec.policy_file:
        return None
    return "|".join(
        str(part)
        for part in (
            name,
            spec.width,
            spec.backend or "",
            spec.fault_limit if spec.fault_limit is not None else "",
            spec.fault_model,
        )
    )


class CampaignWarmState:
    """Per-circuit warm artifacts for one campaign spec."""

    def __init__(
        self, spec_hash: str, circuits: Dict[str, CircuitWarmState]
    ) -> None:
        self.spec_hash = spec_hash
        self.circuits = circuits

    @classmethod
    def build(
        cls,
        spec: CampaignSpec,
        cache: Optional[Dict[str, CircuitWarmState]] = None,
    ) -> "CampaignWarmState":
        """Resolve, compile, and warm every circuit the spec targets.

        Skipped entirely in drill mode (``synthetic_item_seconds``):
        drills measure orchestration, not ATPG, and must not pay compile
        cost for circuits they never simulate.

        ``cache`` (optional) is consulted and populated per circuit
        under :func:`circuit_warm_key`, letting a long-lived process pay
        compile/SCOAP/collapse once per circuit across many campaigns.
        Warm artifacts are deterministic functions of the key, so a hit
        can never change results — only skip work.
        """
        circuits: Dict[str, CircuitWarmState] = {}
        if spec.synthetic_item_seconds is not None:
            return cls(spec.spec_hash(), circuits)
        policy: Optional[FaultPolicy] = None
        if spec.policy_file:
            # unlike the knowledge preload, the policy affects results
            # (the spec hashes it), so an unreadable artifact is a
            # campaign failure, not a silently skipped accelerator
            try:
                policy = FaultPolicy.load(spec.policy_file)
            except PolicyError as exc:
                raise CampaignError(str(exc)) from exc
        for name in spec.circuits:
            key = circuit_warm_key(spec, name) if cache is not None else None
            if key is not None:
                cached = cache.get(key)
                if cached is not None:
                    circuits[name] = cached
                    continue
            circuit = resolve_circuit(name)
            cc = compile_circuit(circuit)
            faults = collapse_faults(circuit, spec.fault_model)
            if spec.fault_limit is not None:
                faults = faults[: spec.fault_limit]
            doc: Optional[Dict[str, Any]] = None
            if spec.knowledge and spec.knowledge_file:
                try:
                    store = load_store_for(
                        spec.knowledge_file,
                        circuit.name,
                        model_fingerprint("unconstrained", spec.fault_model),
                    )
                except (OSError, KnowledgeError):
                    store = None  # an accelerator, never a failed campaign
                if store is not None:
                    doc = store.to_dict()
            # one fault-free frame forces the backend to build (or load
            # from REPRO_KERNEL_CACHE) its kernels now, pre-fork
            sim = FaultSimulator(cc, width=spec.width, backend=spec.backend)
            sim.simulate_good([[0] * len(circuit.inputs)])
            testability = compute_testability(cc)
            plan: Optional[PolicyPlan] = None
            if policy is not None:
                plan = build_plan(
                    policy, cc, testability, faults, final_pass=spec.passes
                )
            state = CircuitWarmState(
                circuit=circuit,
                cc=cc,
                testability=testability,
                faults=faults,
                knowledge_doc=doc,
                policy_plan=plan,
            )
            circuits[name] = state
            if key is not None:
                cache[key] = state
        return cls(spec.spec_hash(), circuits)

    def get(self, circuit_name: str) -> Optional[CircuitWarmState]:
        return self.circuits.get(circuit_name)


#: The process's active warm state (inherited by forked workers).
_ACTIVE: Optional[CampaignWarmState] = None


def active_for(spec: CampaignSpec) -> Optional[CampaignWarmState]:
    """The active warm state, iff it was built from exactly this spec.

    The spec-hash check makes a stale registry impossible: warm artifacts
    built for one campaign (e.g. a different ``fault_limit``) can never
    leak into another's fault catalogue.
    """
    if _ACTIVE is not None and _ACTIVE.spec_hash == spec.spec_hash():
        return _ACTIVE
    return None


@contextlib.contextmanager
def activate(state: CampaignWarmState) -> Iterator[CampaignWarmState]:
    """Install ``state`` as the process's warm registry for the block.

    The runner enters this *before* forking workers, so children are born
    with the registry populated; the previous registry is restored on
    exit (supports nested campaigns in tests).
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = state
    try:
        yield state
    finally:
        _ACTIVE = previous
