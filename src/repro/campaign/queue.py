"""Work-queue construction and state tracking for campaigns.

:func:`build_items` turns a :class:`~repro.campaign.spec.CampaignSpec`
into the campaign's complete, deterministic list of work items: each
circuit's collapsed fault list (sorted, optionally capped) is partitioned
into contiguous shards of at most ``shard_size`` faults.  Item identities,
fault slices, and seeds depend only on the spec, so a resumed campaign
rebuilds exactly the same catalogue and the journal only has to remember
which item *states* were reached.

:class:`WorkQueue` is the in-memory state machine the runner drives:
pending → running → done / failed, with bounded retries.  Failures
(timeouts, exceptions) consume an attempt and perturb the seed;
interruptions (a killed worker or campaign) do not, so a crash-resumed
campaign reproduces the uninterrupted run bit for bit.
"""

from __future__ import annotations

import enum
import hashlib
from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Optional

from ..faults.collapse import collapse_faults
from ..faults.model import Fault
from ..circuits.resolve import resolve_circuit
from .spec import CampaignError, CampaignSpec, derive_seed


class ItemState(enum.Enum):
    """Lifecycle of one work item."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass(frozen=True)
class WorkItem:
    """One (circuit, fault-shard) unit of campaign work.

    Attributes:
        item_id: stable identifier, ``<circuit>/<shard index>``.
        circuit: circuit specifier (resolvable name or path).
        shard: 0-based shard index within the circuit.
        start: offset of the shard in the circuit's collapsed fault list
            (after the spec's ``fault_limit`` cap).
        count: number of faults in the shard.
        seed: item seed, derived from the spec seed and the item id.
        fault_hash: short hash of the shard's fault names; workers verify
            it before running so a spec/code drift cannot silently grade
            the wrong faults after a resume.
    """

    item_id: str
    circuit: str
    shard: int
    start: int
    count: int
    seed: int
    fault_hash: str


def shard_faults(spec: CampaignSpec, circuit_name: str) -> List[Fault]:
    """The circuit's target fault list in canonical (sorted) order.

    Served from the campaign's warm-fork state when one is active for
    exactly this spec (the registry is spec-hash checked), so pooled
    workers never re-resolve or re-collapse; the cold path computes the
    identical list from scratch.
    """
    from . import warm  # late import: warm builds on this module

    warm_state = warm.active_for(spec)
    if warm_state is not None:
        circuit_state = warm_state.get(circuit_name)
        if circuit_state is not None:
            return list(circuit_state.faults)
    faults = collapse_faults(resolve_circuit(circuit_name), spec.fault_model)
    if spec.fault_limit is not None:
        faults = faults[: spec.fault_limit]
    return faults


def _hash_faults(faults: List[Fault]) -> str:
    names = ",".join(str(f) for f in faults)
    return hashlib.sha256(names.encode("utf-8")).hexdigest()[:12]


def build_items(spec: CampaignSpec) -> List[WorkItem]:
    """The campaign's full, deterministic work-item catalogue."""
    items: List[WorkItem] = []
    for circuit_name in spec.circuits:
        faults = shard_faults(spec, circuit_name)
        if not faults:
            continue
        for shard, start in enumerate(range(0, len(faults), spec.shard_size)):
            chunk = faults[start : start + spec.shard_size]
            item_id = f"{circuit_name}/{shard:03d}"
            items.append(
                WorkItem(
                    item_id=item_id,
                    circuit=circuit_name,
                    shard=shard,
                    start=start,
                    count=len(chunk),
                    seed=derive_seed(spec.seed, item_id),
                    fault_hash=_hash_faults(chunk),
                )
            )
    if not items:
        raise CampaignError("campaign has no target faults")
    return items


def seed_for_attempt(item: WorkItem, attempt: int) -> int:
    """Attempt 1 keeps the item seed; retries perturb it deterministically."""
    if attempt <= 1:
        return item.seed
    return derive_seed(item.seed, f"attempt:{attempt}")


@dataclass
class _Slot:
    item: WorkItem
    state: ItemState = ItemState.PENDING
    attempt: int = 0  # attempts started so far
    error: Optional[str] = None


class WorkQueue:
    """Item-state machine with bounded, seed-perturbing retries."""

    def __init__(self, items: List[WorkItem], max_attempts: int = 3):
        self.max_attempts = max_attempts
        self._slots: Dict[str, _Slot] = {
            item.item_id: _Slot(item) for item in items
        }
        self._pending: Deque[str] = deque(item.item_id for item in items)

    # -- dispatch ------------------------------------------------------
    def take(self) -> Optional[WorkItem]:
        """Claim the next pending item (marks it running); None when idle."""
        while self._pending:
            item_id = self._pending.popleft()
            slot = self._slots[item_id]
            if slot.state is ItemState.PENDING:
                slot.state = ItemState.RUNNING
                slot.attempt += 1
                return replace(
                    slot.item,
                    seed=seed_for_attempt(slot.item, slot.attempt),
                )
        return None

    def take_many(self, limit: int) -> List[WorkItem]:
        """Claim up to ``limit`` pending items (a lease grant)."""
        items: List[WorkItem] = []
        while len(items) < limit:
            item = self.take()
            if item is None:
                break
            items.append(item)
        return items

    def attempt_of(self, item_id: str) -> int:
        return self._slots[item_id].attempt

    # -- transitions ---------------------------------------------------
    def mark_done(self, item_id: str) -> None:
        self._slots[item_id].state = ItemState.DONE

    def mark_failed(self, item_id: str, error: str) -> bool:
        """Record a failed attempt; True when the item will be retried."""
        slot = self._slots[item_id]
        slot.error = error
        if slot.attempt < self.max_attempts:
            slot.state = ItemState.PENDING
            self._pending.append(item_id)
            return True
        slot.state = ItemState.FAILED
        return False

    def mark_interrupted(self, item_id: str) -> None:
        """Requeue after a crash without consuming an attempt or the seed."""
        slot = self._slots[item_id]
        slot.attempt = max(0, slot.attempt - 1)
        slot.state = ItemState.PENDING
        self._pending.append(item_id)

    def restore_attempts(self, item_id: str, attempts: int) -> None:
        """Restore failed-attempt history from a journal replay.

        Retries after a resume continue the original attempt numbering,
        so their perturbed seeds match what an uninterrupted campaign
        would have used.  Items that already exhausted their attempts
        stay failed.
        """
        slot = self._slots.get(item_id)
        if slot is None:
            raise CampaignError(f"journal references unknown item {item_id}")
        slot.attempt = max(slot.attempt, attempts)
        if slot.attempt >= self.max_attempts:
            slot.state = ItemState.FAILED
            try:
                self._pending.remove(item_id)
            except ValueError:
                pass

    def restore_done(self, item_id: str) -> None:
        """Mark an item completed by a previous run (journal replay)."""
        slot = self._slots.get(item_id)
        if slot is None:
            raise CampaignError(f"journal references unknown item {item_id}")
        slot.state = ItemState.DONE
        try:
            self._pending.remove(item_id)
        except ValueError:
            pass

    # -- queries -------------------------------------------------------
    def state_of(self, item_id: str) -> ItemState:
        return self._slots[item_id].state

    def item(self, item_id: str) -> WorkItem:
        return self._slots[item_id].item

    def counts(self) -> Dict[str, int]:
        out = {state.value: 0 for state in ItemState}
        for slot in self._slots.values():
            out[slot.state.value] += 1
        return out

    def pending(self) -> int:
        """Items currently claimable (the lease-sizing signal)."""
        return sum(
            1
            for slot in self._slots.values()
            if slot.state is ItemState.PENDING
        )

    def finished(self) -> bool:
        return all(
            slot.state in (ItemState.DONE, ItemState.FAILED)
            for slot in self._slots.values()
        )

    def failed_items(self) -> List[str]:
        return sorted(
            item_id
            for item_id, slot in self._slots.items()
            if slot.state is ItemState.FAILED
        )

    def __len__(self) -> int:
        return len(self._slots)
