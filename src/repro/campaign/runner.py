"""Campaign orchestration: the durable, resumable warm-fork runner.

:class:`CampaignRunner` drives a campaign end to end: it builds the
deterministic work-item catalogue, **warms** every per-circuit artifact
(compile, SCOAP, fault collapse, kernel compile) in the parent, then
executes items either inline (``workers=1``) or across a pool of forked
worker processes that inherit the warm state copy-on-write.  Every state
transition is journaled durably and the campaign finishes with the merge
stage.

Dispatch is lease-based work stealing, not static sharding: the parent
grants each worker a small batch of items (a *lease*, sized to the
remaining backlog), tops the lease up whenever a worker's unstarted
backlog runs dry, and — once the shared queue is empty — revokes
unstarted backlog from a loaded worker to feed an idle one.  A revoke is
only honoured by the worker itself (it answers with the exact items it
released, and the parent reassigns only those), so an item can never run
twice concurrently by protocol; the journal's first-wins rule covers the
crash races that remain.  With per-fault items (``shard_size=1``, the
default) one hard fault can no longer straggle a whole shard.

The parent never trusts a worker: liveness is tracked through heartbeats
and ``is_alive``, a dead worker's in-flight *and leased* items are
requeued (without consuming an attempt, so results stay deterministic)
and the worker is respawned with a fresh task queue.

Crash model:

* a *worker* dies (OOM-kill, SIGKILL, segfault) — the runner requeues its
  items and respawns the worker; the campaign keeps going;
* an item *fails* (exception) or *times out* — the attempt is journaled
  and the item retries with a deterministically perturbed seed, up to
  ``max_attempts``; the final attempt of a timed-out item keeps its
  partial results;
* the *campaign* dies (SIGKILL, power loss, Ctrl-C) — the journal holds
  every completed item; ``resume`` replays it, reruns only unfinished
  items with their original seeds, and produces the same final test set
  and coverage as an uninterrupted run.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from queue import Empty
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..clock import monotonic
from ..knowledge import save_knowledge
from . import warm
from .journal import JOURNAL_SCHEMA, Journal, JournalState
from .merge import CampaignResult, merge_campaign
from .queue import ItemState, WorkItem, WorkQueue, build_items
from .spec import CampaignCancelled, CampaignError, CampaignSpec
from .worker import run_item, worker_main


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


class _WorkerHandle:
    """Parent-side view of one pooled worker and its lease."""

    def __init__(self, wid: int) -> None:
        self.wid = wid
        self.proc: Optional[multiprocessing.process.BaseProcess] = None
        self.task_q: Any = None
        #: leased, not yet started: item id -> (item, attempt)
        self.backlog: Dict[str, Tuple[WorkItem, int]] = {}
        #: the item the worker said it started, if any
        self.running: Optional[Tuple[WorkItem, int]] = None
        #: item ids with an outstanding (unanswered) revoke
        self.revoking: set = set()
        self.last_beat: float = 0.0

    @property
    def stealable(self) -> List[str]:
        """Backlog ids not already being revoked, steal-victim order."""
        return [i for i in self.backlog if i not in self.revoking]

    def drop(self, item_id: str) -> None:
        self.backlog.pop(item_id, None)
        self.revoking.discard(item_id)
        if self.running is not None and self.running[0].item_id == item_id:
            self.running = None

    def unsettled(self) -> List[Tuple[WorkItem, int]]:
        """Everything the worker holds (for requeue when it dies)."""
        held = list(self.backlog.values())
        if self.running is not None:
            held.append(self.running)
        return held

    def idle(self) -> bool:
        return self.running is None and not self.backlog


class CampaignRunner:
    """Run or resume one campaign against a durable journal.

    Args:
        spec: the campaign specification (results-affecting knobs).
        journal_path: JSONL journal location; created on first run.
        workers: worker processes; 1 runs items inline in this process
            (always available, used as fallback where ``fork`` is not).
        heartbeat_interval: worker liveness beacon period, seconds.
        hang_timeout_s: kill a worker whose item has not beaconed for
            this long and retry the item (counts as a failed attempt);
            ``None`` disables hang detection.
        clock: wall-clock source for campaign timing (injectable for
            tests; item-level clocks stay worker-local).
        stop_check: cooperative cancellation probe.  Polled between
            items (inline mode) and between scheduler rounds (pooled
            mode); when it returns true the runner terminates its
            workers and raises :class:`CampaignCancelled`.  The journal
            keeps every completed item, so the campaign resumes cleanly.
        warm_cache: optional cross-campaign cache of per-circuit warm
            artifacts, passed through to
            :meth:`CampaignWarmState.build <repro.campaign.warm.CampaignWarmState.build>`
            — the service uses one so kernels/SCOAP/collapse are paid
            once per circuit even across jobs with different specs.
    """

    #: replacement workers spawned per original worker before giving up
    MAX_RESPAWNS_PER_WORKER = 4
    #: cap on items granted in one lease
    LEASE_MAX = 8

    def __init__(
        self,
        spec: CampaignSpec,
        journal_path: str,
        workers: int = 1,
        heartbeat_interval: float = 0.5,
        hang_timeout_s: Optional[float] = None,
        clock: Callable[[], float] = monotonic,
        stop_check: Optional[Callable[[], bool]] = None,
        warm_cache: Optional[Dict[str, Any]] = None,
    ):
        self.spec = spec
        self.journal_path = journal_path
        self.workers = max(1, int(workers))
        self.heartbeat_interval = heartbeat_interval
        self.hang_timeout_s = hang_timeout_s
        self.clock = clock
        self.stop_check = stop_check
        self.warm_cache = warm_cache

    # -- public entry points -------------------------------------------
    def run(self, resume: bool = False) -> CampaignResult:
        """Execute the campaign to completion (fresh or resumed)."""
        wall0 = self.clock()
        phase_times: Dict[str, float] = {}
        items = build_items(self.spec)
        payloads: Dict[str, Dict[str, Any]] = {}
        journal = Journal(self.journal_path)
        try:
            restored: Optional[JournalState] = None
            if resume:
                restored = self._validate_resume(items)
            else:
                if (
                    os.path.exists(self.journal_path)
                    and os.path.getsize(self.journal_path) > 0
                ):
                    raise CampaignError(
                        f"journal {self.journal_path} already exists — "
                        f"use `repro campaign resume` to continue it"
                    )
                journal.append({
                    "type": "campaign",
                    "schema": JOURNAL_SCHEMA,
                    "name": self.spec.name,
                    "spec": self.spec.to_dict(),
                    "spec_hash": self.spec.spec_hash(),
                    "items": len(items),
                })
                journal.append({
                    "type": "items",
                    "catalogue": [
                        {"item": i.item_id, "faults": i.count,
                         "fault_hash": i.fault_hash}
                        for i in items
                    ],
                })
            # warm fork: build every per-circuit artifact once, in the
            # parent, before any worker exists — children inherit it COW
            t0 = self.clock()
            warm_state = warm.CampaignWarmState.build(
                self.spec, cache=self.warm_cache
            )
            phase_times["warm_s"] = self.clock() - t0
            # dispatch order is an execution detail (items are isolated
            # and the merge sorts by item id), so the policy's cheap-
            # first ordering applies to fresh runs and resumes alike
            items = self._policy_order(items, warm_state)
            queue = WorkQueue(items, self.spec.max_attempts)
            if restored is not None:
                for item_id, payload in restored.done.items():
                    queue.restore_done(item_id)
                    payloads[item_id] = payload
                for item_id, attempts in restored.attempts.items():
                    if item_id not in restored.done:
                        queue.restore_attempts(item_id, attempts)
            with warm.activate(warm_state):
                t0 = self.clock()
                if self.workers == 1 or _fork_context() is None:
                    phase_times["fork_s"] = 0.0
                    self._run_inline(queue, payloads, journal)
                else:
                    self._run_pool(queue, payloads, journal, phase_times)
                phase_times["solve_s"] = (
                    self.clock() - t0 - phase_times["fork_s"]
                )
                t0 = self.clock()
                result = merge_campaign(self.spec, payloads)
                phase_times["merge_s"] = self.clock() - t0
            result.items_failed = len(queue.failed_items())
            result.wall_time_s = self.clock() - wall0
            result.phase_times = phase_times
            if result.report is not None:
                result.report.jobs = self.workers
                result.report.wall_time_s = result.wall_time_s
            # sidecar + its event land before "merged": the journal's
            # terminal event stays "merged", and a crash in between just
            # means the (idempotent) merge stage reruns on resume
            if self.spec.knowledge and result.knowledge:
                path = self.knowledge_path()
                save_knowledge(result.knowledge, path)
                journal.append({
                    "type": "knowledge",
                    "path": path,
                    "entries": {
                        name: len(store)
                        for name, store in sorted(result.knowledge.items())
                    },
                    "stats": dict(sorted(result.knowledge_stats.items())),
                })
            journal.append({
                "type": "merged",
                "summary": result.summary_dict(),
            })
            return result
        finally:
            journal.close()

    def knowledge_path(self) -> str:
        """Sidecar path: the journal's stem plus ``.knowledge.json``."""
        stem, _ = os.path.splitext(self.journal_path)
        return f"{stem}.knowledge.json"

    def broadcast_dir(self) -> str:
        """Side-channel directory: the journal's stem plus ``.bcast``."""
        stem, _ = os.path.splitext(self.journal_path)
        return f"{stem}.bcast"

    @classmethod
    def resume(
        cls, journal_path: str, workers: int = 1, **kwargs
    ) -> CampaignResult:
        """Resume a journaled campaign; the spec comes from the journal."""
        state = JournalState.replay(journal_path)
        spec = CampaignSpec.from_dict(state.spec_data)
        runner = cls(spec, journal_path, workers=workers, **kwargs)
        return runner.run(resume=True)

    @staticmethod
    def status(journal_path: str) -> Dict[str, Any]:
        """Campaign progress snapshot reconstructed from the journal."""
        state = JournalState.replay(journal_path)
        spec = CampaignSpec.from_dict(state.spec_data)
        total = len(state.item_hashes)
        return {
            "name": spec.name,
            "spec_hash": state.spec_hash,
            "items": total,
            "done": len(state.done),
            "failed": len(state.failed),
            "in_flight": sorted(state.started),
            "merged": state.merged,
        }

    # -- cooperative cancellation --------------------------------------
    def _check_cancelled(self, journal: Journal) -> None:
        """Raise :class:`CampaignCancelled` when the stop check fires.

        The ``cancelled`` event is diagnostic only (replay ignores it);
        it marks *when* the campaign stopped in the journal's timeline so
        tailing consumers see the transition.
        """
        if self.stop_check is not None and self.stop_check():
            journal.append({"type": "cancelled"})
            raise CampaignCancelled(
                "campaign cancelled — journal is durable, resume to "
                "continue"
            )

    # -- resume restoration --------------------------------------------
    def _validate_resume(self, items: List[WorkItem]) -> JournalState:
        """Replay the journal and check it belongs to this campaign."""
        state = JournalState.replay(self.journal_path)
        if state.spec_hash != self.spec.spec_hash():
            raise CampaignError(
                f"journal {self.journal_path} belongs to campaign "
                f"{state.spec_hash}, not {self.spec.spec_hash()}"
            )
        catalogue = {i.item_id: i.fault_hash for i in items}
        for item_id, fault_hash in state.item_hashes.items():
            if catalogue.get(item_id) != fault_hash:
                raise CampaignError(
                    f"{item_id}: fault shard drifted since the campaign "
                    f"was planned — start a fresh campaign"
                )
        return state

    # -- policy-driven dispatch order ----------------------------------
    def _policy_order(
        self,
        items: List[WorkItem],
        warm_state: "warm.CampaignWarmState",
    ) -> List[WorkItem]:
        """Order the catalogue cheap-first under the spec's policy.

        Purely an execution-order optimization: items are isolated, the
        merge stage sorts payloads by item id, and journal identity is
        id-based — so reordering changes wall-clock shape (cheap wins
        land early, predicted-futile shards run last) but never results.
        Without a policy the catalogue order is returned untouched.
        """
        if not self.spec.policy_file:
            return items
        circuit_rank = {
            name: pos for pos, name in enumerate(self.spec.circuits)
        }
        ranks: Dict[str, int] = {}
        for name in self.spec.circuits:
            state = warm_state.get(name)
            if state is None or state.policy_plan is None:
                continue
            for pos, fault in enumerate(
                state.policy_plan.order(state.faults)
            ):
                ranks[f"{name}:{fault}"] = pos

        def key(item: WorkItem) -> Tuple[int, int, str]:
            state = warm_state.get(item.circuit)
            best = len(ranks)
            if state is not None and state.policy_plan is not None:
                shard = state.faults[item.start : item.start + item.count]
                item_ranks = [
                    ranks.get(f"{item.circuit}:{fault}", len(ranks))
                    for fault in shard
                ]
                if item_ranks:
                    best = min(item_ranks)
            return (circuit_rank.get(item.circuit, 0), best, item.item_id)

        return sorted(items, key=key)

    # -- shared outcome policy -----------------------------------------
    def _settle(
        self,
        item_id: str,
        attempt: int,
        payload: Dict[str, Any],
        queue: WorkQueue,
        payloads: Dict[str, Dict[str, Any]],
        journal: Journal,
    ) -> None:
        """Apply the done/timeout policy for one finished attempt."""
        if queue.state_of(item_id) is ItemState.DONE:
            return  # duplicate completion (raced a requeue): first wins
        if payload.get("timed_out") and attempt < self.spec.max_attempts:
            journal.append({
                "type": "item_failed", "item": item_id,
                "attempt": attempt, "error": "timeout",
            })
            queue.mark_failed(item_id, "timeout")
            return
        payloads[item_id] = payload
        journal.append({
            "type": "item_done", "item": item_id,
            "attempt": attempt, "payload": payload,
        })
        queue.restore_done(item_id)

    def _fail(
        self,
        item_id: str,
        attempt: int,
        error: str,
        queue: WorkQueue,
        journal: Journal,
    ) -> None:
        journal.append({
            "type": "item_failed", "item": item_id,
            "attempt": attempt, "error": error,
        })
        queue.mark_failed(item_id, error)

    # -- inline execution ----------------------------------------------
    def _run_inline(
        self,
        queue: WorkQueue,
        payloads: Dict[str, Dict[str, Any]],
        journal: Journal,
    ) -> None:
        while True:
            self._check_cancelled(journal)
            item = queue.take()
            if item is None:
                break
            attempt = queue.attempt_of(item.item_id)
            journal.append({
                "type": "item_started", "item": item.item_id,
                "attempt": attempt, "pid": os.getpid(), "worker": 0,
            })
            try:
                outcome = run_item(self.spec, item)
            except CampaignError:
                raise
            except Exception as exc:  # noqa: BLE001 — retry policy
                self._fail(item.item_id, attempt,
                           f"{type(exc).__name__}: {exc}", queue, journal)
                continue
            self._settle(item.item_id, attempt, outcome.to_dict(),
                         queue, payloads, journal)

    # -- pooled execution ----------------------------------------------
    def _lease_size(self, queue: WorkQueue) -> int:
        """Adaptive lease: small near the end so stealing stays cheap."""
        fair = queue.pending() // (2 * self.workers)
        return max(1, min(self.LEASE_MAX, fair))

    def _run_pool(
        self,
        queue: WorkQueue,
        payloads: Dict[str, Dict[str, Any]],
        journal: Journal,
        phase_times: Dict[str, float],
    ) -> None:
        ctx = _fork_context()
        assert ctx is not None
        result_q = ctx.Queue()
        bcast_dir: Optional[str] = None
        if self.spec.knowledge and self.spec.knowledge_broadcast:
            bcast_dir = self.broadcast_dir()
        handles = [_WorkerHandle(wid) for wid in range(self.workers)]

        def spawn(handle: _WorkerHandle) -> None:
            # a fresh task queue per (re)spawn: leases granted to a dead
            # worker can never be replayed by its replacement
            handle.task_q = ctx.Queue()
            handle.proc = ctx.Process(
                target=worker_main,
                args=(handle.wid, handle.task_q, result_q,
                      self.spec.to_dict(), self.heartbeat_interval,
                      bcast_dir),
                daemon=True,
            )
            handle.proc.start()
            handle.last_beat = self.clock()

        t0 = self.clock()
        for handle in handles:
            spawn(handle)
        phase_times["fork_s"] = self.clock() - t0

        respawns = 0
        try:
            while True:
                self._check_cancelled(journal)
                # grant a lease to every live worker whose unstarted
                # backlog ran dry (prefetch: the grant overlaps the item
                # the worker is still solving)
                for handle in handles:
                    if handle.backlog or not handle.proc.is_alive():
                        continue
                    granted = queue.take_many(self._lease_size(queue))
                    if not granted:
                        break
                    lease = [
                        (item, queue.attempt_of(item.item_id))
                        for item in granted
                    ]
                    for item, attempt in lease:
                        handle.backlog[item.item_id] = (item, attempt)
                    handle.last_beat = self.clock()
                    handle.task_q.put(("lease", lease))
                    journal.append({
                        "type": "lease", "worker": handle.wid,
                        "items": [item.item_id for item, _ in lease],
                    })
                self._steal(handles, queue, journal)
                if queue.finished() and all(h.idle() for h in handles):
                    break
                self._drain(result_q, handles, queue, payloads, journal)
                now = self.clock()
                for handle in handles:
                    if handle.proc.is_alive():
                        if (
                            handle.running is not None
                            and self.hang_timeout_s is not None
                            and now - handle.last_beat > self.hang_timeout_s
                        ):
                            # hung worker: kill it, fail the running item
                            # (consumes an attempt), requeue its backlog
                            handle.proc.kill()
                            handle.proc.join(timeout=5.0)
                            item, attempt = handle.running
                            self._fail(item.item_id, attempt, "hung",
                                       queue, journal)
                            handle.running = None
                            self._requeue_backlog(handle, queue, journal)
                        else:
                            continue
                    else:
                        # crashed worker: requeue everything it held
                        # without burning attempts, so reruns reproduce
                        # the same results
                        for item, attempt in handle.unsettled():
                            journal.append({
                                "type": "item_interrupted",
                                "item": item.item_id,
                                "attempt": attempt, "worker": handle.wid,
                            })
                            queue.mark_interrupted(item.item_id)
                        handle.running = None
                        handle.backlog.clear()
                        handle.revoking.clear()
                    if queue.finished():
                        continue  # nothing left for a replacement to do
                    respawns += 1
                    if respawns > self.MAX_RESPAWNS_PER_WORKER * self.workers:
                        raise CampaignError(
                            "workers keep dying; campaign halted "
                            "(journal is durable — resume when fixed)"
                        )
                    spawn(handle)
        except BaseException:
            for handle in handles:
                if handle.proc is not None and handle.proc.is_alive():
                    handle.proc.terminate()
            raise
        finally:
            for handle in handles:
                try:
                    handle.task_q.put(None)
                except Exception:
                    pass
            for handle in handles:
                if handle.proc is not None:
                    handle.proc.join(timeout=2.0)
                    if handle.proc.is_alive():
                        handle.proc.kill()

    def _requeue_backlog(
        self, handle: _WorkerHandle, queue: WorkQueue, journal: Journal
    ) -> None:
        """Return a dead worker's unstarted lease to the shared queue."""
        for item, attempt in handle.backlog.values():
            journal.append({
                "type": "item_interrupted", "item": item.item_id,
                "attempt": attempt, "worker": handle.wid,
            })
            queue.mark_interrupted(item.item_id)
        handle.backlog.clear()
        handle.revoking.clear()

    def _steal(
        self,
        handles: List[_WorkerHandle],
        queue: WorkQueue,
        journal: Journal,
    ) -> None:
        """Revoke backlog from loaded workers to feed starving ones.

        Only fires once the shared queue is dry — before that, a starving
        worker simply gets a lease.  The revoke is a *request*: items the
        victim already started are kept, and the parent reassigns only
        what the victim's ``released`` reply names.
        """
        if queue.pending() > 0:
            return
        starving = sum(
            1
            for h in handles
            if h.idle() and h.proc is not None and h.proc.is_alive()
        )
        if starving == 0:
            return
        for victim in sorted(
            handles, key=lambda h: len(h.backlog), reverse=True
        ):
            if starving <= 0:
                break
            if victim.proc is None or not victim.proc.is_alive():
                continue
            stealable = victim.stealable
            if not stealable:
                continue
            # take the tail half: the head is what the victim runs next
            count = min(int(math.ceil(len(stealable) / 2)), starving)
            wanted = stealable[-count:]
            victim.revoking.update(wanted)
            victim.task_q.put(("revoke", wanted))
            starving -= count

    def _drain(
        self,
        result_q,
        handles: List[_WorkerHandle],
        queue: WorkQueue,
        payloads: Dict[str, Dict[str, Any]],
        journal: Journal,
    ) -> None:
        """Handle every queued worker message, blocking briefly for one."""
        first = True
        while True:
            try:
                message = result_q.get(timeout=0.05 if first else 0.0)
            except Empty:
                return
            except (EOFError, OSError):
                return  # queue torn by a killed writer; liveness recovers
            first = False
            kind, wid, item_id, data = message
            handle = handles[wid]
            handle.last_beat = self.clock()
            if kind == "started":
                attempt, pid = data
                held = handle.backlog.pop(item_id, None)
                handle.revoking.discard(item_id)
                if held is not None:
                    handle.running = held
                journal.append({
                    "type": "item_started", "item": item_id,
                    "attempt": attempt, "pid": pid, "worker": wid,
                })
            elif kind == "heartbeat":
                pass  # liveness only; not journaled (fsync traffic)
            elif kind == "done":
                running = handle.running
                attempt = (
                    running[1]
                    if running and running[0].item_id == item_id
                    else 1
                )
                self._settle(item_id, attempt, data, queue, payloads,
                             journal)
                handle.drop(item_id)
            elif kind == "failed":
                running = handle.running
                attempt = (
                    running[1]
                    if running and running[0].item_id == item_id
                    else 1
                )
                if queue.state_of(item_id) is not ItemState.DONE:
                    self._fail(item_id, attempt, data, queue, journal)
                handle.drop(item_id)
            elif kind == "released":
                released = [i for i in data if i in handle.backlog]
                handle.revoking.difference_update(data)
                for released_id in released:
                    handle.backlog.pop(released_id, None)
                    queue.mark_interrupted(released_id)
                if released:
                    journal.append({
                        "type": "steal", "worker": wid,
                        "items": released,
                    })
