"""Campaign orchestration: the durable, resumable multi-process runner.

:class:`CampaignRunner` drives a campaign end to end: it builds the
deterministic work-item catalogue, executes items either inline
(``workers=1``) or across a pool of forked worker processes, journals
every state transition durably, and finishes with the merge stage.  The
parent process never trusts a worker: items are dispatched one at a time
per worker, liveness is tracked through heartbeats and ``is_alive``, a
dead worker's in-flight item is requeued (without consuming an attempt,
so results stay deterministic) and the worker is respawned.

Crash model:

* a *worker* dies (OOM-kill, SIGKILL, segfault) — the runner requeues its
  item and respawns the worker; the campaign keeps going;
* an item *fails* (exception) or *times out* — the attempt is journaled
  and the item retries with a deterministically perturbed seed, up to
  ``max_attempts``; the final attempt of a timed-out item keeps its
  partial results;
* the *campaign* dies (SIGKILL, power loss, Ctrl-C) — the journal holds
  every completed item; ``resume`` replays it, reruns only unfinished
  items with their original seeds, and produces the same final test set
  and coverage as an uninterrupted run.
"""

from __future__ import annotations

import multiprocessing
import os
from queue import Empty
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..clock import monotonic
from ..knowledge import save_knowledge
from .journal import JOURNAL_SCHEMA, Journal, JournalState
from .merge import CampaignResult, merge_campaign
from .queue import ItemState, WorkItem, WorkQueue, build_items
from .spec import CampaignError, CampaignSpec
from .worker import run_item, worker_main


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


class CampaignRunner:
    """Run or resume one campaign against a durable journal.

    Args:
        spec: the campaign specification (results-affecting knobs).
        journal_path: JSONL journal location; created on first run.
        workers: worker processes; 1 runs items inline in this process
            (always available, used as fallback where ``fork`` is not).
        heartbeat_interval: worker liveness beacon period, seconds.
        hang_timeout_s: kill a worker whose item has not beaconed for
            this long and retry the item (counts as a failed attempt);
            ``None`` disables hang detection.
        clock: wall-clock source for campaign timing (injectable for
            tests; item-level clocks stay worker-local).
    """

    #: replacement workers spawned per original worker before giving up
    MAX_RESPAWNS_PER_WORKER = 4

    def __init__(
        self,
        spec: CampaignSpec,
        journal_path: str,
        workers: int = 1,
        heartbeat_interval: float = 0.5,
        hang_timeout_s: Optional[float] = None,
        clock: Callable[[], float] = monotonic,
    ):
        self.spec = spec
        self.journal_path = journal_path
        self.workers = max(1, int(workers))
        self.heartbeat_interval = heartbeat_interval
        self.hang_timeout_s = hang_timeout_s
        self.clock = clock

    # -- public entry points -------------------------------------------
    def run(self, resume: bool = False) -> CampaignResult:
        """Execute the campaign to completion (fresh or resumed)."""
        wall0 = self.clock()
        items = build_items(self.spec)
        queue = WorkQueue(items, self.spec.max_attempts)
        payloads: Dict[str, Dict[str, Any]] = {}
        journal = Journal(self.journal_path)
        try:
            if resume:
                self._restore(items, queue, payloads)
            else:
                if (
                    os.path.exists(self.journal_path)
                    and os.path.getsize(self.journal_path) > 0
                ):
                    raise CampaignError(
                        f"journal {self.journal_path} already exists — "
                        f"use `repro campaign resume` to continue it"
                    )
                journal.append({
                    "type": "campaign",
                    "schema": JOURNAL_SCHEMA,
                    "name": self.spec.name,
                    "spec": self.spec.to_dict(),
                    "spec_hash": self.spec.spec_hash(),
                    "items": len(items),
                })
                journal.append({
                    "type": "items",
                    "catalogue": [
                        {"item": i.item_id, "faults": i.count,
                         "fault_hash": i.fault_hash}
                        for i in items
                    ],
                })
            if self.workers == 1 or _fork_context() is None:
                self._run_inline(queue, payloads, journal)
            else:
                self._run_pool(queue, payloads, journal)
            result = merge_campaign(self.spec, payloads)
            result.items_failed = len(queue.failed_items())
            result.wall_time_s = self.clock() - wall0
            if result.report is not None:
                result.report.jobs = self.workers
                result.report.wall_time_s = result.wall_time_s
            # sidecar + its event land before "merged": the journal's
            # terminal event stays "merged", and a crash in between just
            # means the (idempotent) merge stage reruns on resume
            if self.spec.knowledge and result.knowledge:
                path = self.knowledge_path()
                save_knowledge(result.knowledge, path)
                journal.append({
                    "type": "knowledge",
                    "path": path,
                    "entries": {
                        name: len(store)
                        for name, store in sorted(result.knowledge.items())
                    },
                    "stats": dict(sorted(result.knowledge_stats.items())),
                })
            journal.append({
                "type": "merged",
                "summary": result.summary_dict(),
            })
            return result
        finally:
            journal.close()

    def knowledge_path(self) -> str:
        """Sidecar path: the journal's stem plus ``.knowledge.json``."""
        stem, _ = os.path.splitext(self.journal_path)
        return f"{stem}.knowledge.json"

    @classmethod
    def resume(
        cls, journal_path: str, workers: int = 1, **kwargs
    ) -> CampaignResult:
        """Resume a journaled campaign; the spec comes from the journal."""
        state = JournalState.replay(journal_path)
        spec = CampaignSpec.from_dict(state.spec_data)
        runner = cls(spec, journal_path, workers=workers, **kwargs)
        return runner.run(resume=True)

    @staticmethod
    def status(journal_path: str) -> Dict[str, Any]:
        """Campaign progress snapshot reconstructed from the journal."""
        state = JournalState.replay(journal_path)
        spec = CampaignSpec.from_dict(state.spec_data)
        total = len(state.item_hashes)
        return {
            "name": spec.name,
            "spec_hash": state.spec_hash,
            "items": total,
            "done": len(state.done),
            "failed": len(state.failed),
            "in_flight": sorted(state.started),
            "merged": state.merged,
        }

    # -- resume restoration --------------------------------------------
    def _restore(
        self,
        items: List[WorkItem],
        queue: WorkQueue,
        payloads: Dict[str, Dict[str, Any]],
    ) -> None:
        state = JournalState.replay(self.journal_path)
        if state.spec_hash != self.spec.spec_hash():
            raise CampaignError(
                f"journal {self.journal_path} belongs to campaign "
                f"{state.spec_hash}, not {self.spec.spec_hash()}"
            )
        catalogue = {i.item_id: i.fault_hash for i in items}
        for item_id, fault_hash in state.item_hashes.items():
            if catalogue.get(item_id) != fault_hash:
                raise CampaignError(
                    f"{item_id}: fault shard drifted since the campaign "
                    f"was planned — start a fresh campaign"
                )
        for item_id, payload in state.done.items():
            queue.restore_done(item_id)
            payloads[item_id] = payload
        for item_id, attempts in state.attempts.items():
            if item_id not in state.done:
                queue.restore_attempts(item_id, attempts)

    # -- shared outcome policy -----------------------------------------
    def _settle(
        self,
        item_id: str,
        attempt: int,
        payload: Dict[str, Any],
        queue: WorkQueue,
        payloads: Dict[str, Dict[str, Any]],
        journal: Journal,
    ) -> None:
        """Apply the done/timeout policy for one finished attempt."""
        if queue.state_of(item_id) is ItemState.DONE:
            return  # duplicate completion (raced a requeue): first wins
        if payload.get("timed_out") and attempt < self.spec.max_attempts:
            journal.append({
                "type": "item_failed", "item": item_id,
                "attempt": attempt, "error": "timeout",
            })
            queue.mark_failed(item_id, "timeout")
            return
        payloads[item_id] = payload
        journal.append({
            "type": "item_done", "item": item_id,
            "attempt": attempt, "payload": payload,
        })
        queue.restore_done(item_id)

    def _fail(
        self,
        item_id: str,
        attempt: int,
        error: str,
        queue: WorkQueue,
        journal: Journal,
    ) -> None:
        journal.append({
            "type": "item_failed", "item": item_id,
            "attempt": attempt, "error": error,
        })
        queue.mark_failed(item_id, error)

    # -- inline execution ----------------------------------------------
    def _run_inline(
        self,
        queue: WorkQueue,
        payloads: Dict[str, Dict[str, Any]],
        journal: Journal,
    ) -> None:
        while True:
            item = queue.take()
            if item is None:
                break
            attempt = queue.attempt_of(item.item_id)
            journal.append({
                "type": "item_started", "item": item.item_id,
                "attempt": attempt, "pid": os.getpid(), "worker": 0,
            })
            try:
                outcome = run_item(self.spec, item)
            except CampaignError:
                raise
            except Exception as exc:  # noqa: BLE001 — retry policy
                self._fail(item.item_id, attempt,
                           f"{type(exc).__name__}: {exc}", queue, journal)
                continue
            self._settle(item.item_id, attempt, outcome.to_dict(),
                         queue, payloads, journal)

    # -- pooled execution ----------------------------------------------
    def _run_pool(
        self,
        queue: WorkQueue,
        payloads: Dict[str, Dict[str, Any]],
        journal: Journal,
    ) -> None:
        ctx = _fork_context()
        assert ctx is not None
        result_q = ctx.Queue()
        task_qs = [ctx.Queue() for _ in range(self.workers)]
        procs: List[multiprocessing.process.BaseProcess] = []

        def spawn(wid: int) -> None:
            proc = ctx.Process(
                target=worker_main,
                args=(wid, task_qs[wid], result_q, self.spec.to_dict(),
                      self.heartbeat_interval),
                daemon=True,
            )
            proc.start()
            procs[wid] = proc

        procs = [None] * self.workers  # type: ignore[list-item]
        for wid in range(self.workers):
            spawn(wid)

        assignment: List[Optional[Tuple[WorkItem, int]]] = (
            [None] * self.workers
        )
        last_beat = [self.clock()] * self.workers
        respawns = 0
        bad_messages = 0
        try:
            while True:
                # dispatch one item per idle, live worker
                for wid in range(self.workers):
                    if assignment[wid] is None and procs[wid].is_alive():
                        item = queue.take()
                        if item is None:
                            break
                        attempt = queue.attempt_of(item.item_id)
                        assignment[wid] = (item, attempt)
                        last_beat[wid] = self.clock()
                        task_qs[wid].put((item, attempt))
                if queue.finished() and all(a is None for a in assignment):
                    break
                self._drain(result_q, assignment, last_beat, queue,
                            payloads, journal)
                bad_messages = 0
                now = self.clock()
                for wid in range(self.workers):
                    held = assignment[wid]
                    if procs[wid].is_alive():
                        if (
                            held is not None
                            and self.hang_timeout_s is not None
                            and now - last_beat[wid] > self.hang_timeout_s
                        ):
                            # hung worker: kill it, retry with a new seed
                            procs[wid].kill()
                            procs[wid].join(timeout=5.0)
                            self._fail(held[0].item_id, held[1], "hung",
                                       queue, journal)
                            assignment[wid] = None
                        else:
                            continue
                    elif held is not None:
                        # crashed worker: requeue without burning the
                        # attempt so the rerun reproduces the same result
                        journal.append({
                            "type": "item_interrupted",
                            "item": held[0].item_id,
                            "attempt": held[1], "worker": wid,
                        })
                        queue.mark_interrupted(held[0].item_id)
                        assignment[wid] = None
                    if queue.finished():
                        continue  # nothing left for a replacement to do
                    respawns += 1
                    if respawns > self.MAX_RESPAWNS_PER_WORKER * self.workers:
                        raise CampaignError(
                            "workers keep dying; campaign halted "
                            "(journal is durable — resume when fixed)"
                        )
                    spawn(wid)
        except BaseException:
            for proc in procs:
                if proc is not None and proc.is_alive():
                    proc.terminate()
            raise
        finally:
            for wid in range(self.workers):
                try:
                    task_qs[wid].put(None)
                except Exception:
                    pass
            for proc in procs:
                if proc is not None:
                    proc.join(timeout=2.0)
                    if proc.is_alive():
                        proc.kill()

    def _drain(
        self,
        result_q,
        assignment: List[Optional[Tuple[WorkItem, int]]],
        last_beat: List[float],
        queue: WorkQueue,
        payloads: Dict[str, Dict[str, Any]],
        journal: Journal,
    ) -> None:
        """Handle every queued worker message, blocking briefly for one."""
        first = True
        while True:
            try:
                message = result_q.get(timeout=0.1 if first else 0.0)
            except Empty:
                return
            except (EOFError, OSError):
                return  # queue torn by a killed writer; liveness recovers
            first = False
            kind, wid, item_id, data = message
            last_beat[wid] = self.clock()
            if kind == "started":
                attempt, pid = data
                journal.append({
                    "type": "item_started", "item": item_id,
                    "attempt": attempt, "pid": pid, "worker": wid,
                })
            elif kind == "heartbeat":
                pass  # liveness only; not journaled (fsync traffic)
            elif kind == "done":
                held = assignment[wid]
                attempt = held[1] if held else 1
                self._settle(item_id, attempt, data, queue, payloads,
                             journal)
                if held is not None and held[0].item_id == item_id:
                    assignment[wid] = None
            elif kind == "failed":
                held = assignment[wid]
                attempt = held[1] if held else 1
                if queue.state_of(item_id) is not ItemState.DONE:
                    self._fail(item_id, attempt, data, queue, journal)
                if held is not None and held[0].item_id == item_id:
                    assignment[wid] = None
