"""Turning policy predictions into a concrete per-circuit plan.

A :class:`PolicyPlan` holds one :class:`FaultPlan` per fault of one
circuit, precomputed once (at campaign warm-build time or at driver
start) so the hot targeting loop only does dictionary lookups:

* **ordering** — faults sort cheap-first by the cost model, predicted
  futile faults last, ties keeping canonical order (stable sort);
* **pass gating** — each fault starts at the pass predicted to resolve
  it; earlier passes skip it.  The **final pass always targets every
  remaining fault** regardless of prediction (the mop-up), which is the
  plan's safety invariant: a skipped targeting of a pass that would
  have aborted commits nothing, and any fault the model wrote off still
  gets the schedule's largest-budget pass;
* **GA budget shrinking** (opt-in via the artifact's
  ``options["shrink_ga"]``) — predicted-cheap faults run GA passes at
  half population/generations.

Circuits outside the policy's trained family get no plan at all
(:func:`build_plan` returns ``None``) — the driver then behaves exactly
as if no policy were supplied.  See ``docs/POLICY.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..atpg.scoap import Testability
from ..faults.model import Fault
from ..simulation.compiled import CompiledCircuit
from .features import fault_features, feature_vector
from .model import FaultPolicy


@dataclass
class FaultPlan:
    """Per-fault scheduling decisions.

    Attributes:
        start_pass: first pass allowed to target the fault (earlier
            passes skip it; the final pass ignores this).
        deferred: predicted futile — pushed to the final mop-up pass.
        order_key: cheap-first sort key (predicted cost).
        ga_scale: multiplier on GA population/generations (1.0 = the
            schedule's own budgets).
    """

    start_pass: int
    deferred: bool
    order_key: float
    ga_scale: float = 1.0


class PolicyPlan:
    """All per-fault decisions for one circuit under one policy."""

    def __init__(
        self,
        circuit: str,
        final_pass: int,
        plans: Dict[str, FaultPlan],
        fingerprint: str = "",
        reorder: bool = True,
    ) -> None:
        self.circuit = circuit
        self.final_pass = final_pass
        self.plans = plans
        self.fingerprint = fingerprint
        self.reorder = reorder

    def plan_for(self, fault: Fault) -> Optional[FaultPlan]:
        return self.plans.get(str(fault))

    def eligible(self, fault: Fault, pass_number: int) -> bool:
        """May ``pass_number`` target ``fault``?

        The final pass may always: coverage can never be lost to a
        prediction, only deferred to the mop-up.
        """
        if pass_number >= self.final_pass:
            return True
        plan = self.plans.get(str(fault))
        return plan is None or pass_number >= plan.start_pass

    def order(self, faults: Sequence[Fault]) -> List[Fault]:
        """Cheap-first stable ordering; unplanned faults keep position
        ahead of deferred ones, deferred faults go last."""

        def key(fault: Fault) -> tuple:
            plan = self.plans.get(str(fault))
            if plan is None:
                return (0, math.inf)
            return (1 if plan.deferred else 0, plan.order_key)

        return sorted(faults, key=key)

    def deferred_count(self) -> int:
        return sum(1 for plan in self.plans.values() if plan.deferred)


def build_plan(
    policy: FaultPolicy,
    cc: CompiledCircuit,
    testability: Testability,
    faults: Sequence[Fault],
    final_pass: int,
) -> Optional[PolicyPlan]:
    """Precompute a circuit's plan, or ``None`` outside the family.

    Deterministic: predictions are pure functions of the artifact and
    the circuit's static features.
    """
    circuit_name = cc.circuit.name
    if not policy.covers(circuit_name):
        return None
    defer_threshold = float(policy.options.get("defer_threshold", 0.25))
    shrink_ga = bool(policy.options.get("shrink_ga", False))
    cheap_cost = policy.options.get("cheap_cost")
    plans: Dict[str, FaultPlan] = {}
    for fault in faults:
        x = feature_vector(fault_features(cc, testability, fault))
        detect_score, resolve_pass, cost = policy.predict(x)
        deferred = detect_score < defer_threshold
        if deferred:
            start = final_pass
        else:
            start = min(max(int(round(resolve_pass)), 1), final_pass)
        ga_scale = 1.0
        if (
            shrink_ga
            and not deferred
            and cheap_cost is not None
            and cost <= float(cheap_cost)
        ):
            ga_scale = 0.5
        plans[str(fault)] = FaultPlan(
            start_pass=start,
            deferred=deferred,
            order_key=cost,
            ga_scale=ga_scale,
        )
    return PolicyPlan(
        circuit=circuit_name,
        final_pass=final_pass,
        plans=plans,
        fingerprint=policy.fingerprint,
        reorder=bool(policy.options.get("reorder", True)),
    )
