"""Learned fault-scheduling policy (HybMT-style meta-prediction).

The static Table-I schedule targets every fault in every pass.  The
dispositions accumulated in ``repro-run-report/v1`` documents record
which pass and engine actually resolved each fault and at what cost —
exactly the supervision needed to *learn* a schedule.  This package
turns those reports into a deployable policy:

* :mod:`repro.policy.features` — a per-fault static feature vector
  (SCOAP controllabilities/observability at the fault site, fanout,
  logic depth, sequential depth, fault polarity/type) computed from the
  compiled circuit and its :class:`~repro.atpg.scoap.Testability`;
* :mod:`repro.policy.dataset` — joins features with mined dispositions
  into labeled training rows;
* :mod:`repro.policy.model` — a dependency-free gradient-boosted
  regression-tree predictor with deterministic training, serialized as
  a versioned ``repro-policy/v1`` JSON artifact;
* :mod:`repro.policy.schedule` — turns predictions into action: a
  :class:`~repro.policy.schedule.PolicyPlan` that orders faults
  cheap-first, starts each fault at the pass predicted to resolve it,
  and defers predicted-futile faults to the final mop-up pass.

Safety invariant: the final pass of any schedule targets *every*
remaining fault regardless of prediction, so a policy can skip wasted
work but can never lose coverage relative to the static schedule's
committed detections.  See ``docs/POLICY.md``.
"""

from .features import (
    FEATURE_NAMES,
    fault_features,
    feature_vector,
    features_for_faults,
)
from .dataset import Dataset, DatasetRow, dataset_from_reports
from .model import FaultPolicy, PolicyError, train_policy
from .schedule import FaultPlan, PolicyPlan, build_plan

__all__ = [
    "FEATURE_NAMES",
    "fault_features",
    "feature_vector",
    "features_for_faults",
    "Dataset",
    "DatasetRow",
    "dataset_from_reports",
    "FaultPolicy",
    "PolicyError",
    "train_policy",
    "FaultPlan",
    "PolicyPlan",
    "build_plan",
]
