"""Mining ``repro-run-report/v1`` dispositions into labeled training rows.

Reports recorded since the schema carried per-fault ``features`` are
self-contained: each row's feature vector is read straight from the
disposition.  Older reports are back-filled by resolving the circuit
and recomputing SCOAP features from the fault name; rows whose circuit
cannot be resolved are skipped (and counted) rather than failing the
whole mine — training data is allowed to be partial.

Merged campaign reports prefix fault names with their source circuit
(``s298:G1 s-a-0``); the miner strips the prefix to recover the
per-circuit fault identity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..faults.model import Fault, parse_fault
from ..telemetry.report import FaultRecord, RunReport
from .features import FEATURE_NAMES, fault_features, feature_vector


@dataclass
class DatasetRow:
    """One labeled training example: a fault's features and its fate.

    Attributes:
        circuit: source circuit name.
        fault: printable fault name (prefix stripped).
        features: the static feature dict (see :data:`FEATURE_NAMES`).
        status: the disposition status the labels derive from.
        detected: 1.0 when the fault was detected, else 0.0.
        resolve_pass: the pass number that resolved (or last targeted)
            the fault; 1.0 for never-targeted rows.
        cost: ``log1p(backtracks + ga_generations)`` — the cheap-first
            ordering key.
    """

    circuit: str
    fault: str
    features: Dict[str, float]
    status: str
    detected: float
    resolve_pass: float
    cost: float


@dataclass
class Dataset:
    """Labeled rows plus mining bookkeeping."""

    rows: List[DatasetRow] = field(default_factory=list)
    skipped: int = 0
    reports: int = 0

    def matrix(self) -> List[List[float]]:
        """Feature rows flattened into the model's input layout."""
        return [feature_vector(row.features) for row in self.rows]

    def circuits(self) -> List[str]:
        return sorted({row.circuit for row in self.rows})

    def summary(self) -> str:
        by_status: Dict[str, int] = {}
        for row in self.rows:
            by_status[row.status] = by_status.get(row.status, 0) + 1
        statuses = ", ".join(
            f"{name}={count}" for name, count in sorted(by_status.items())
        )
        return (
            f"{len(self.rows)} rows from {self.reports} report(s) "
            f"({self.skipped} skipped) over "
            f"{', '.join(self.circuits()) or 'no circuits'}; {statuses}"
        )


def _split_fault_name(record_fault: str, report_circuit: str) -> Tuple[str, str]:
    """(circuit, bare fault name) for a possibly prefixed disposition."""
    if ":" in record_fault:
        circuit, _, bare = record_fault.partition(":")
        return circuit, bare
    return report_circuit, record_fault


class _FeatureBackfill:
    """Per-circuit SCOAP feature recomputation for feature-less rows."""

    def __init__(self) -> None:
        self._by_circuit: Dict[str, Optional[Tuple[object, object]]] = {}

    def features(
        self, circuit_name: str, fault_name: str
    ) -> Optional[Dict[str, float]]:
        if circuit_name not in self._by_circuit:
            self._by_circuit[circuit_name] = self._resolve(circuit_name)
        pair = self._by_circuit[circuit_name]
        if pair is None:
            return None
        cc, testability = pair
        try:
            fault = parse_fault(fault_name)
            return fault_features(cc, testability, fault)  # type: ignore[arg-type]
        except (ValueError, KeyError):
            return None

    @staticmethod
    def _resolve(circuit_name: str) -> Optional[Tuple[object, object]]:
        from ..atpg.scoap import compute_testability
        from ..circuits.resolve import resolve_circuit
        from ..simulation.compiled import compile_circuit

        try:
            cc = compile_circuit(resolve_circuit(circuit_name))
        except Exception:
            return None
        return cc, compute_testability(cc)


def _label_row(
    circuit: str, fault: str, record: FaultRecord, features: Dict[str, float]
) -> DatasetRow:
    return DatasetRow(
        circuit=circuit,
        fault=fault,
        features=features,
        status=record.status,
        detected=1.0 if record.status == "detected" else 0.0,
        resolve_pass=float(max(record.pass_number, 1)),
        cost=math.log1p(max(record.backtracks + record.ga_generations, 0)),
    )


def dataset_from_reports(
    reports: Iterable[Union[str, RunReport]],
    backfill: bool = True,
) -> Dataset:
    """Mine one dataset out of many reports (paths or parsed objects).

    ``backfill=False`` skips rows without embedded features instead of
    resolving circuits — useful when mining reports for circuits that
    are not locally resolvable.
    """
    dataset = Dataset()
    recompute = _FeatureBackfill() if backfill else None
    for source in reports:
        report = (
            RunReport.load(source) if isinstance(source, str) else source
        )
        dataset.reports += 1
        for record in report.faults:
            circuit, bare = _split_fault_name(record.fault, report.circuit)
            features = record.features
            if features is None and recompute is not None:
                features = recompute.features(circuit, bare)
            if features is None:
                dataset.skipped += 1
                continue
            dataset.rows.append(_label_row(circuit, bare, record, features))
    return dataset


__all__ = [
    "Dataset",
    "DatasetRow",
    "dataset_from_reports",
    "parse_fault",
    "FEATURE_NAMES",
]
