"""Dependency-free gradient-boosted regression trees + the policy artifact.

The predictor is deliberately small: boosted CART regression trees
(depth ≤ 3 by default) fit with exact greedy least-squares splits over
per-feature value boundaries.  Training is fully deterministic — no
sampling, no randomized tie-breaks (ties resolve to the lowest feature
index and lowest threshold) — so the same dataset always yields the
same artifact byte for byte, which the campaign layer's reproducibility
story depends on.

A :class:`FaultPolicy` bundles three boosted models over the shared
:data:`~repro.policy.features.FEATURE_NAMES` input layout:

* ``detect`` — probability-like score that targeting the fault yields a
  detection at all (label: 1.0 for ``detected`` rows, else 0.0);
* ``pass`` — regression to the pass number that resolved the fault;
* ``cost`` — regression to ``log1p(backtracks + ga_generations)``, the
  cheap-first ordering key.

Artifacts serialize as versioned ``repro-policy/v1`` JSON with a
circuit-family fingerprint; :func:`FaultPolicy.load` validates before
use and raises :class:`PolicyError` on any mismatch.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .features import FEATURE_NAMES

#: Identifier embedded in every serialized policy artifact.
SCHEMA = "repro-policy/v1"

#: Maximum split candidates examined per feature per node.
MAX_THRESHOLDS = 32


class PolicyError(ValueError):
    """A policy artifact, dataset, or training request is invalid."""


# ----------------------------------------------------------------------
# regression trees


def _leaf(values: Sequence[float], idxs: Sequence[int]) -> Dict[str, Any]:
    total = sum(values[i] for i in idxs)
    return {"value": total / len(idxs) if idxs else 0.0}


def _best_split(
    xs: Sequence[Sequence[float]],
    ys: Sequence[float],
    idxs: List[int],
    min_leaf: int,
) -> Optional[Tuple[float, int, float]]:
    """The (sse, feature, threshold) of the best split, or None.

    Deterministic: features are scanned in index order and a candidate
    replaces the incumbent only on a strict SSE improvement, so ties go
    to the lowest feature index / lowest threshold.
    """
    n = len(idxs)
    total = sum(ys[i] for i in idxs)
    total_sq = sum(ys[i] * ys[i] for i in idxs)
    base_sse = total_sq - total * total / n
    best: Optional[Tuple[float, int, float]] = None
    for feat in range(len(xs[idxs[0]])):
        order = sorted(idxs, key=lambda i: xs[i][feat])
        boundaries = [
            k
            for k in range(1, n)
            if xs[order[k - 1]][feat] < xs[order[k]][feat]
        ]
        if not boundaries:
            continue
        if len(boundaries) > MAX_THRESHOLDS:
            stride = len(boundaries) / MAX_THRESHOLDS
            boundaries = [
                boundaries[int(j * stride)] for j in range(MAX_THRESHOLDS)
            ]
        left_sum = 0.0
        left_sq = 0.0
        taken = 0
        b = 0
        for k in range(1, n):
            y = ys[order[k - 1]]
            left_sum += y
            left_sq += y * y
            taken += 1
            if b >= len(boundaries) or boundaries[b] != k:
                continue
            b += 1
            if taken < min_leaf or n - taken < min_leaf:
                continue
            right_sum = total - left_sum
            right_sq = total_sq - left_sq
            sse = (left_sq - left_sum * left_sum / taken) + (
                right_sq - right_sum * right_sum / (n - taken)
            )
            if sse < base_sse - 1e-12 and (best is None or sse < best[0]):
                lo = xs[order[k - 1]][feat]
                hi = xs[order[k]][feat]
                best = (sse, feat, (lo + hi) / 2.0)
    return best


def _fit_tree(
    xs: Sequence[Sequence[float]],
    ys: Sequence[float],
    idxs: List[int],
    depth: int,
    min_leaf: int,
) -> Dict[str, Any]:
    if depth <= 0 or len(idxs) < 2 * min_leaf:
        return _leaf(ys, idxs)
    split = _best_split(xs, ys, idxs, min_leaf)
    if split is None:
        return _leaf(ys, idxs)
    _, feat, threshold = split
    left_idx = [i for i in idxs if xs[i][feat] <= threshold]
    right_idx = [i for i in idxs if xs[i][feat] > threshold]
    if not left_idx or not right_idx:
        return _leaf(ys, idxs)
    return {
        "feature": feat,
        "threshold": threshold,
        "left": _fit_tree(xs, ys, left_idx, depth - 1, min_leaf),
        "right": _fit_tree(xs, ys, right_idx, depth - 1, min_leaf),
    }


def _eval_tree(node: Dict[str, Any], x: Sequence[float]) -> float:
    while "value" not in node:
        branch = "left" if x[node["feature"]] <= node["threshold"] else "right"
        node = node[branch]
    return float(node["value"])


def _validate_tree(node: Any, path: str, problems: List[str]) -> None:
    if not isinstance(node, dict):
        problems.append(f"{path} is not an object")
        return
    if "value" in node:
        if not isinstance(node["value"], (int, float)):
            problems.append(f"{path}.value is not a number")
        return
    for key in ("feature", "threshold", "left", "right"):
        if key not in node:
            problems.append(f"{path} missing {key!r}")
            return
    if not isinstance(node["feature"], int) or node["feature"] < 0:
        problems.append(f"{path}.feature is not a feature index")
    if not isinstance(node["threshold"], (int, float)):
        problems.append(f"{path}.threshold is not a number")
    _validate_tree(node["left"], path + ".left", problems)
    _validate_tree(node["right"], path + ".right", problems)


class BoostedTrees:
    """A boosted ensemble of regression trees (least-squares boosting)."""

    def __init__(
        self,
        bias: float = 0.0,
        learning_rate: float = 0.5,
        trees: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        self.bias = bias
        self.learning_rate = learning_rate
        self.trees: List[Dict[str, Any]] = trees if trees is not None else []

    @classmethod
    def fit(
        cls,
        xs: Sequence[Sequence[float]],
        ys: Sequence[float],
        rounds: int = 40,
        max_depth: int = 3,
        learning_rate: float = 0.5,
        min_leaf: int = 1,
        tol: float = 1e-6,
    ) -> "BoostedTrees":
        if not xs:
            raise PolicyError("cannot fit a model on zero rows")
        if len(xs) != len(ys):
            raise PolicyError("feature/label row counts disagree")
        model = cls(bias=sum(ys) / len(ys), learning_rate=learning_rate)
        preds = [model.bias] * len(ys)
        idxs = list(range(len(ys)))
        for _ in range(rounds):
            residuals = [ys[i] - preds[i] for i in idxs]
            if max(abs(r) for r in residuals) <= tol:
                break
            tree = _fit_tree(xs, residuals, idxs, max_depth, min_leaf)
            model.trees.append(tree)
            for i in idxs:
                preds[i] += learning_rate * _eval_tree(tree, xs[i])
        return model

    def predict(self, x: Sequence[float]) -> float:
        out = self.bias
        for tree in self.trees:
            out += self.learning_rate * _eval_tree(tree, x)
        return out

    def mean_abs_error(
        self, xs: Sequence[Sequence[float]], ys: Sequence[float]
    ) -> float:
        if not xs:
            return 0.0
        return sum(
            abs(self.predict(x) - y) for x, y in zip(xs, ys)
        ) / len(xs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bias": self.bias,
            "learning_rate": self.learning_rate,
            "trees": self.trees,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BoostedTrees":
        return cls(
            bias=float(data["bias"]),
            learning_rate=float(data["learning_rate"]),
            trees=list(data["trees"]),
        )


# ----------------------------------------------------------------------
# the policy artifact


def family_fingerprint(circuits: Sequence[str]) -> str:
    """Content hash of the circuit family a policy was trained on."""
    canonical = ",".join(sorted(set(circuits)))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


#: Default action thresholds; overridable per artifact via ``options``.
DEFAULT_OPTIONS: Dict[str, Any] = {
    # faults scoring below this detect probability are deferred to the
    # final mop-up pass
    "defer_threshold": 0.25,
    # reorder the fault list cheap-first by the cost model
    "reorder": True,
    # opt-in: halve GA population/generations for predicted-cheap faults
    "shrink_ga": False,
    # cost-model score below which a fault counts as "cheap" for
    # shrink_ga (trained quantile; None disables shrinking)
    "cheap_cost": None,
}


class FaultPolicy:
    """A trained, serializable fault-scheduling policy."""

    def __init__(
        self,
        detect: BoostedTrees,
        resolve_pass: BoostedTrees,
        cost: BoostedTrees,
        circuits: Sequence[str],
        trained_rows: int,
        feature_names: Sequence[str] = FEATURE_NAMES,
        options: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.detect = detect
        self.resolve_pass = resolve_pass
        self.cost = cost
        self.circuits = tuple(sorted(set(circuits)))
        self.fingerprint = family_fingerprint(self.circuits)
        self.trained_rows = trained_rows
        self.feature_names = tuple(feature_names)
        self.options = dict(DEFAULT_OPTIONS)
        if options:
            self.options.update(options)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "fingerprint": self.fingerprint,
            "circuits": list(self.circuits),
            "trained_rows": self.trained_rows,
            "feature_names": list(self.feature_names),
            "options": dict(self.options),
            "models": {
                "detect": self.detect.to_dict(),
                "pass": self.resolve_pass.to_dict(),
                "cost": self.cost.to_dict(),
            },
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_dict(cls, data: Any) -> "FaultPolicy":
        problems = validate_policy(data)
        if problems:
            raise PolicyError(
                "invalid policy artifact: " + "; ".join(problems[:5])
            )
        models = data["models"]
        policy = cls(
            detect=BoostedTrees.from_dict(models["detect"]),
            resolve_pass=BoostedTrees.from_dict(models["pass"]),
            cost=BoostedTrees.from_dict(models["cost"]),
            circuits=data["circuits"],
            trained_rows=int(data["trained_rows"]),
            feature_names=data["feature_names"],
            options=data.get("options"),
        )
        if policy.fingerprint != data["fingerprint"]:
            raise PolicyError(
                f"fingerprint {data['fingerprint']!r} does not match the "
                f"artifact's circuit family ({policy.fingerprint!r})"
            )
        return policy

    @classmethod
    def load(cls, path: str) -> "FaultPolicy":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise PolicyError(f"cannot read policy {path!r}: {exc}") from exc
        return cls.from_dict(data)

    # -- prediction ----------------------------------------------------
    def covers(self, circuit_name: str) -> bool:
        """True when the policy was trained on this circuit."""
        return circuit_name in self.circuits

    def predict(self, x: Sequence[float]) -> Tuple[float, float, float]:
        """(detect score, resolving pass, cost key) for one feature row."""
        return (
            self.detect.predict(x),
            self.resolve_pass.predict(x),
            self.cost.predict(x),
        )


def validate_policy(data: Any) -> List[str]:
    """Check a parsed document against the v1 policy schema."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["policy must be a JSON object"]
    if data.get("schema") != SCHEMA:
        problems.append(
            f"schema must be {SCHEMA!r}, got {data.get('schema')!r}"
        )
    for key, types in (
        ("fingerprint", str),
        ("circuits", list),
        ("trained_rows", int),
        ("feature_names", list),
        ("models", dict),
    ):
        if key not in data:
            problems.append(f"missing key {key!r}")
        elif not isinstance(data[key], types):
            problems.append(f"key {key!r} has wrong type")
    models = data.get("models")
    if isinstance(models, dict):
        for name in ("detect", "pass", "cost"):
            model = models.get(name)
            if not isinstance(model, dict):
                problems.append(f"models.{name} missing or not an object")
                continue
            for key in ("bias", "learning_rate", "trees"):
                if key not in model:
                    problems.append(f"models.{name} missing {key!r}")
            for pos, tree in enumerate(model.get("trees") or []):
                _validate_tree(
                    tree, f"models.{name}.trees[{pos}]", problems
                )
                if problems:
                    break
    return problems


def train_policy(
    dataset: "Dataset",
    rounds: int = 40,
    max_depth: int = 3,
    learning_rate: float = 0.5,
    options: Optional[Dict[str, Any]] = None,
) -> FaultPolicy:
    """Fit the three models on a mined dataset; fully deterministic."""
    from .dataset import Dataset  # local import: avoid a module cycle

    if not isinstance(dataset, Dataset) or not dataset.rows:
        raise PolicyError("training needs a non-empty dataset")
    xs = dataset.matrix()
    detect = BoostedTrees.fit(
        xs,
        [row.detected for row in dataset.rows],
        rounds=rounds,
        max_depth=max_depth,
        learning_rate=learning_rate,
    )
    resolve = BoostedTrees.fit(
        xs,
        [row.resolve_pass for row in dataset.rows],
        rounds=rounds,
        max_depth=max_depth,
        learning_rate=learning_rate,
    )
    cost = BoostedTrees.fit(
        xs,
        [row.cost for row in dataset.rows],
        rounds=rounds,
        max_depth=max_depth,
        learning_rate=learning_rate,
    )
    opts = dict(options or {})
    if opts.get("shrink_ga") and opts.get("cheap_cost") is None:
        # "cheap" = below the 25th percentile of observed training cost
        costs = sorted(row.cost for row in dataset.rows)
        opts["cheap_cost"] = costs[len(costs) // 4]
    return FaultPolicy(
        detect=detect,
        resolve_pass=resolve,
        cost=cost,
        circuits=sorted({row.circuit for row in dataset.rows}),
        trained_rows=len(dataset.rows),
        options=opts,
    )
