"""Per-fault static feature vectors for the scheduling policy.

Every feature is a deterministic function of the compiled circuit, its
SCOAP :class:`~repro.atpg.scoap.Testability`, and the fault itself — no
run-time state — so a vector computed while *recording* a report equals
the vector computed later while *applying* a trained policy to the same
circuit.  The driver embeds these vectors in each
:class:`~repro.telemetry.report.FaultRecord`, making reports
self-contained training data (no circuit re-resolution needed).

The order of :data:`FEATURE_NAMES` is the model's input layout; new
features must be appended, never inserted, and absent keys read as 0.0
so older reports stay usable as training data.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..atpg.scoap import HARD, Testability
from ..faults.model import DEFAULT_FAULT_MODEL, Fault
from ..simulation.compiled import CompiledCircuit

#: Model input layout. Append-only; absent keys deserialize as 0.0.
FEATURE_NAMES = (
    "cc0",
    "cc1",
    "co",
    "excite_cost",
    "detect_cost",
    "fanout",
    "level",
    "depth_frac",
    "seq_depth",
    "ff_count",
    "stuck",
    "is_branch",
    "pin",
    "is_pi",
    "is_ff_out",
    "is_transition",
)


def fault_features(
    cc: CompiledCircuit, testability: Testability, fault: Fault
) -> Dict[str, float]:
    """The static feature dict for one fault on one compiled circuit.

    SCOAP costs at or above :data:`~repro.atpg.scoap.HARD` are clamped
    to ``HARD`` so unobservable/uncontrollable sites read as one shared
    "very hard" magnitude instead of unbounded sums.
    """
    idx = cc.index[fault.net]
    cc0 = min(testability.cc0[idx], HARD)
    cc1 = min(testability.cc1[idx], HARD)
    co = min(testability.co[idx], HARD)
    # exciting stuck-at-v requires driving the site to the opposite
    # value; a transition fault additionally initialises at the stuck
    # value, but its excitation-cost proxy is the same final drive
    excite = cc1 if fault.stuck == 0 else cc0
    seq_depth = cc.circuit.sequential_depth
    num_levels = max(1, cc.num_levels)
    features = {
        "cc0": float(cc0),
        "cc1": float(cc1),
        "co": float(co),
        "excite_cost": float(excite),
        "detect_cost": float(min(excite + co, HARD)),
        "fanout": float(len(cc.fanout_gates[idx])),
        "level": float(cc.level[idx]),
        "depth_frac": float(cc.level[idx]) / float(num_levels),
        "seq_depth": float(seq_depth),
        "ff_count": float(len(cc.ff_out)),
        "stuck": float(fault.stuck),
        "is_branch": 1.0 if fault.is_branch else 0.0,
        "pin": float(max(fault.pin, 0)),
        "is_pi": 1.0 if idx in cc.pi else 0.0,
        "is_ff_out": 1.0 if idx in cc.ff_out else 0.0,
    }
    # emitted only for non-stuck-at faults: absent keys read 0.0, and
    # omission keeps stuck-at report payloads byte-identical to those
    # written before the feature existed
    if fault.model != DEFAULT_FAULT_MODEL:
        features["is_transition"] = 1.0
    return features


def feature_vector(features: Dict[str, float]) -> List[float]:
    """Flatten a feature dict into the model's input layout.

    Unknown keys are ignored and missing keys read 0.0, so vectors from
    older or newer report schemas still line up with the trained model's
    feature indices.
    """
    return [float(features.get(name, 0.0)) for name in FEATURE_NAMES]


def features_for_faults(
    cc: CompiledCircuit,
    testability: Testability,
    faults: Sequence[Fault],
) -> Dict[str, Dict[str, float]]:
    """Feature dicts for a whole fault list, keyed by ``str(fault)``."""
    return {
        str(fault): fault_features(cc, testability, fault)
        for fault in faults
    }
