"""Fault-dictionary diagnosis.

Once a test program exists, the same fault simulation that graded it can
*localise* a defect: simulate every fault against the test set, record the
full set of (cycle, output) positions where each fault is observed — the
**fault dictionary** — and rank candidate faults by how well their
signatures explain the failures a tester actually observed.

Scoring follows the classic match/mismatch counting used in cause-effect
diagnosis: for candidate signature ``S`` and observed failures ``F``,

* ``hits``        = \\|S ∩ F\\|   (failures the fault explains),
* ``misses``      = \\|F − S\\|   (observed failures it cannot explain),
* ``mispredicts`` = \\|S − F\\|   (failures it predicts that never happened),

ranked by (fewest misses, fewest mispredicts, most hits).  Faults with
identical signatures are *indistinguishable* by this test set and are
reported together as an equivalence class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..circuit.netlist import Circuit
from ..faults.collapse import collapse_faults
from ..faults.model import Fault
from ..simulation.fault_sim import FaultSimulator

#: One observation point: (cycle index, primary-output position).
Observation = Tuple[int, int]


@dataclass
class Candidate:
    """One ranked diagnosis candidate.

    Attributes:
        faults: the indistinguishable fault class sharing this signature.
        hits / misses / mispredicts: match/mismatch counts against the
            observed failures.
    """

    faults: List[Fault]
    hits: int
    misses: int
    mispredicts: int

    @property
    def exact(self) -> bool:
        """True when the signature explains the failures exactly."""
        return self.misses == 0 and self.mispredicts == 0


class FaultDictionary:
    """Full-response fault dictionary for one circuit and test set.

    Args:
        circuit: circuit under test.
        vectors: the test program's input vectors.
        faults: fault universe (defaults to the collapsed list).
        width: fault-simulation word width.
    """

    def __init__(
        self,
        circuit: Circuit,
        vectors: Sequence[Sequence[int]],
        faults: Optional[Sequence[Fault]] = None,
        width: int = 64,
    ):
        self.circuit = circuit
        self.vectors = [list(v) for v in vectors]
        self.faults = (
            list(faults) if faults is not None else collapse_faults(circuit)
        )
        outcome = FaultSimulator(circuit, width=width).run(
            self.vectors, self.faults, record_signatures=True
        )
        self.signatures: Dict[Fault, FrozenSet[Observation]] = {
            f: outcome.signatures.get(f, frozenset()) for f in self.faults
        }
        self._classes: Dict[FrozenSet[Observation], List[Fault]] = {}
        for fault, sig in self.signatures.items():
            self._classes.setdefault(sig, []).append(fault)

    # ------------------------------------------------------------------
    @property
    def detected_faults(self) -> List[Fault]:
        """Faults the test set observes at least once."""
        return [f for f, sig in self.signatures.items() if sig]

    def distinguishable_classes(self) -> List[List[Fault]]:
        """Groups of faults with identical (non-empty) signatures."""
        return [fs for sig, fs in self._classes.items() if sig]

    def diagnostic_resolution(self) -> float:
        """Distinct non-empty signatures per detected fault (0..1].

        1.0 means every detected fault is uniquely identifiable.
        """
        detected = len(self.detected_faults)
        if not detected:
            return 0.0
        return len(self.distinguishable_classes()) / detected

    # ------------------------------------------------------------------
    def diagnose(
        self, failures: Sequence[Observation], top: int = 5
    ) -> List[Candidate]:
        """Rank fault classes against observed tester failures."""
        observed = frozenset(failures)
        candidates = []
        for sig, fault_class in self._classes.items():
            if not sig:
                continue
            hits = len(sig & observed)
            if hits == 0:
                continue
            candidates.append(
                Candidate(
                    faults=sorted(fault_class),
                    hits=hits,
                    misses=len(observed - sig),
                    mispredicts=len(sig - observed),
                )
            )
        candidates.sort(key=lambda c: (c.misses, c.mispredicts, -c.hits))
        return candidates[:top]

    def diagnose_fault(self, fault: Fault, top: int = 5) -> List[Candidate]:
        """Convenience: diagnose using a known fault's own signature.

        A correct dictionary must rank the injected fault's class first
        with an exact match — the property the tests verify.
        """
        return self.diagnose(sorted(self.signatures[fault]), top=top)
