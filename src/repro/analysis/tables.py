"""Paper-style result tables (Tables II and III).

Renders side-by-side GA-HITEC / HITEC comparisons with the paper's
columns — one row per pass per circuit: **Det** (cumulative faults
detected), **Vec** (cumulative vectors), **Time**, **Unt** (cumulative
untestable) — so benchmark output can be eyeballed directly against the
published tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..hybrid.results import RunResult, format_time

_HEADER = (
    f"{'Circuit':<10s} {'Depth':>5s} {'Faults':>7s} | "
    f"{'Det':>6s} {'Vec':>6s} {'Time':>8s} {'Unt':>5s} | "
    f"{'Det':>6s} {'Vec':>6s} {'Time':>8s} {'Unt':>5s}"
)


@dataclass
class TableEntry:
    """One circuit's worth of comparison rows.

    Attributes:
        circuit: circuit name.
        seq_depth: sequential depth shown in the table.
        total_faults: target fault-list size.
        left: the GA-HITEC run.
        right: the HITEC run (may be None for GA-HITEC-only tables).
    """

    circuit: str
    seq_depth: int
    total_faults: int
    left: RunResult
    right: Optional[RunResult] = None


def render_table(
    entries: Sequence[TableEntry],
    left_name: str = "GA-HITEC",
    right_name: str = "HITEC",
) -> str:
    """Render the comparison in the paper's Table II/III layout."""
    width = len(_HEADER)
    lines = [
        f"{'':<25s}{left_name:^29s}   {right_name:^29s}",
        _HEADER,
        "-" * width,
    ]
    for entry in entries:
        n_rows = max(
            len(entry.left.passes),
            len(entry.right.passes) if entry.right else 0,
        )
        for i in range(n_rows):
            prefix = (
                f"{entry.circuit:<10s} {entry.seq_depth:>5d} "
                f"{entry.total_faults:>7d}"
                if i == 0
                else f"{'':<10s} {'':>5s} {'':>7s}"
            )
            lines.append(
                f"{prefix} | {_pass_cells(entry.left, i)} | "
                f"{_pass_cells(entry.right, i)}"
            )
    return "\n".join(lines)


def _pass_cells(run: Optional[RunResult], i: int) -> str:
    if run is None or i >= len(run.passes):
        return f"{'':>6s} {'':>6s} {'':>8s} {'':>5s}"
    p = run.passes[i]
    return (
        f"{p.detected:>6d} {p.vectors:>6d} "
        f"{format_time(p.time_s):>8s} {p.untestable:>5d}"
    )


def shape_checks(entries: Sequence[TableEntry]) -> List[str]:
    """Evaluate the paper's qualitative claims on a set of comparison runs.

    Returns human-readable PASS/FAIL lines for the observations Section V
    makes: GA-HITEC detects at least as many faults as HITEC after the
    early passes for most circuits, and final untestable counts roughly
    agree.
    """
    lines: List[str] = []
    better_early = 0
    compared = 0
    for e in entries:
        if not e.right or not e.left.passes or not e.right.passes:
            continue
        compared += 1
        if e.left.passes[0].detected >= e.right.passes[0].detected:
            better_early += 1
        lu = e.left.passes[-1].untestable
        ru = e.right.passes[-1].untestable
        agree = "PASS" if abs(lu - ru) <= max(2, 0.1 * max(lu, ru)) else "FAIL"
        lines.append(
            f"[{agree}] {e.circuit}: final untestable {lu} vs {ru} "
            "(paper: approximately equal after the deterministic pass)"
        )
    if compared:
        verdict = "PASS" if better_early >= compared / 2 else "FAIL"
        lines.insert(
            0,
            f"[{verdict}] GA-HITEC >= HITEC pass-1 detections on "
            f"{better_early}/{compared} circuits (paper: 'many circuits')",
        )
    return lines
