"""Coverage accounting, compaction, test programs, and result tables."""

from .coverage import (
    CoverageReport,
    atpg_efficiency,
    evaluate_test_set,
    random_baseline,
    random_vectors,
)
from .compaction import CompactionResult, compact_test_set, split_blocks
from .diagnosis import Candidate, FaultDictionary
from .experiments import SeedSweep, Stat, compare_sweeps, seed_sweep
from .tables import TableEntry, render_table, shape_checks
from .testprogram import (
    TestProgram,
    build_test_program,
    parse_test_program,
    verify_test_program,
)

__all__ = [
    "Candidate",
    "CompactionResult",
    "FaultDictionary",
    "SeedSweep",
    "Stat",
    "CoverageReport",
    "TableEntry",
    "TestProgram",
    "atpg_efficiency",
    "build_test_program",
    "compact_test_set",
    "compare_sweeps",
    "evaluate_test_set",
    "parse_test_program",
    "random_baseline",
    "random_vectors",
    "seed_sweep",
    "render_table",
    "shape_checks",
    "split_blocks",
    "verify_test_program",
]
