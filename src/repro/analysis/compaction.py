"""Static test-set compaction for sequential test sets.

ATPG output is redundant: sequences generated late in a run often detect
faults that earlier sequences already covered, and the fault simulator's
incidental-detection credit means some whole sequences contribute nothing
once the rest of the test set exists.  Vector-by-vector pruning is unsound
for sequential circuits (dropping one vector shifts every later state), so
compaction works at *sequence* granularity: the test set is split into the
blocks the generator emitted, and blocks are removed greedily — in reverse
order of insertion, the classic heuristic — whenever removal does not
reduce fault coverage of the whole remaining set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..circuit.netlist import Circuit
from ..faults.collapse import collapse_faults
from ..faults.model import Fault
from ..simulation.fault_sim import FaultSimulator


@dataclass
class CompactionResult:
    """Outcome of :func:`compact_test_set`.

    Attributes:
        vectors: the compacted test set (flat vector list).
        kept_blocks: indices of the retained blocks, in original order.
        original_vectors / compacted_vectors: sizes before and after.
        coverage: number of faults the compacted set detects.
    """

    vectors: List[List[int]]
    kept_blocks: List[int]
    original_vectors: int
    compacted_vectors: int
    coverage: int

    @property
    def reduction(self) -> float:
        """Fraction of vectors removed (0..1)."""
        if not self.original_vectors:
            return 0.0
        return 1.0 - self.compacted_vectors / self.original_vectors


def split_blocks(
    vectors: Sequence[Sequence[int]], bases: Sequence[int]
) -> List[List[List[int]]]:
    """Split a flat test set into blocks starting at the given offsets."""
    starts = sorted(set(bases) | {0})
    blocks = []
    for i, start in enumerate(starts):
        end = starts[i + 1] if i + 1 < len(starts) else len(vectors)
        if end > start:
            blocks.append([list(v) for v in vectors[start:end]])
    return blocks


def compact_test_set(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    block_bases: Sequence[int],
    faults: Optional[Sequence[Fault]] = None,
    width: int = 64,
) -> CompactionResult:
    """Drop test-sequence blocks that no longer contribute coverage.

    Args:
        circuit: circuit under test.
        vectors: the full generated test set.
        block_bases: starting offsets of each generated sequence (the
            values stored in ``RunResult.detected``).
        faults: fault list to preserve coverage against (defaults to the
            collapsed universe).
        width: fault-simulation word width.
    """
    fault_list = list(faults) if faults is not None else collapse_faults(circuit)
    sim = FaultSimulator(circuit, width=width)
    blocks = split_blocks(vectors, block_bases)

    def coverage_of(selected: Sequence[int]) -> int:
        flat: List[List[int]] = []
        for i in selected:
            flat.extend(blocks[i])
        if not flat:
            return 0
        return len(sim.run(flat, fault_list).detected)

    kept = list(range(len(blocks)))
    target = coverage_of(kept)
    # reverse order: late blocks usually mop up few extra faults
    for i in reversed(range(len(blocks))):
        trial = [j for j in kept if j != i]
        if coverage_of(trial) >= target:
            kept = trial

    flat: List[List[int]] = []
    for i in kept:
        flat.extend(blocks[i])
    return CompactionResult(
        vectors=flat,
        kept_blocks=kept,
        original_vectors=len(vectors),
        compacted_vectors=len(flat),
        coverage=target,
    )
