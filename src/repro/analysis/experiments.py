"""Multi-seed experiment sweeps with summary statistics.

GA-HITEC is stochastic: detections in the GA passes depend on the seed.
Single-seed tables are how the paper reports (1995!), but a credible
modern reproduction quotes mean ± spread across seeds.  This module runs
a result factory over a seed list and summarises the per-pass Det/Vec/Unt
columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from ..hybrid.results import RunResult


@dataclass(frozen=True)
class Stat:
    """Mean and sample standard deviation of one metric."""

    mean: float
    std: float
    n: int

    def __str__(self) -> str:
        if self.n <= 1:
            return f"{self.mean:.1f}"
        return f"{self.mean:.1f}±{self.std:.1f}"


def _stat(values: Sequence[float]) -> Stat:
    n = len(values)
    mean = sum(values) / n if n else 0.0
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    return Stat(mean=mean, std=std, n=n)


@dataclass
class SeedSweep:
    """Results of one generator across several seeds.

    Attributes:
        label: generator name.
        runs: one :class:`RunResult` per seed.
    """

    label: str
    runs: List[RunResult] = field(default_factory=list)

    @property
    def seeds(self) -> int:
        return len(self.runs)

    def final(self, metric: str) -> Stat:
        """Statistic of a final-pass column: detected / vectors / untestable."""
        return _stat([getattr(r.passes[-1], metric) for r in self.runs])

    def per_pass(self, metric: str) -> List[Stat]:
        """Statistic of a column after each pass."""
        n_passes = min(len(r.passes) for r in self.runs)
        return [
            _stat([getattr(r.passes[i], metric) for r in self.runs])
            for i in range(n_passes)
        ]

    def summary(self) -> str:
        lines = [f"{self.label} over {self.seeds} seeds:"]
        for i, (det, vec, unt) in enumerate(
            zip(self.per_pass("detected"), self.per_pass("vectors"),
                self.per_pass("untestable")),
            start=1,
        ):
            lines.append(
                f"  pass {i}: Det {str(det):>12s}  Vec {str(vec):>12s}  "
                f"Unt {str(unt):>10s}"
            )
        return "\n".join(lines)


def seed_sweep(
    label: str,
    factory: Callable[[int], RunResult],
    seeds: Sequence[int] = (0, 1, 2),
) -> SeedSweep:
    """Run ``factory(seed)`` for every seed and collect the results."""
    sweep = SeedSweep(label=label)
    for seed in seeds:
        sweep.runs.append(factory(seed))
    return sweep


def compare_sweeps(sweeps: Sequence[SeedSweep]) -> str:
    """Side-by-side final-pass comparison of several generators."""
    lines = [
        f"{'generator':<12s} {'Det':>14s} {'Vec':>14s} {'Unt':>12s} "
        f"{'coverage':>10s}"
    ]
    for sweep in sweeps:
        total = sweep.runs[0].total_faults if sweep.runs else 0
        det = sweep.final("detected")
        cov = 100.0 * det.mean / total if total else 0.0
        lines.append(
            f"{sweep.label:<12s} {str(det):>14s} "
            f"{str(sweep.final('vectors')):>14s} "
            f"{str(sweep.final('untestable')):>12s} {cov:9.1f}%"
        )
    return "\n".join(lines)
