"""Tester-ready test-program export.

A test set is only useful to a downstream user once it carries *expected
responses*: the vectors plus the fault-free output values a tester should
strobe each cycle (with don't-strobe marks where the good machine is still
unknown).  This module renders and parses that program in a simple,
line-oriented text format:

.. code-block:: text

    # circuit: s27
    # inputs: G0 G1 G2 G3
    # outputs: G17
    1011 | 0
    0100 | x

Vectors apply at the cycle boundary; the response column holds the
pre-clock primary-output values of the same cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..circuit.netlist import Circuit
from ..simulation.compiled import compile_circuit
from ..simulation.encoding import X, pack_const, unpack
from ..simulation.logic_sim import FrameSimulator


@dataclass
class TestProgram:
    """Vectors with fault-free expected responses.

    Attributes:
        circuit_name: name of the circuit the program targets.
        inputs / outputs: port names, in vector bit order.
        vectors: scalar PI values per cycle (0/1/X).
        responses: scalar expected PO values per cycle (0/1/X; X = do not
            strobe).
    """

    circuit_name: str
    inputs: List[str]
    outputs: List[str]
    vectors: List[List[int]]
    responses: List[List[int]]

    def __len__(self) -> int:
        return len(self.vectors)

    def render(self) -> str:
        """Serialise to the text format."""
        lines = [
            f"# circuit: {self.circuit_name}",
            f"# inputs: {' '.join(self.inputs)}",
            f"# outputs: {' '.join(self.outputs)}",
        ]
        for vec, resp in zip(self.vectors, self.responses):
            left = "".join(_char(v) for v in vec)
            right = "".join(_char(v) for v in resp)
            lines.append(f"{left} | {right}")
        return "\n".join(lines) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())


def _char(value: int) -> str:
    return "x" if value == X else str(value)


def _scalar(ch: str) -> int:
    return X if ch in "xX" else int(ch)


def build_test_program(
    circuit: Circuit, vectors: Sequence[Sequence[int]]
) -> TestProgram:
    """Simulate the fault-free machine and attach expected responses."""
    sim = FrameSimulator(compile_circuit(circuit), width=1)
    responses: List[List[int]] = []
    for vec in vectors:
        po = sim.step([pack_const(v, 1) for v in vec])
        responses.append([unpack(v, 1)[0] for v in po])
    return TestProgram(
        circuit_name=circuit.name,
        inputs=list(circuit.inputs),
        outputs=list(circuit.outputs),
        vectors=[list(v) for v in vectors],
        responses=responses,
    )


def parse_test_program(text: str) -> TestProgram:
    """Parse the text format back into a :class:`TestProgram`."""
    name = ""
    inputs: List[str] = []
    outputs: List[str] = []
    vectors: List[List[int]] = []
    responses: List[List[int]] = []
    for line_no, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("circuit:"):
                name = body.split(":", 1)[1].strip()
            elif body.startswith("inputs:"):
                inputs = body.split(":", 1)[1].split()
            elif body.startswith("outputs:"):
                outputs = body.split(":", 1)[1].split()
            continue
        if "|" not in line:
            raise ValueError(f"line {line_no}: missing response separator")
        left, right = (part.strip() for part in line.split("|", 1))
        vectors.append([_scalar(ch) for ch in left])
        responses.append([_scalar(ch) for ch in right])
    return TestProgram(name, inputs, outputs, vectors, responses)


def verify_test_program(circuit: Circuit, program: TestProgram) -> bool:
    """Re-simulate and confirm every strobed response matches."""
    fresh = build_test_program(circuit, program.vectors)
    for got, expected in zip(fresh.responses, program.responses):
        for g, e in zip(got, expected):
            if e != X and g != e:
                return False
    return True
