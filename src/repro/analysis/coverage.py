"""Fault-coverage accounting and baselines.

Utilities the examples and benchmarks share: evaluate a test set against
a fault list, compare against a random-vector baseline, and summarise
per-fault outcomes the way ATPG papers report them (detected / untestable
/ aborted, fault coverage, and ATPG efficiency).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..circuit.netlist import Circuit
from ..faults.collapse import collapse_faults
from ..faults.model import Fault
from ..simulation.fault_sim import FaultSimulator


@dataclass
class CoverageReport:
    """Outcome of evaluating one test set.

    Attributes:
        total_faults: faults evaluated.
        detected: faults the test set detects, with first-detection frame.
        vectors: number of test vectors evaluated.
    """

    total_faults: int
    detected: Dict[Fault, int] = field(default_factory=dict)
    vectors: int = 0

    @property
    def coverage(self) -> float:
        """Detected fraction of the fault list (0..1)."""
        return len(self.detected) / self.total_faults if self.total_faults else 0.0

    @property
    def undetected(self) -> int:
        return self.total_faults - len(self.detected)

    def __str__(self) -> str:
        return (
            f"{len(self.detected)}/{self.total_faults} faults "
            f"({100.0 * self.coverage:.1f}%) with {self.vectors} vectors"
        )


def evaluate_test_set(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    faults: Optional[Sequence[Fault]] = None,
    width: int = 64,
    backend: Optional[str] = None,
    jobs: int = 1,
    fault_model: str = "stuck_at",
) -> CoverageReport:
    """Fault-simulate ``vectors`` from the all-X state and report coverage.

    ``fault_model`` picks the default fault universe (ignored when an
    explicit ``faults`` list is given, which may mix models freely).
    """
    fault_list = (
        list(faults)
        if faults is not None
        else collapse_faults(circuit, fault_model)
    )
    sim = FaultSimulator(circuit, width=width, backend=backend, jobs=jobs)
    result = sim.run(vectors, fault_list)
    return CoverageReport(
        total_faults=len(fault_list),
        detected=dict(result.detected),
        vectors=len(vectors),
    )


def random_vectors(
    circuit: Circuit, count: int, seed: int = 0
) -> List[List[int]]:
    """A reproducible random test sequence (scalars in PI order)."""
    rng = random.Random(seed)
    n = len(circuit.inputs)
    return [[rng.getrandbits(1) for _ in range(n)] for _ in range(count)]


def random_baseline(
    circuit: Circuit,
    count: int,
    faults: Optional[Sequence[Fault]] = None,
    seed: int = 0,
    width: int = 64,
    backend: Optional[str] = None,
    jobs: int = 1,
) -> CoverageReport:
    """Coverage of ``count`` random vectors — the weakest sensible baseline."""
    return evaluate_test_set(
        circuit, random_vectors(circuit, count, seed), faults, width,
        backend=backend, jobs=jobs,
    )


def atpg_efficiency(
    detected: int, untestable: int, total: int
) -> float:
    """ATPG efficiency: classified faults / total (detected + proven)."""
    return (detected + untestable) / total if total else 0.0
