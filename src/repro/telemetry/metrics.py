"""Counters, histograms, and span-style phase timers for ATPG runs.

Everything in the pipeline reports through a :class:`Recorder`.  The
default recorder is :data:`NULL_RECORDER` — a no-op whose methods are
empty and whose spans are a single shared reusable context manager — so
instrumented code paths cost a plain method call when telemetry is off.
Passing a :class:`TelemetryRecorder` instead turns every ``count`` /
``observe`` / ``span`` call into structured data:

* **counters** — monotonically increasing integers (``atpg.backtracks``,
  ``sim.frames``, ``ga.generations`` …);
* **histograms** — value distributions with count/total/min/max
  (``justify.ga.seconds`` …); every finished span feeds one;
* **trace events** — optional Chrome-trace-style complete events
  (``ph: "X"``) with microsecond timestamps, written as JSONL by
  :meth:`TelemetryRecorder.save_trace`.

Metric names are dotted paths; the full catalogue lives in
``docs/TELEMETRY.md``.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional

from ..clock import perf_counter


class Histogram:
    """Streaming summary of an observed value distribution."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def record(self, value: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its current ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.record(value)

    def value(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self.counters.get(name, 0)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's data into this one."""
        for name, n in other.counters.items():
            self.count(name, n)
        # gauges are point-in-time: the merged-in registry's value wins
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.count += hist.count
            mine.total += hist.total
            mine.min = min(mine.min, hist.min)
            mine.max = max(mine.max, hist.max)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot: sorted counters and histogram summaries."""
        data: Dict[str, Any] = {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: hist.to_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }
        if self.gauges:
            data["gauges"] = dict(sorted(self.gauges.items()))
        return data


class _NullSpan:
    """Reusable do-nothing context manager shared by every no-op span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Recorder:
    """Telemetry interface; this base class is the no-op implementation.

    ``enabled`` lets hot loops skip *preparing* expensive attributes
    (string formatting, aggregation) when telemetry is off; calling the
    methods unconditionally is always safe and nearly free.
    """

    enabled: bool = False

    def count(self, name: str, n: int = 1) -> None:
        """Increment a counter (no-op)."""

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge (no-op)."""

    def observe(self, name: str, value: float) -> None:
        """Record a histogram observation (no-op)."""

    def event(self, name: str, **attrs: object) -> None:
        """Record an instantaneous trace event (no-op)."""

    def span(self, name: str, **attrs: object) -> Any:
        """Context manager timing a phase (no-op)."""
        return _NULL_SPAN

    def value(self, name: str) -> int:
        """Current counter value (always 0 for the no-op recorder)."""
        return 0


class NullRecorder(Recorder):
    """Explicit alias of the no-op base recorder."""


#: Shared default recorder: safe to use from any number of components.
NULL_RECORDER = NullRecorder()


class _Span:
    """Times one phase; feeds a histogram and (optionally) a trace event."""

    __slots__ = ("_recorder", "_name", "_attrs", "_start")

    def __init__(
        self,
        recorder: "TelemetryRecorder",
        name: str,
        attrs: Dict[str, object],
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._recorder.clock()
        self._recorder.push(self._name)
        return self

    def __exit__(self, *exc: object) -> None:
        recorder = self._recorder
        end = recorder.clock()
        recorder.pop()
        recorder.finish_span(self._name, self._start, end, self._attrs)


class TelemetryRecorder(Recorder):
    """Collects counters, histograms, and (optionally) trace events.

    Args:
        trace: also keep a Chrome-trace-style event list (one complete
            event per finished span) retrievable via :attr:`trace_events`
            and :meth:`save_trace`.
        clock: monotonic time source, injectable for tests.
    """

    enabled = True

    def __init__(
        self,
        trace: bool = False,
        clock: Callable[[], float] = perf_counter,
    ) -> None:
        self.registry = MetricsRegistry()
        self.trace_enabled = trace
        self.trace_events: List[Dict[str, Any]] = []
        self.clock = clock
        self._epoch = clock()
        self._stack: List[str] = []

    # -- Recorder interface -------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.registry.count(name, n)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(name, value)

    def event(self, name: str, **attrs: object) -> None:
        if self.trace_enabled:
            self.trace_events.append(
                {
                    "name": name,
                    "ph": "i",
                    "ts": (self.clock() - self._epoch) * 1e6,
                    "args": attrs,
                }
            )

    def span(self, name: str, **attrs: object) -> _Span:
        return _Span(self, name, attrs)

    def value(self, name: str) -> int:
        return self.registry.value(name)

    # -- span plumbing -------------------------------------------------
    def push(self, name: str) -> None:
        self._stack.append(name)

    def pop(self) -> None:
        self._stack.pop()

    @property
    def depth(self) -> int:
        """Current span nesting depth."""
        return len(self._stack)

    def finish_span(
        self,
        name: str,
        start: float,
        end: float,
        attrs: Dict[str, object],
    ) -> None:
        """Record one completed span (called by :class:`_Span`)."""
        duration = end - start
        self.registry.count(f"{name}.calls")
        self.registry.observe(f"{name}.seconds", duration)
        if self.trace_enabled:
            event: Dict[str, Any] = {
                "name": name,
                "ph": "X",
                "ts": (start - self._epoch) * 1e6,
                "dur": duration * 1e6,
                "depth": len(self._stack),
            }
            if attrs:
                event["args"] = attrs
            self.trace_events.append(event)

    # -- output --------------------------------------------------------
    def save_trace(self, path: str) -> None:
        """Write the trace as JSON Lines (one event object per line)."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.trace_events:
                handle.write(json.dumps(event) + "\n")


def make_recorder(
    enabled: bool, trace: bool = False
) -> Optional[TelemetryRecorder]:
    """A :class:`TelemetryRecorder` when asked for, else ``None``.

    Convenience for CLI glue: components treat ``None`` as "use the
    shared :data:`NULL_RECORDER`".
    """
    if not enabled and not trace:
        return None
    return TelemetryRecorder(trace=trace)
