"""Run telemetry: metrics, phase-span timers, and campaign run reports.

The pipeline is instrumented against the :class:`Recorder` interface.
The default :data:`NULL_RECORDER` is a no-op (telemetry off costs one
empty method call per instrumentation point); a :class:`TelemetryRecorder`
collects counters/histograms and, when asked, Chrome-trace-style span
events.  :class:`RunReport` serializes a whole campaign — per-pass rows,
per-fault dispositions, simulation volume, timing — to versioned JSON
that the CI benchmark/regression gates consume.
"""

from .metrics import (
    Histogram,
    MetricsRegistry,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TelemetryRecorder,
    make_recorder,
)
from .report import (
    FAULT_STATUSES,
    FaultRecord,
    PassReport,
    RunReport,
    SCHEMA,
    diff_reports,
    merge_run_reports,
    render_diff,
    validate_report,
)

__all__ = [
    "FAULT_STATUSES",
    "FaultRecord",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "PassReport",
    "Recorder",
    "RunReport",
    "SCHEMA",
    "TelemetryRecorder",
    "diff_reports",
    "make_recorder",
    "merge_run_reports",
    "render_diff",
    "validate_report",
]
