"""Structured run reports: a complete ATPG campaign as one JSON document.

A :class:`RunReport` captures everything Table II/III summarises plus the
diagnostics the paper's authors used internally: per-pass statistics,
per-fault dispositions (which pass resolved each fault, how, at what
backtrack/time cost), simulation volume, and the full metrics snapshot of
the run's :class:`~repro.telemetry.metrics.MetricsRegistry`.  Reports
serialize to a versioned JSON schema (``repro-run-report/v1``) that the CI
benchmark gates consume; :func:`validate_report` checks a document against
it and :func:`diff_reports` compares two campaigns field by field.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Identifier embedded in every serialized report.
SCHEMA = "repro-run-report/v1"

#: Allowed per-fault disposition statuses.
FAULT_STATUSES = ("detected", "untestable", "aborted", "prefiltered")

#: Allowed per-fault justification labels.
JUSTIFICATIONS = ("ga", "deterministic", "none")


@dataclass
class FaultRecord:
    """Final disposition of one target fault across the whole campaign.

    Attributes:
        fault: printable fault name (site and stuck value).
        status: one of :data:`FAULT_STATUSES`.
        pass_number: pass that resolved the fault (last pass that targeted
            it for ``aborted``; 0 for ``prefiltered``).
        targeted: how many passes targeted this fault explicitly.
        time_s: wall-clock seconds spent targeting it.
        backtracks: PODEM backtracks spent on it.
        justification: how its accepted test's state was justified
            (``"none"`` when no test was accepted or none was needed).
        ga_generations: GA generations consumed while targeting it
            (0 when telemetry was disabled).
        incidental: detected by another fault's test, never by its own.
        features: static per-fault feature dict recorded by the driver
            (see :data:`repro.policy.features.FEATURE_NAMES`), making
            reports self-contained policy training data.  ``None`` on
            reports predating the field — readers must tolerate both.
        knowledge_hits: knowledge-store hits (justified + unjustifiable
            + PODEM prunes) credited while targeting this fault.
    """

    fault: str
    status: str
    pass_number: int = 0
    targeted: int = 0
    time_s: float = 0.0
    backtracks: int = 0
    justification: str = "none"
    ga_generations: int = 0
    incidental: bool = False
    features: Optional[Dict[str, float]] = None
    knowledge_hits: int = 0


@dataclass
class PassReport:
    """One pass through the fault list (non-cumulative view).

    ``detected_new`` counts targeted *and* incidental detections credited
    during the pass; ``untestable_new`` counts faults proven untestable in
    it; ``time_s`` is the duration of this pass alone.
    """

    number: int
    approach: str
    targeted: int = 0
    detected_new: int = 0
    untestable_new: int = 0
    aborted: int = 0
    ga_justified: int = 0
    det_justified: int = 0
    validation_failures: int = 0
    time_s: float = 0.0


@dataclass
class RunReport:
    """Serializable record of one multi-pass test-generation campaign."""

    circuit: str
    generator: str
    total_faults: int
    schema: str = SCHEMA
    seed: Optional[int] = None
    backend: Optional[str] = None
    #: fault model the campaign targeted; serialized only when
    #: non-default, so stuck-at report payloads stay byte-identical to
    #: documents written before the field existed
    fault_model: str = "stuck_at"
    jobs: int = 1
    width: int = 64
    detected: int = 0
    untestable: int = 0
    vectors: int = 0
    fault_coverage: float = 0.0
    wall_time_s: float = 0.0
    cpu_time_s: float = 0.0
    kernel_compiles: int = 0
    kernel_compile_s: float = 0.0
    passes: List[PassReport] = field(default_factory=list)
    faults: List[FaultRecord] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        if self.fault_model == "stuck_at":
            del data["fault_model"]
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunReport":
        """Build a report from a parsed document, validating it first."""
        problems = validate_report(data)
        if problems:
            raise ValueError("invalid run report: " + "; ".join(problems[:5]))
        passes = [PassReport(**p) for p in data.get("passes", [])]
        faults = [FaultRecord(**f) for f in data.get("faults", [])]
        scalars = {
            key: value
            for key, value in data.items()
            if key not in ("passes", "faults")
        }
        return cls(passes=passes, faults=faults, **scalars)

    @classmethod
    def load(cls, path: str) -> "RunReport":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # -- rendering -----------------------------------------------------
    def summary(self) -> str:
        """Human-readable multi-line digest of the campaign."""
        lines = [
            f"{self.circuit} ({self.generator}): {self.total_faults} faults, "
            f"backend={self.backend or 'default'}, jobs={self.jobs}, "
            f"seed={self.seed}",
            f"  coverage {100.0 * self.fault_coverage:.1f}%  "
            f"vectors {self.vectors}  untestable {self.untestable}  "
            f"wall {self.wall_time_s:.2f}s  cpu {self.cpu_time_s:.2f}s",
        ]
        for p in self.passes:
            lines.append(
                f"  pass {p.number} [{p.approach:>13s}] "
                f"targeted {p.targeted:>4d}  +det {p.detected_new:>4d}  "
                f"+unt {p.untestable_new:>3d}  aborted {p.aborted:>4d}  "
                f"ga/det justified {p.ga_justified}/{p.det_justified}  "
                f"{p.time_s:.2f}s"
            )
        by_status: Dict[str, int] = {}
        for record in self.faults:
            by_status[record.status] = by_status.get(record.status, 0) + 1
        dispositions = ", ".join(
            f"{status}={by_status[status]}"
            for status in FAULT_STATUSES
            if status in by_status
        )
        lines.append(f"  dispositions: {dispositions or 'none recorded'}")
        counters = self.metrics.get("counters", {})
        if counters:
            lines.append("  counters:")
            for name, value in sorted(counters.items()):
                lines.append(f"    {name:<32s} {value}")
        return "\n".join(lines)


def _problem(problems: List[str], condition: bool, message: str) -> None:
    if condition:
        problems.append(message)


def validate_report(data: Any) -> List[str]:
    """Check a parsed document against the v1 report schema.

    Returns a list of human-readable problems; an empty list means the
    document is schema-valid.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["report must be a JSON object"]
    _problem(
        problems,
        data.get("schema") != SCHEMA,
        f"schema must be {SCHEMA!r}, got {data.get('schema')!r}",
    )
    for key, types in (
        ("circuit", str),
        ("generator", str),
        ("total_faults", int),
        ("detected", int),
        ("untestable", int),
        ("vectors", int),
        ("jobs", int),
        ("width", int),
        ("fault_coverage", (int, float)),
        ("wall_time_s", (int, float)),
        ("cpu_time_s", (int, float)),
        ("passes", list),
        ("faults", list),
        ("metrics", dict),
    ):
        if key not in data:
            problems.append(f"missing key {key!r}")
        elif not isinstance(data[key], types) or isinstance(data[key], bool):
            problems.append(f"key {key!r} has wrong type")
    for index, entry in enumerate(data.get("passes") or []):
        if not isinstance(entry, dict):
            problems.append(f"passes[{index}] is not an object")
            continue
        for key in ("number", "approach", "targeted", "detected_new"):
            _problem(
                problems,
                key not in entry,
                f"passes[{index}] missing {key!r}",
            )
    for index, entry in enumerate(data.get("faults") or []):
        if not isinstance(entry, dict):
            problems.append(f"faults[{index}] is not an object")
            continue
        _problem(
            problems,
            entry.get("status") not in FAULT_STATUSES,
            f"faults[{index}] has unknown status {entry.get('status')!r}",
        )
        _problem(
            problems,
            entry.get("justification") not in JUSTIFICATIONS,
            f"faults[{index}] has unknown justification "
            f"{entry.get('justification')!r}",
        )
        _problem(
            problems,
            not isinstance(entry.get("fault"), str),
            f"faults[{index}] missing fault name",
        )
        features = entry.get("features")
        _problem(
            problems,
            features is not None
            and (
                not isinstance(features, dict)
                or any(
                    not isinstance(key, str)
                    or isinstance(value, bool)
                    or not isinstance(value, (int, float))
                    for key, value in features.items()
                )
            ),
            f"faults[{index}] features must be a name->number object",
        )
    return problems


def _uniform(values: List[Any]) -> Any:
    """The single common value, or ``None`` when reports disagree."""
    distinct = set(values)
    return values[0] if len(distinct) == 1 else None


def merge_run_reports(
    reports: List[RunReport],
    circuit: str = "campaign",
    generator: Optional[str] = None,
    prefix_faults: bool = True,
) -> RunReport:
    """Roll many per-item run reports into one campaign-level report.

    Totals, per-pass statistics (aggregated by pass number and approach),
    fault dispositions, and metrics counters are summed across the input
    reports; wall/CPU time sum to the campaign's aggregate compute cost
    (the orchestrator's elapsed wall clock is a different number, which a
    campaign runner sets on the merged report afterwards).  Fault names
    are prefixed with their source circuit when ``prefix_faults`` so
    same-named faults from different circuits stay distinguishable.

    Detection totals here are the per-item sums; a campaign merge stage
    that re-grades tests across shards overwrites ``detected``,
    ``vectors``, and ``fault_coverage`` with the cross-credited truth.

    Disposition ordering is deterministic regardless of the order the
    input reports arrive in: source reports are visited sorted by
    (circuit, first fault name, seed) — a content-derived key — with
    each report's own record order preserved, so merges of the same
    item results always serialize byte-identically (policy training
    and report diffing rely on this).
    """
    if not reports:
        raise ValueError("cannot merge zero reports")
    merged = RunReport(
        circuit=circuit,
        generator=generator or _uniform([r.generator for r in reports]) or "campaign",
        total_faults=sum(r.total_faults for r in reports),
        seed=_uniform([r.seed for r in reports]),
        backend=_uniform([r.backend for r in reports]),
        fault_model=_uniform([r.fault_model for r in reports]) or "stuck_at",
        jobs=max(r.jobs for r in reports),
        width=_uniform([r.width for r in reports]) or reports[0].width,
        detected=sum(r.detected for r in reports),
        untestable=sum(r.untestable for r in reports),
        vectors=sum(r.vectors for r in reports),
        wall_time_s=sum(r.wall_time_s for r in reports),
        cpu_time_s=sum(r.cpu_time_s for r in reports),
        kernel_compiles=sum(r.kernel_compiles for r in reports),
        kernel_compile_s=sum(r.kernel_compile_s for r in reports),
    )
    merged.fault_coverage = (
        merged.detected / merged.total_faults if merged.total_faults else 0.0
    )
    by_pass: Dict[Tuple[int, str], PassReport] = {}
    for report in reports:
        for p in report.passes:
            agg = by_pass.get((p.number, p.approach))
            if agg is None:
                agg = by_pass[(p.number, p.approach)] = PassReport(
                    number=p.number, approach=p.approach
                )
            agg.targeted += p.targeted
            agg.detected_new += p.detected_new
            agg.untestable_new += p.untestable_new
            agg.aborted += p.aborted
            agg.ga_justified += p.ga_justified
            agg.det_justified += p.det_justified
            agg.validation_failures += p.validation_failures
            agg.time_s += p.time_s
    merged.passes = [by_pass[key] for key in sorted(by_pass)]

    def _fault_order(report: RunReport) -> Tuple[str, str, str]:
        first = report.faults[0].fault if report.faults else ""
        return (report.circuit, first, str(report.seed))

    for report in sorted(reports, key=_fault_order):
        for record in report.faults:
            copy = FaultRecord(**asdict(record))
            if prefix_faults:
                copy.fault = f"{report.circuit}:{record.fault}"
            merged.faults.append(copy)
    counters: Dict[str, float] = {}
    for report in reports:
        for name, value in report.metrics.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
    if counters:
        merged.metrics = {"counters": counters}
    return merged


#: Scalar fields compared by :func:`diff_reports`.
_DIFF_FIELDS = (
    "total_faults",
    "detected",
    "untestable",
    "vectors",
    "fault_coverage",
    "wall_time_s",
    "cpu_time_s",
    "kernel_compiles",
)


def diff_reports(
    new: RunReport, old: RunReport
) -> Dict[str, Tuple[float, float, float]]:
    """Field-by-field comparison: name -> (new, old, new - old).

    Covers the scalar campaign fields plus every counter present in
    either report's metrics snapshot (missing counters count as 0).
    """
    out: Dict[str, Tuple[float, float, float]] = {}
    for name in _DIFF_FIELDS:
        a = getattr(new, name)
        b = getattr(old, name)
        out[name] = (a, b, a - b)
    new_counters = new.metrics.get("counters", {})
    old_counters = old.metrics.get("counters", {})
    for name in sorted(set(new_counters) | set(old_counters)):
        a = new_counters.get(name, 0)
        b = old_counters.get(name, 0)
        out[f"counters.{name}"] = (a, b, a - b)
    return out


def render_diff(
    new: RunReport, old: RunReport, only_changed: bool = False
) -> str:
    """Render :func:`diff_reports` as an aligned text table."""
    rows = diff_reports(new, old)
    lines = [
        f"run report diff: {new.circuit}/{new.generator} "
        f"vs {old.circuit}/{old.generator}",
        f"{'field':<40s} {'new':>12s} {'old':>12s} {'delta':>12s}",
    ]
    for name, (a, b, delta) in rows.items():
        if only_changed and delta == 0:
            continue
        lines.append(f"{name:<40s} {a:>12.4g} {b:>12.4g} {delta:>+12.4g}")
    return "\n".join(lines)
