"""Lint-style guard: every wall-clock read goes through ``repro.clock``.

PR 3 made every deadline clock-injectable; this test keeps it that way.
A direct ``time.time()`` / ``time.monotonic()`` / ``time.perf_counter()``
read anywhere in ``src/repro`` (outside the sanctioned ``clock`` module)
re-introduces an untestable timeout path, so the grep fails the build
with the exact offending lines.  ``time.sleep`` (a delay, not a read) and
``time.process_time`` (CPU accounting, not wall clock) stay allowed.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Wall-clock reads that must be imported from :mod:`repro.clock` instead.
FORBIDDEN = re.compile(r"\btime\.(time|monotonic|perf_counter)\b")

#: The one module allowed to touch the real clocks.
SANCTIONED = SRC / "clock.py"


def test_source_tree_exists() -> None:
    assert SRC.is_dir(), f"source tree not found at {SRC}"
    assert SANCTIONED.is_file(), "repro/clock.py is missing"


def test_no_direct_wallclock_reads_outside_clock_module() -> None:
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        if path == SANCTIONED:
            continue
        lines = path.read_text(encoding="utf-8").splitlines()
        for lineno, line in enumerate(lines, 1):
            if FORBIDDEN.search(line):
                rel = path.relative_to(SRC.parent)
                violations.append(f"{rel}:{lineno}: {line.strip()}")
    assert not violations, (
        "direct wall-clock reads found; import from repro.clock instead:\n"
        + "\n".join(violations)
    )


def test_clock_module_is_the_single_time_authority() -> None:
    """The sanctioned module really does export the three clocks."""
    from repro import clock

    assert callable(clock.monotonic)
    assert callable(clock.perf_counter)
    assert callable(clock.wall)
    # Monotonic clocks never run backwards.
    a, b = clock.monotonic(), clock.monotonic()
    assert b >= a
