"""Tests for the extended CLI commands (convert, scan, diagnose, compact)."""

import pytest

from repro.cli import main, resolve_circuit
from repro.circuit.bench import load_bench
from repro.circuit.verilog import load_verilog
from repro.circuits import s27


class TestConvert:
    def test_bench_to_verilog(self, tmp_path, capsys):
        out = str(tmp_path / "s27.v")
        assert main(["convert", "s27", out]) == 0
        assert load_verilog(out).gates == s27().gates

    def test_verilog_to_bench(self, tmp_path):
        v = str(tmp_path / "s27.v")
        b = str(tmp_path / "s27.bench")
        main(["convert", "s27", v])
        assert main(["convert", v, b]) == 0
        assert load_bench(b).gates == s27().gates

    def test_resolve_verilog_path(self, tmp_path):
        v = str(tmp_path / "c.v")
        main(["convert", "s27", v])
        assert resolve_circuit(v).num_gates == 10


class TestScanCommand:
    def test_scan_insertion(self, tmp_path, capsys):
        out = str(tmp_path / "s27_scan.bench")
        assert main(["scan", "s27", out]) == 0
        assert "3-bit scan chain" in capsys.readouterr().out
        scanned = load_bench(out)
        assert "scan_enable" in scanned.inputs
        assert "scan_out" in scanned.outputs


class TestCompactFlag:
    def test_atpg_compact(self, tmp_path, capsys):
        out = str(tmp_path / "tests.vec")
        code = main([
            "atpg", "s27", "-o", out, "--compact",
            "--time-scale", "0.05", "--seed", "1",
        ])
        assert code == 0
        assert "compaction:" in capsys.readouterr().out


class TestDiagnoseCommand:
    def test_end_to_end(self, tmp_path, capsys):
        vec = str(tmp_path / "tests.vec")
        main(["atpg", "s27", "-o", vec, "--time-scale", "0.05", "--seed", "1"])
        capsys.readouterr()

        # craft failures from a known fault's signature
        from repro.analysis import FaultDictionary
        from repro.cli import _read_vectors

        circuit = s27()
        vectors = _read_vectors(vec, 4)
        dictionary = FaultDictionary(circuit, vectors)
        fault = dictionary.detected_faults[0]
        failures_file = tmp_path / "failures.txt"
        failures_file.write_text(
            "\n".join(f"{c} {p}" for c, p in sorted(dictionary.signatures[fault]))
        )
        assert main(["diagnose", "s27", vec, str(failures_file)]) == 0
        out = capsys.readouterr().out
        assert "1. [exact]" in out
        assert str(fault) in out
