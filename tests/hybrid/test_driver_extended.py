"""Deeper driver behaviours: prefiltering, blocks, validation accounting."""

import pytest

from repro.analysis.compaction import split_blocks
from repro.circuits import redundant_and, s27, untestable_stem
from repro.hybrid import (
    HybridTestGenerator,
    gahitec,
    gahitec_schedule,
    hitec_baseline,
    hitec_schedule,
)


def quick(x=12):
    return gahitec_schedule(x=x, time_scale=None, backtrack_base=100)


class TestPrefilter:
    def test_prefilter_finds_redundancy(self):
        driver = hitec_baseline(redundant_and(), seed=0)
        proven = driver.prefilter_untestable()
        assert proven, "the consensus redundancy must be proven up front"
        result = driver.run(hitec_schedule(time_scale=None, backtrack_base=100))
        # everything left is detectable
        assert len(result.detected) == result.total_faults

    def test_prefilter_shrinks_target_list(self):
        circuit, fault = untestable_stem()
        driver = gahitec(circuit, seed=0)
        before = len(driver.all_faults)
        proven = driver.prefilter_untestable()
        assert len(driver.all_faults) == before - len(proven)
        assert driver.prefiltered_untestable == proven

    def test_prefilter_never_removes_testable(self):
        driver = gahitec(s27(), seed=0)
        assert driver.prefilter_untestable() == []


class TestBlocks:
    def test_blocks_partition_test_set(self):
        result = gahitec(s27(), seed=1).run(quick())
        assert result.blocks
        assert result.blocks[0] == 0
        assert result.blocks == sorted(result.blocks)
        assert all(0 <= b < len(result.test_set) for b in result.blocks)
        blocks = split_blocks(result.test_set, result.blocks)
        assert sum(len(b) for b in blocks) == len(result.test_set)

    def test_detected_indices_are_block_starts(self):
        result = gahitec(s27(), seed=1).run(quick())
        starts = set(result.blocks)
        assert all(base in starts for base in result.detected.values())


class TestAccounting:
    def test_targeted_counts_bounded_by_faults(self):
        result = gahitec(s27(), seed=1).run(quick())
        for stats in result.passes:
            assert stats.targeted <= result.total_faults
            assert stats.aborted <= stats.targeted

    def test_validation_failures_rare_on_s27(self):
        """In-engine verification should leave commit-time rejects at ~0."""
        result = gahitec(s27(), seed=1).run(quick())
        assert sum(p.validation_failures for p in result.passes) == 0

    def test_time_accumulates_across_passes(self):
        result = gahitec(s27(), seed=1).run(quick())
        times = [p.time_s for p in result.passes]
        assert times == sorted(times)

    def test_max_frames_override(self):
        driver = HybridTestGenerator(s27(), seed=1, max_frames=4)
        assert driver.max_frames == 4
        assert driver.seqgen.max_frames == 4

    def test_default_max_frames_heuristic(self):
        driver = HybridTestGenerator(s27(), seed=1)
        assert 4 <= driver.max_frames <= 16
