"""Seed determinism and injectable-clock behaviour of the driver.

The campaign subsystem's resume guarantee rests on these invariants:
identical seeds (with no wall-clock-dependent pass limits) must produce
byte-identical fault dispositions and test vectors, and all wall-clock
reads must go through the injectable clock so tests and workers control
time.
"""

import json

from repro.atpg.podem import Limits
from repro.atpg.scoap import compute_testability
from repro.circuits import s27
from repro.hybrid.driver import HybridTestGenerator, gahitec
from repro.hybrid.passes import gahitec_schedule
from repro.simulation.compiled import compile_circuit


def run_once(seed, clock=None):
    driver = gahitec(s27(), seed=seed, clock=clock)
    result = driver.run(gahitec_schedule(x=8, num_passes=2, time_scale=None))
    return result


def disposition_bytes(result):
    """Canonical byte encoding of every fault's final disposition."""
    records = [
        {
            "fault": r.fault,
            "status": r.status,
            "pass": r.pass_number,
            "justification": r.justification,
            "incidental": r.incidental,
        }
        for r in result.report.faults
    ]
    return json.dumps(records, sort_keys=True).encode()


class TestSeedDeterminism:
    def test_identical_seeds_identical_dispositions_and_vectors(self):
        a = run_once(seed=7)
        b = run_once(seed=7)
        assert disposition_bytes(a) == disposition_bytes(b)
        assert a.test_set == b.test_set
        assert a.blocks == b.blocks
        assert sorted(map(str, a.untestable)) == sorted(map(str, b.untestable))

    def test_fake_clock_zeroes_every_duration(self):
        result = run_once(seed=7, clock=lambda: 0.0)
        assert result.report.wall_time_s == 0.0
        assert all(p.time_s == 0.0 for p in result.report.passes)

    def test_fake_clock_runs_match_real_clock_runs(self):
        fake = run_once(seed=7, clock=lambda: 0.0)
        real = run_once(seed=7)
        assert disposition_bytes(fake) == disposition_bytes(real)
        assert fake.test_set == real.test_set

    def test_precomputed_testability_matches_lazy(self):
        """The warm-fork invariant: handing the driver a precomputed
        SCOAP table (as campaign workers inherit from the pre-fork warm
        state) changes nothing about the results."""
        circuit = s27()
        warm = HybridTestGenerator(
            circuit, seed=7,
            testability=compute_testability(compile_circuit(circuit)),
        )
        schedule = gahitec_schedule(x=8, num_passes=2, time_scale=None)
        warm_result = warm.run(schedule)
        cold_result = run_once(seed=7)
        assert disposition_bytes(warm_result) == disposition_bytes(cold_result)
        assert warm_result.test_set == cold_result.test_set


class TestDeadline:
    def test_expired_deadline_stops_before_any_fault(self):
        driver = gahitec(s27(), seed=1, clock=lambda: 100.0)
        schedule = gahitec_schedule(x=8, num_passes=1, time_scale=None)
        result = driver.run(schedule, deadline=50.0)
        assert result.deadline_expired
        assert result.test_set == []

    def test_future_deadline_does_not_interfere(self):
        driver = gahitec(s27(), seed=1, clock=lambda: 0.0)
        schedule = gahitec_schedule(x=8, num_passes=1, time_scale=None)
        result = driver.run(schedule, deadline=1e9)
        assert not result.deadline_expired
        reference = run_once(seed=1)
        assert result.test_set == reference.test_set[: len(result.test_set)]


class TestLimitsClock:
    def test_limits_use_injected_clock(self):
        ticks = iter([0.0, 10.0])
        limits = Limits(max_backtracks=5, deadline=5.0,
                        clock=lambda: next(ticks))
        assert not limits.expired()
        assert limits.expired()

    def test_no_deadline_never_expires(self):
        limits = Limits(max_backtracks=5)
        assert not limits.expired()
