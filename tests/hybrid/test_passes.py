"""Tests encoding Table I of the paper (the pass schedule)."""

import pytest

from repro.hybrid.passes import (
    DETERMINISTIC,
    GA,
    PassConfig,
    gahitec_schedule,
    hitec_schedule,
)


class TestTableI:
    """The schedule must match the paper's Table I exactly."""

    def test_three_pass_structure(self):
        sched = gahitec_schedule(x=32)
        assert [p.justification for p in sched] == [GA, GA, DETERMINISTIC]

    def test_pass1_parameters(self):
        p1 = gahitec_schedule(x=32)[0]
        assert p1.time_limit == 1.0       # 1-second limit per fault
        assert p1.population_size == 64   # population size = 64
        assert p1.generations == 4        # 4 generations
        assert p1.seq_len == 16           # sequence length = x/2

    def test_pass2_parameters(self):
        p2 = gahitec_schedule(x=32)[1]
        assert p2.time_limit == 10.0      # 10-second limit per fault
        assert p2.population_size == 128  # population size = 128
        assert p2.generations == 8        # 8 generations
        assert p2.seq_len == 32           # sequence length = x

    def test_pass3_parameters(self):
        p3 = gahitec_schedule(x=32)[2]
        assert p3.justification == DETERMINISTIC
        assert p3.time_limit == 100.0     # 100-second limit per fault

    def test_additional_passes_grow_tenfold(self):
        sched = gahitec_schedule(x=32, num_passes=5)
        assert sched[3].time_limit == 1000.0
        assert sched[4].time_limit == 10000.0

    def test_time_scale(self):
        sched = gahitec_schedule(x=32, time_scale=0.01)
        assert sched[0].time_limit == pytest.approx(0.01)
        assert sched[2].time_limit == pytest.approx(1.0)

    def test_time_scale_none_disables_limits(self):
        assert all(p.time_limit is None for p in gahitec_schedule(x=8, time_scale=None))

    def test_population_scale_for_s35932(self):
        """The paper used population 32 for s35932's first two passes."""
        sched = gahitec_schedule(x=16, population_scale=2)
        assert sched[0].population_size == 32
        assert sched[1].population_size == 64

    def test_rejects_tiny_x(self):
        with pytest.raises(ValueError):
            gahitec_schedule(x=1)


class TestHitecSchedule:
    def test_all_deterministic(self):
        sched = hitec_schedule(num_passes=4)
        assert all(p.justification == DETERMINISTIC for p in sched)

    def test_tenfold_time_growth(self):
        sched = hitec_schedule(num_passes=3)
        assert [p.time_limit for p in sched] == [1.0, 10.0, 100.0]

    def test_backtracks_grow(self):
        sched = hitec_schedule(num_passes=3, backtrack_base=100)
        assert sched[0].max_backtracks < sched[1].max_backtracks
        assert sched[1].max_backtracks < sched[2].max_backtracks


class TestPassConfig:
    def test_rejects_unknown_justification(self):
        with pytest.raises(ValueError):
            PassConfig(1, "magic", None, 100)

    def test_ga_pass_needs_sequence_length(self):
        with pytest.raises(ValueError):
            PassConfig(1, GA, None, 100, seq_len=0)
