"""Integration tests for the multi-pass GA-HITEC / HITEC drivers."""

import pytest

from repro.analysis.coverage import evaluate_test_set
from repro.circuits import redundant_and, REDUNDANT_FAULT, s27, two_stage_pipeline
from repro.faults.collapse import collapse_faults
from repro.hybrid.driver import HybridTestGenerator, gahitec, hitec_baseline
from repro.hybrid.passes import gahitec_schedule, hitec_schedule


def quick_ga_schedule(x=12):
    return gahitec_schedule(x=x, time_scale=None, backtrack_base=100)


def quick_det_schedule():
    return hitec_schedule(time_scale=None, backtrack_base=100)


class TestGAHitecOnS27:
    @pytest.fixture(scope="class")
    def result(self):
        return gahitec(s27(), seed=1).run(quick_ga_schedule())

    def test_full_coverage(self, result):
        assert result.fault_coverage == 1.0
        assert not result.untestable

    def test_pass_rows_are_cumulative(self, result):
        det = [p.detected for p in result.passes]
        vec = [p.vectors for p in result.passes]
        assert det == sorted(det)
        assert vec == sorted(vec)

    def test_test_set_achieves_reported_coverage(self, result):
        """The returned vectors must reproduce the claimed detections."""
        report = evaluate_test_set(s27(), result.test_set,
                                   collapse_faults(s27()))
        assert set(report.detected) == set(result.detected)

    def test_reported_counts_consistent(self, result):
        last = result.passes[-1]
        assert last.detected == len(result.detected)
        assert last.vectors == len(result.test_set)
        assert last.untestable == len(result.untestable)

    def test_ga_justification_used(self, result):
        assert any(p.ga_justified > 0 for p in result.passes[:2])


class TestHitecBaselineOnS27:
    @pytest.fixture(scope="class")
    def result(self):
        return hitec_baseline(s27(), seed=1).run(quick_det_schedule())

    def test_full_coverage(self, result):
        assert result.fault_coverage == 1.0

    def test_generator_name(self, result):
        assert result.generator == "HITEC"

    def test_no_ga_used(self, result):
        assert all(p.ga_justified == 0 for p in result.passes)


class TestDriverMechanics:
    def test_reproducible_with_seed(self):
        a = gahitec(s27(), seed=5).run(quick_ga_schedule())
        b = gahitec(s27(), seed=5).run(quick_ga_schedule())
        assert a.test_set == b.test_set
        assert set(a.detected) == set(b.detected)

    def test_untestable_faults_identified_and_removed(self):
        circuit = redundant_and()
        drv = hitec_baseline(circuit, seed=0)
        result = drv.run(quick_det_schedule())
        # the driver works on collapsed representatives: check the class
        from repro.faults.collapse import equivalence_classes
        rep = equivalence_classes(circuit)[REDUNDANT_FAULT]
        assert rep in result.untestable
        # untestable + detected covers the whole collapsed list
        assert len(result.detected) + len(result.untestable) == result.total_faults

    def test_explicit_fault_list(self):
        circuit = two_stage_pipeline()
        faults = collapse_faults(circuit)[:2]
        drv = gahitec(circuit, seed=0, faults=faults)
        result = drv.run(quick_ga_schedule(x=4))
        assert result.total_faults == 2

    def test_incidental_detection_drops_faults(self):
        """One sequence typically detects more than its target fault."""
        drv = gahitec(s27(), seed=1)
        result = drv.run(quick_ga_schedule())
        targeted_detections = sum(p.targeted for p in result.passes)
        # far fewer targets than faults: the rest dropped via fault sim
        assert targeted_detections < result.total_faults

    def test_vectors_have_no_dont_cares(self):
        result = gahitec(s27(), seed=2).run(quick_ga_schedule())
        for vec in result.test_set:
            assert all(v in (0, 1) for v in vec)
            assert len(vec) == 4  # s27 has 4 PIs

    def test_summary_renders(self):
        result = gahitec(s27(), seed=1).run(quick_ga_schedule())
        text = result.summary()
        assert "s27" in text and "GA-HITEC" in text
        assert "pass 1" in text
