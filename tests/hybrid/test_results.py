"""Tests for result records and paper-style formatting."""

from repro.atpg.hitec import FlowCounters
from repro.hybrid.results import PassStats, RunResult, format_time


class TestFormatTime:
    def test_seconds(self):
        assert format_time(49.5) == "49.5s"

    def test_minutes(self):
        assert format_time(5.96 * 60) == "5.96m"

    def test_hours(self):
        assert format_time(2.39 * 3600) == "2.39h"

    def test_boundaries(self):
        assert format_time(59.9).endswith("s")
        assert format_time(60.0).endswith("m")
        assert format_time(3600.0).endswith("h")


class TestPassStats:
    def test_row_contains_all_columns(self):
        row = PassStats(1, "ga", detected=255, vectors=216,
                        time_s=49.5, untestable=0).row()
        assert "255" in row and "216" in row and "49.5s" in row

class TestRunResult:
    def _result(self):
        from repro.faults.model import Fault

        r = RunResult("s298", "GA-HITEC", total_faults=308)
        r.passes.append(PassStats(1, "ga", detected=255, vectors=216,
                                  time_s=49.5, untestable=0))
        r.passes.append(PassStats(2, "ga", detected=264, vectors=391,
                                  time_s=5.96 * 60, untestable=0))
        r.detected = {Fault(f"n{i}", 0): 0 for i in range(264)}
        return r

    def test_coverage(self):
        r = self._result()
        assert r.fault_coverage == 264 / 308

    def test_coverage_empty(self):
        assert RunResult("x", "GA-HITEC", 0).fault_coverage == 0.0

    def test_summary_layout(self):
        text = self._result().summary()
        lines = text.splitlines()
        assert lines[0].startswith("s298")
        assert "pass 1" in lines[1] and "pass 2" in lines[2]
        assert "coverage" in lines[-1]

    def test_flow_counters_default(self):
        assert self._result().flow == FlowCounters()
