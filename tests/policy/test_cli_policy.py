"""CLI surface: train-policy, --policy flags, --dispositions export."""

import json

from repro.cli import main


def make_report(tmp_path, name="rep.json", seed=3):
    path = str(tmp_path / name)
    assert main([
        "atpg", "s27", "--telemetry", path,
        "--time-scale", "0.05", "--seed", str(seed),
    ]) == 0
    return path


class TestTrainPolicy:
    def test_trains_and_writes_artifact(self, tmp_path, capsys):
        report = make_report(tmp_path)
        out = str(tmp_path / "policy.json")
        assert main(["train-policy", report, "-o", out]) == 0
        text = capsys.readouterr().out
        assert "dataset:" in text and "fit:" in text
        doc = json.load(open(out))
        assert doc["schema"] == "repro-policy/v1"
        assert doc["circuits"] == ["s27"]

    def test_shrink_ga_flag_recorded(self, tmp_path):
        report = make_report(tmp_path)
        out = str(tmp_path / "policy.json")
        assert main([
            "train-policy", report, "-o", out, "--shrink-ga",
        ]) == 0
        doc = json.load(open(out))
        assert doc["options"]["shrink_ga"] is True
        assert doc["options"]["cheap_cost"] is not None

    def test_missing_report_exits_2(self, tmp_path, capsys):
        out = str(tmp_path / "policy.json")
        code = main([
            "train-policy", str(tmp_path / "gone.json"), "-o", out,
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestApplyPolicy:
    def test_atpg_with_policy(self, tmp_path, capsys):
        report = make_report(tmp_path)
        policy = str(tmp_path / "policy.json")
        assert main(["train-policy", report, "-o", policy]) == 0
        capsys.readouterr()
        assert main([
            "atpg", "s27", "--policy", policy,
            "--time-scale", "0.05", "--seed", "3",
        ]) == 0
        assert "coverage" in capsys.readouterr().out

    def test_atpg_with_bad_policy_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        code = main([
            "atpg", "s27", "--policy", str(bad),
            "--time-scale", "0.05",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_campaign_run_with_policy(self, tmp_path, capsys):
        report = make_report(tmp_path)
        policy = str(tmp_path / "policy.json")
        assert main(["train-policy", report, "-o", policy]) == 0
        journal = str(tmp_path / "c.jsonl")
        assert main([
            "campaign", "run", "s27", "--journal", journal,
            "--policy", policy, "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        # the journal's spec records the policy file
        header = json.loads(open(journal).readline())
        assert header["spec"]["policy_file"] == policy


class TestDispositions:
    def test_export_jsonl(self, tmp_path, capsys):
        report = make_report(tmp_path)
        out = str(tmp_path / "disp.jsonl")
        assert main(["report", report, "--dispositions", out]) == 0
        assert "dispositions" in capsys.readouterr().out
        rows = [json.loads(line) for line in open(out)]
        assert rows and all("fault" in row for row in rows)
        assert all(
            isinstance(row.get("features"), dict) for row in rows
        )
        assert {"status", "pass_number", "backtracks"} <= set(rows[0])
