"""Per-fault feature extraction: values, layout, and stability."""

from repro.atpg.scoap import HARD, compute_testability
from repro.circuits import s27
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault
from repro.policy.features import (
    FEATURE_NAMES,
    fault_features,
    feature_vector,
    features_for_faults,
)
from repro.simulation.compiled import compile_circuit


def fixtures():
    cc = compile_circuit(s27())
    return cc, compute_testability(cc)


class TestFaultFeatures:
    def test_scoap_features_match_testability(self):
        cc, meas = fixtures()
        fault = Fault(net=cc.circuit.inputs[0], stuck=0)
        f = fault_features(cc, meas, fault)
        idx = cc.index[fault.net]
        assert f["cc0"] == float(min(meas.cc0[idx], HARD))
        assert f["cc1"] == float(min(meas.cc1[idx], HARD))
        assert f["co"] == float(min(meas.co[idx], HARD))
        # stuck-at-0 excitation means driving the site to 1
        assert f["excite_cost"] == f["cc1"]
        assert f["detect_cost"] == f["excite_cost"] + f["co"]

    def test_stuck_at_one_excites_with_cc0(self):
        cc, meas = fixtures()
        fault = Fault(net=cc.circuit.inputs[0], stuck=1)
        f = fault_features(cc, meas, fault)
        assert f["excite_cost"] == f["cc0"]
        assert f["stuck"] == 1.0

    def test_pi_and_ff_flags(self):
        cc, meas = fixtures()
        pi_fault = Fault(net=cc.circuit.inputs[0], stuck=0)
        assert fault_features(cc, meas, pi_fault)["is_pi"] == 1.0
        ff_net = next(
            net for net, i in cc.index.items() if i in cc.ff_out
        )
        ff_fault = Fault(net=ff_net, stuck=0)
        f = fault_features(cc, meas, ff_fault)
        assert f["is_ff_out"] == 1.0 and f["is_pi"] == 0.0

    def test_every_feature_name_is_produced(self):
        cc, meas = fixtures()
        fault = collapse_faults(cc.circuit)[0]
        # is_transition is emitted only for transition faults, so
        # stuck-at feature payloads stay byte-identical to pre-field docs
        assert (
            set(fault_features(cc, meas, fault))
            == set(FEATURE_NAMES) - {"is_transition"}
        )

    def test_transition_fault_tagged(self):
        cc, meas = fixtures()
        fault = collapse_faults(cc.circuit, "transition")[0]
        f = fault_features(cc, meas, fault)
        assert f["is_transition"] == 1.0

    def test_branch_fault_records_pin(self):
        cc, meas = fixtures()
        branch = next(
            f for f in collapse_faults(cc.circuit) if f.is_branch
        )
        f = fault_features(cc, meas, branch)
        assert f["is_branch"] == 1.0
        assert f["pin"] == float(branch.pin)


class TestFeatureVector:
    def test_layout_follows_feature_names(self):
        cc, meas = fixtures()
        fault = collapse_faults(cc.circuit)[0]
        f = fault_features(cc, meas, fault)
        vec = feature_vector(f)
        assert vec == [f.get(name, 0.0) for name in FEATURE_NAMES]

    def test_missing_keys_read_zero(self):
        vec = feature_vector({"cc0": 5.0})
        assert vec[0] == 5.0
        assert all(v == 0.0 for v in vec[1:])

    def test_unknown_keys_ignored(self):
        assert feature_vector({"not_a_feature": 9.0}) == [0.0] * len(
            FEATURE_NAMES
        )


class TestFeaturesForFaults:
    def test_keyed_by_fault_name(self):
        cc, meas = fixtures()
        faults = collapse_faults(cc.circuit)
        table = features_for_faults(cc, meas, faults)
        assert set(table) == {str(f) for f in faults}
        probe = faults[3]
        assert table[str(probe)] == fault_features(cc, meas, probe)
