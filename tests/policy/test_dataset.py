"""Mining run reports into labeled training datasets."""

import math

import pytest

from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault
from repro.policy.dataset import (
    dataset_from_reports,
    parse_fault,
)
from repro.policy.features import FEATURE_NAMES
from repro.telemetry.report import FaultRecord, RunReport


def report_with(faults, circuit="s27"):
    return RunReport(
        circuit=circuit,
        generator="GA-HITEC",
        seed=0,
        total_faults=len(faults),
        detected=sum(1 for f in faults if f.status == "detected"),
        untestable=0,
        fault_coverage=0.0,
        vectors=0,
        faults=faults,
    )


def embedded_record(name, status="detected", **kwargs):
    features = {key: 1.0 for key in FEATURE_NAMES}
    return FaultRecord(
        fault=name, status=status, features=features, **kwargs
    )


class TestParseFault:
    def test_stem_fault_roundtrip(self):
        fault = Fault(net="G17", stuck=1)
        assert parse_fault(str(fault)) == fault

    def test_branch_fault_roundtrip(self):
        fault = Fault(net="G5", stuck=0, gate="G10", pin=1)
        assert parse_fault(str(fault)) == fault

    def test_every_s27_fault_roundtrips(self):
        from repro.circuits import s27

        for fault in collapse_faults(s27()):
            assert parse_fault(str(fault)) == fault

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_fault("not a fault")


class TestMining:
    def test_embedded_features_used_directly(self):
        record = embedded_record(
            "G1 s-a-0", pass_number=2, backtracks=3, ga_generations=4
        )
        dataset = dataset_from_reports([report_with([record])])
        assert len(dataset.rows) == 1 and dataset.skipped == 0
        row = dataset.rows[0]
        assert row.circuit == "s27" and row.fault == "G1 s-a-0"
        assert row.detected == 1.0
        assert row.resolve_pass == 2.0
        assert row.cost == pytest.approx(math.log1p(7))

    def test_prefixed_fault_names_stripped(self):
        record = embedded_record("s298:G1 s-a-0")
        dataset = dataset_from_reports(
            [report_with([record], circuit="merged")]
        )
        row = dataset.rows[0]
        assert row.circuit == "s298" and row.fault == "G1 s-a-0"

    def test_backfill_recomputes_missing_features(self):
        fault = collapse_faults(__import__(
            "repro.circuits", fromlist=["s27"]).s27())[0]
        record = FaultRecord(fault=str(fault), status="detected")
        dataset = dataset_from_reports([report_with([record])])
        assert len(dataset.rows) == 1
        # model-conditional features (is_transition) are omitted for
        # stuck-at faults and read 0.0; everything else is recomputed
        features = set(dataset.rows[0].features)
        assert features <= set(FEATURE_NAMES)
        assert set(FEATURE_NAMES) - features <= {"is_transition"}

    def test_backfill_disabled_skips_featureless_rows(self):
        record = FaultRecord(fault="G1 s-a-0", status="detected")
        dataset = dataset_from_reports(
            [report_with([record])], backfill=False
        )
        assert not dataset.rows and dataset.skipped == 1

    def test_unresolvable_circuit_counted_not_fatal(self):
        record = FaultRecord(fault="G1 s-a-0", status="detected")
        dataset = dataset_from_reports(
            [report_with([record], circuit="no-such-circuit")]
        )
        assert not dataset.rows and dataset.skipped == 1

    def test_never_targeted_rows_label_pass_one(self):
        record = embedded_record("G1 s-a-0", pass_number=0)
        dataset = dataset_from_reports([report_with([record])])
        assert dataset.rows[0].resolve_pass == 1.0

    def test_loads_report_paths(self, tmp_path):
        path = str(tmp_path / "report.json")
        report_with([embedded_record("G1 s-a-0")]).save(path)
        dataset = dataset_from_reports([path])
        assert len(dataset.rows) == 1 and dataset.reports == 1

    def test_summary_mentions_rows_and_circuits(self):
        dataset = dataset_from_reports(
            [report_with([embedded_record("G1 s-a-0")])]
        )
        text = dataset.summary()
        assert "1 rows" in text and "s27" in text
