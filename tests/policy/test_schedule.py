"""PolicyPlan construction and its coverage-safety invariants."""

from repro.atpg.scoap import compute_testability
from repro.circuits import s27
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault
from repro.policy.schedule import FaultPlan, PolicyPlan, build_plan
from repro.simulation.compiled import compile_circuit

from .test_model import toy_rows, train_policy


def fixtures():
    cc = compile_circuit(s27())
    return cc, compute_testability(cc), collapse_faults(cc.circuit)


class TestBuildPlan:
    def test_plan_covers_every_fault(self):
        cc, meas, faults = fixtures()
        policy = train_policy(toy_rows())
        plan = build_plan(policy, cc, meas, faults, final_pass=3)
        assert plan is not None
        assert set(plan.plans) == {str(f) for f in faults}
        assert plan.circuit == "s27"
        assert plan.fingerprint == policy.fingerprint

    def test_foreign_circuit_gets_no_plan(self):
        cc, meas, faults = fixtures()
        rows = toy_rows()
        for row in rows.rows:
            row.circuit = "s298"
        policy = train_policy(rows)
        assert build_plan(policy, cc, meas, faults, final_pass=3) is None

    def test_start_pass_clamped_to_schedule(self):
        cc, meas, faults = fixtures()
        policy = train_policy(toy_rows())
        plan = build_plan(policy, cc, meas, faults, final_pass=2)
        assert all(
            1 <= p.start_pass <= 2 for p in plan.plans.values()
        )

    def test_deferred_faults_start_at_final_pass(self):
        cc, meas, faults = fixtures()
        policy = train_policy(toy_rows())
        plan = build_plan(policy, cc, meas, faults, final_pass=3)
        for fault_plan in plan.plans.values():
            if fault_plan.deferred:
                assert fault_plan.start_pass == 3

    def test_determinism(self):
        cc, meas, faults = fixtures()
        policy = train_policy(toy_rows())
        a = build_plan(policy, cc, meas, faults, final_pass=3)
        b = build_plan(policy, cc, meas, faults, final_pass=3)
        assert {k: vars(v) for k, v in a.plans.items()} == {
            k: vars(v) for k, v in b.plans.items()
        }


class TestPolicyPlan:
    def plan(self, plans, final_pass=3):
        return PolicyPlan("c", final_pass, plans)

    def test_final_pass_always_eligible(self):
        fault = Fault(net="n", stuck=0)
        plan = self.plan(
            {str(fault): FaultPlan(3, deferred=True, order_key=9.0)}
        )
        assert not plan.eligible(fault, 1)
        assert not plan.eligible(fault, 2)
        assert plan.eligible(fault, 3)
        # passes beyond the nominal final (defensive) stay eligible
        assert plan.eligible(fault, 4)

    def test_unplanned_fault_always_eligible(self):
        plan = self.plan({})
        assert plan.eligible(Fault(net="x", stuck=1), 1)

    def test_order_is_cheap_first_and_stable(self):
        f1, f2, f3 = (Fault(net=n, stuck=0) for n in ("a", "b", "c"))
        plan = self.plan({
            str(f1): FaultPlan(1, deferred=False, order_key=5.0),
            str(f2): FaultPlan(1, deferred=True, order_key=0.0),
            str(f3): FaultPlan(1, deferred=False, order_key=5.0),
        })
        # deferred last; equal keys keep input order (stable)
        assert plan.order([f1, f2, f3]) == [f1, f3, f2]

    def test_unplanned_faults_sort_after_planned_before_deferred(self):
        planned = Fault(net="a", stuck=0)
        deferred = Fault(net="b", stuck=0)
        stranger = Fault(net="z", stuck=1)
        plan = self.plan({
            str(planned): FaultPlan(1, deferred=False, order_key=2.0),
            str(deferred): FaultPlan(3, deferred=True, order_key=0.0),
        })
        assert plan.order([deferred, stranger, planned]) == [
            planned, stranger, deferred,
        ]

    def test_deferred_count(self):
        plan = self.plan({
            "a": FaultPlan(3, deferred=True, order_key=0.0),
            "b": FaultPlan(1, deferred=False, order_key=0.0),
        })
        assert plan.deferred_count() == 1
