"""Campaign plumbing: spec hash compatibility, warm plans, end-to-end."""

import json

import pytest

from repro.campaign import CampaignError, CampaignRunner, CampaignSpec
from repro.campaign.warm import CampaignWarmState, circuit_warm_key
from repro.policy.dataset import dataset_from_reports
from repro.policy.model import train_policy


def merged(result):
    return {
        name: (m.coverage, sorted(m.detected), m.vectors, m.blocks)
        for name, m in result.circuits.items()
    }


@pytest.fixture(scope="module")
def policy_file(tmp_path_factory):
    """Train a policy on one s27 campaign's own report."""
    tmp = tmp_path_factory.mktemp("train")
    spec = CampaignSpec(circuits=("s27",), seed=3)
    result = CampaignRunner(spec, str(tmp / "train.jsonl")).run()
    policy = train_policy(dataset_from_reports([result.report]))
    path = str(tmp / "policy.json")
    policy.save(path)
    return path


class TestSpecCompatibility:
    def test_hash_unchanged_without_policy(self):
        spec = CampaignSpec(circuits=("s27",), seed=3)
        data = spec.to_dict()
        assert "policy_file" not in data
        # a spec parsed from a pre-policy document hashes identically
        assert CampaignSpec.from_dict(
            json.loads(json.dumps(data))
        ).spec_hash() == spec.spec_hash()

    def test_policy_file_changes_hash(self, policy_file):
        base = CampaignSpec(circuits=("s27",), seed=3)
        steered = CampaignSpec(
            circuits=("s27",), seed=3, policy_file=policy_file
        )
        assert steered.spec_hash() != base.spec_hash()
        assert steered.to_dict()["policy_file"] == policy_file

    def test_policy_file_roundtrips(self, policy_file):
        spec = CampaignSpec(
            circuits=("s27",), seed=3, policy_file=policy_file
        )
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone.policy_file == policy_file
        assert clone.spec_hash() == spec.spec_hash()


class TestWarmState:
    def test_policy_campaigns_are_uncacheable(self, policy_file):
        spec = CampaignSpec(
            circuits=("s27",), seed=3, policy_file=policy_file
        )
        assert circuit_warm_key(spec, "s27") is None
        plain = CampaignSpec(circuits=("s27",), seed=3)
        assert circuit_warm_key(plain, "s27") is not None

    def test_warm_build_precomputes_plans(self, policy_file):
        spec = CampaignSpec(
            circuits=("s27",), seed=3, policy_file=policy_file
        )
        state = CampaignWarmState.build(spec)
        warm = state.get("s27")
        assert warm is not None and warm.policy_plan is not None
        assert warm.policy_plan.circuit == "s27"
        assert set(warm.policy_plan.plans) == {
            str(f) for f in warm.faults
        }

    def test_unreadable_policy_fails_the_build(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        spec = CampaignSpec(
            circuits=("s27",), seed=3, policy_file=str(bad)
        )
        with pytest.raises(CampaignError):
            CampaignWarmState.build(spec)

    def test_plainspec_build_has_no_plans(self):
        spec = CampaignSpec(circuits=("s27",), seed=3)
        state = CampaignWarmState.build(spec)
        assert state.get("s27").policy_plan is None


class TestEndToEnd:
    def test_policy_campaign_matches_static_coverage(
        self, tmp_path, policy_file
    ):
        static = CampaignRunner(
            CampaignSpec(circuits=("s27",), seed=3),
            str(tmp_path / "static.jsonl"),
        ).run()
        steered = CampaignRunner(
            CampaignSpec(
                circuits=("s27",), seed=3, policy_file=policy_file
            ),
            str(tmp_path / "steered.jsonl"),
        ).run()
        assert merged(steered) == merged(static)

    def test_policy_campaign_resumes_identically(
        self, tmp_path, policy_file
    ):
        spec = CampaignSpec(
            circuits=("s27",), seed=3, policy_file=policy_file
        )
        journal = str(tmp_path / "steered.jsonl")
        first = CampaignRunner(spec, journal).run()
        again = CampaignRunner.resume(journal)
        assert merged(again) == merged(first)

    def test_policy_telemetry_in_report(self, tmp_path, policy_file):
        spec = CampaignSpec(
            circuits=("s27",), seed=3, policy_file=policy_file
        )
        result = CampaignRunner(spec, str(tmp_path / "c.jsonl")).run()
        counters = result.report.metrics.get("counters", {})
        policy_keys = [
            k for k in counters if k.startswith("atpg.policy.")
        ]
        assert policy_keys

    def test_missing_policy_file_fails_loudly(self, tmp_path):
        spec = CampaignSpec(
            circuits=("s27",),
            seed=3,
            policy_file=str(tmp_path / "gone.json"),
        )
        runner = CampaignRunner(spec, str(tmp_path / "c.jsonl"))
        with pytest.raises(CampaignError):
            runner.run()
