"""Boosted-tree models and the repro-policy/v1 artifact."""

import json

import pytest

from repro.policy.dataset import Dataset, DatasetRow
from repro.policy.features import FEATURE_NAMES
from repro.policy.model import (
    BoostedTrees,
    DEFAULT_OPTIONS,
    FaultPolicy,
    PolicyError,
    family_fingerprint,
    train_policy,
    validate_policy,
)


def toy_rows(n=24):
    """A learnable synthetic dataset: labels are functions of features."""
    rows = []
    for i in range(n):
        features = {name: 0.0 for name in FEATURE_NAMES}
        features["cc0"] = float(i % 6)
        features["co"] = float(i % 4)
        detected = 1.0 if i % 6 < 4 else 0.0
        rows.append(
            DatasetRow(
                circuit="s27",
                fault=f"G{i} s-a-0",
                features=features,
                status="detected" if detected else "aborted",
                detected=detected,
                resolve_pass=1.0 + (i % 3),
                cost=float(i % 4) * 2.0,
            )
        )
    return Dataset(rows=rows, reports=1)


class TestBoostedTrees:
    def test_fits_a_simple_function(self):
        xs = [[float(i)] for i in range(16)]
        ys = [1.0 if i >= 8 else 0.0 for i in range(16)]
        model = BoostedTrees.fit(xs, ys, rounds=20, max_depth=2)
        assert model.mean_abs_error(xs, ys) < 0.01
        assert model.predict([0.0]) < 0.2 < 0.8 < model.predict([15.0])

    def test_training_is_deterministic(self):
        xs = [[float(i % 5), float(i % 3)] for i in range(30)]
        ys = [float(i % 7) for i in range(30)]
        a = BoostedTrees.fit(xs, ys).to_dict()
        b = BoostedTrees.fit(xs, ys).to_dict()
        assert a == b

    def test_roundtrip(self):
        xs = [[float(i)] for i in range(10)]
        ys = [float(i * i) for i in range(10)]
        model = BoostedTrees.fit(xs, ys, rounds=10)
        clone = BoostedTrees.from_dict(model.to_dict())
        assert all(
            clone.predict(x) == model.predict(x) for x in xs
        )

    def test_zero_rows_rejected(self):
        with pytest.raises(PolicyError):
            BoostedTrees.fit([], [])

    def test_mismatched_rows_rejected(self):
        with pytest.raises(PolicyError):
            BoostedTrees.fit([[1.0]], [1.0, 2.0])

    def test_early_stop_on_perfect_fit(self):
        xs = [[0.0], [1.0]]
        ys = [0.0, 1.0]
        model = BoostedTrees.fit(xs, ys, rounds=100)
        assert len(model.trees) < 100


class TestTrainPolicy:
    def test_trains_three_models(self):
        policy = train_policy(toy_rows())
        assert policy.circuits == ("s27",)
        assert policy.trained_rows == 24
        assert policy.feature_names == FEATURE_NAMES
        detect, resolve, cost = policy.predict(
            [0.0] * len(FEATURE_NAMES)
        )
        assert all(
            isinstance(v, float) for v in (detect, resolve, cost)
        )

    def test_empty_dataset_rejected(self):
        with pytest.raises(PolicyError):
            train_policy(Dataset())

    def test_default_options_applied(self):
        policy = train_policy(toy_rows())
        assert policy.options == DEFAULT_OPTIONS

    def test_shrink_ga_learns_cheap_quantile(self):
        policy = train_policy(toy_rows(), options={"shrink_ga": True})
        assert policy.options["shrink_ga"] is True
        costs = sorted(r.cost for r in toy_rows().rows)
        assert policy.options["cheap_cost"] == costs[len(costs) // 4]

    def test_training_is_deterministic(self):
        a = train_policy(toy_rows()).to_dict()
        b = train_policy(toy_rows()).to_dict()
        assert a == b


class TestArtifact:
    def test_save_load_roundtrip(self, tmp_path):
        policy = train_policy(toy_rows())
        path = str(tmp_path / "policy.json")
        policy.save(path)
        clone = FaultPolicy.load(path)
        assert clone.to_dict() == policy.to_dict()
        x = [1.0] * len(FEATURE_NAMES)
        assert clone.predict(x) == policy.predict(x)

    def test_serialization_is_byte_stable(self, tmp_path):
        policy = train_policy(toy_rows())
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        policy.save(a)
        train_policy(toy_rows()).save(b)
        assert open(a).read() == open(b).read()

    def test_fingerprint_is_family_hash(self):
        policy = train_policy(toy_rows())
        assert policy.fingerprint == family_fingerprint(["s27"])
        assert family_fingerprint(["b", "a"]) == family_fingerprint(
            ["a", "b", "a"]
        )

    def test_covers(self):
        policy = train_policy(toy_rows())
        assert policy.covers("s27")
        assert not policy.covers("s298")

    def test_missing_file_is_policy_error(self, tmp_path):
        with pytest.raises(PolicyError):
            FaultPolicy.load(str(tmp_path / "nope.json"))

    def test_malformed_json_is_policy_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PolicyError):
            FaultPolicy.load(str(path))

    def test_wrong_schema_rejected(self, tmp_path):
        policy = train_policy(toy_rows())
        doc = policy.to_dict()
        doc["schema"] = "repro-policy/v0"
        with pytest.raises(PolicyError):
            FaultPolicy.from_dict(doc)

    def test_tampered_fingerprint_rejected(self):
        doc = train_policy(toy_rows()).to_dict()
        doc["fingerprint"] = "0" * 16
        with pytest.raises(PolicyError):
            FaultPolicy.from_dict(doc)

    def test_validate_reports_tree_problems(self):
        doc = train_policy(toy_rows()).to_dict()
        doc["models"]["detect"]["trees"] = [{"feature": 0}]
        assert validate_policy(doc)

    def test_artifact_is_json(self, tmp_path):
        path = str(tmp_path / "policy.json")
        train_policy(toy_rows()).save(path)
        data = json.load(open(path))
        assert data["schema"] == "repro-policy/v1"
        assert set(data["models"]) == {"detect", "pass", "cost"}
