"""Driver integration: plans steer the schedule without losing coverage."""

from repro.circuits import s27
from repro.hybrid.driver import gahitec
from repro.hybrid.passes import gahitec_schedule
from repro.policy.dataset import dataset_from_reports
from repro.policy.model import train_policy
from repro.policy.schedule import FaultPlan, PolicyPlan
from repro.telemetry import TelemetryRecorder


def run_static(seed=3, telemetry=None):
    driver = gahitec(s27(), seed=seed, telemetry=telemetry)
    schedule = gahitec_schedule(x=8, num_passes=3, time_scale=None)
    return driver, driver.run(schedule)


def trained_policy():
    _, result = run_static()
    return train_policy(dataset_from_reports([result.report]))


class TestRecordedFeatures:
    def test_every_disposition_carries_features(self):
        _, result = run_static()
        assert result.report.faults
        for record in result.report.faults:
            assert record.features is not None
            assert record.features["cc0"] >= 1.0

    def test_knowledge_hits_recorded(self):
        _, result = run_static()
        total = sum(r.knowledge_hits for r in result.report.faults)
        stats = result.knowledge_stats
        assert total == (
            stats.get("justified_hits", 0)
            + stats.get("unjustifiable_hits", 0)
            + stats.get("podem_pruned", 0)
        )

    def test_report_roundtrips_with_features(self):
        _, result = run_static()
        from repro.telemetry import RunReport

        clone = RunReport.from_dict(result.report.to_dict())
        assert clone.faults[0].features == result.report.faults[0].features


class TestPolicyDriver:
    def test_policy_keeps_coverage(self):
        policy = trained_policy()
        _, static = run_static(seed=3)
        driver = gahitec(s27(), seed=3, policy=policy)
        schedule = gahitec_schedule(x=8, num_passes=3, time_scale=None)
        steered = driver.run(schedule)
        assert set(steered.detected) == set(static.detected)
        assert sorted(str(f) for f in steered.untestable) == sorted(
            str(f) for f in static.untestable
        )

    def test_foreign_policy_is_inert(self):
        policy = trained_policy()
        policy.circuits = ("s298",)  # simulate a family mismatch
        telemetry = TelemetryRecorder()
        driver = gahitec(s27(), seed=3, policy=policy,
                         telemetry=telemetry)
        schedule = gahitec_schedule(x=8, num_passes=3, time_scale=None)
        result = driver.run(schedule)
        _, static = run_static(seed=3)
        assert set(result.detected) == set(static.detected)
        assert telemetry.value("atpg.policy.pass_skips") == 0
        assert telemetry.value("atpg.policy.deferred") == 0

    def test_telemetry_counters_emitted(self):
        policy = trained_policy()
        telemetry = TelemetryRecorder()
        driver = gahitec(s27(), seed=3, policy=policy,
                         telemetry=telemetry)
        schedule = gahitec_schedule(x=8, num_passes=3, time_scale=None)
        driver.run(schedule)
        # deferred counter always fires (possibly 0); reorder fires when
        # the cheap-first order differs from canonical
        assert "atpg.policy.deferred" in telemetry.registry.counters

    def test_precomputed_plan_accepted(self):
        policy = trained_policy()
        from repro.policy.schedule import build_plan

        driver = gahitec(s27(), seed=3)
        plan = build_plan(
            policy, driver.cc, driver.meas, driver.all_faults,
            final_pass=3,
        )
        steered = gahitec(s27(), seed=3, policy=plan)
        schedule = gahitec_schedule(x=8, num_passes=3, time_scale=None)
        result = steered.run(schedule)
        _, static = run_static(seed=3)
        assert set(result.detected) == set(static.detected)

    def test_mismatched_plan_circuit_ignored(self):
        plan = PolicyPlan("s298", 3, {})
        driver = gahitec(s27(), seed=3, policy=plan)
        schedule = gahitec_schedule(x=8, num_passes=3, time_scale=None)
        result = driver.run(schedule)
        _, static = run_static(seed=3)
        assert set(result.detected) == set(static.detected)


class TestMopUpSafety:
    def test_defer_everything_still_reaches_static_coverage(self):
        """Adversarial plan: every fault deferred to the mop-up pass."""
        driver = gahitec(s27(), seed=3)
        plans = {
            str(f): FaultPlan(
                start_pass=3, deferred=True, order_key=0.0
            )
            for f in driver.all_faults
        }
        plan = PolicyPlan("s27", 3, plans)
        telemetry = TelemetryRecorder()
        steered = gahitec(s27(), seed=3, policy=plan,
                          telemetry=telemetry)
        schedule = gahitec_schedule(x=8, num_passes=3, time_scale=None)
        result = steered.run(schedule)
        # the final deterministic pass alone must still find every
        # deterministic detection; GA-only detections may be lost, so
        # the invariant checked here is "mop-up ran for every fault"
        assert telemetry.value("atpg.policy.pass_skips") > 0
        assert telemetry.value("atpg.policy.deferred") == len(plans)
        targeted = {
            r.fault for r in result.report.faults if r.targeted > 0
        }
        resolved = {
            r.fault
            for r in result.report.faults
            if r.status in ("detected", "untestable")
            and r.pass_number == 0
        }
        # every fault either got targeted in the mop-up or was resolved
        # incidentally before it
        for record in result.report.faults:
            assert record.fault in targeted or record.status in (
                "detected", "untestable", "prefiltered",
            ), record
        assert resolved | targeted  # non-empty run
