"""Differential and behavioural tests for the event-driven logic simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import s27
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import X, pack_const, unpack
from repro.simulation.logic_sim import FrameSimulator, Injection, simulate_sequence

from ..conftest import random_circuits
from ..helpers import reference_sequence


def scalar_step(sim: FrameSimulator, circuit: Circuit, vector: dict) -> dict:
    packed = {name: pack_const(v, 1) for name, v in vector.items()}
    po = sim.step(packed)
    return {net: unpack(v, 1)[0] for net, v in zip(circuit.outputs, po)}


class TestAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_random_circuits_match_reference(self, data):
        circuit = data.draw(random_circuits())
        length = data.draw(st.integers(1, 6))
        vectors = [
            {pi: data.draw(st.sampled_from([0, 1, X])) for pi in circuit.inputs}
            for _ in range(length)
        ]
        sim = FrameSimulator(circuit, width=1)
        got = [scalar_step(sim, circuit, vec) for vec in vectors]
        expected = reference_sequence(circuit, vectors)
        assert got == expected

    def test_s27_sequence_matches_reference(self, s27_circuit):
        vectors = [
            {"G0": (i >> 0) & 1, "G1": (i >> 1) & 1, "G2": (i >> 2) & 1,
             "G3": (i >> 3) & 1}
            for i in range(16)
        ]
        sim = FrameSimulator(s27_circuit, width=1)
        got = [scalar_step(sim, s27_circuit, v) for v in vectors]
        assert got == reference_sequence(s27_circuit, vectors)


class TestStateHandling:
    def test_initial_state_is_all_x(self, s27_circuit):
        sim = FrameSimulator(s27_circuit, width=1)
        assert all(unpack(v, 1) == [X] for v in sim.get_state())

    def test_set_state_by_name(self, s27_circuit):
        sim = FrameSimulator(s27_circuit, width=1)
        sim.set_state({"G5": pack_const(1, 1), "G6": pack_const(0, 1)})
        state = dict(zip(s27_circuit.flops, sim.get_state()))
        assert unpack(state["G5"], 1) == [1]
        assert unpack(state["G6"], 1) == [0]
        assert unpack(state["G7"], 1) == [X]

    def test_reset_returns_to_x(self, s27_circuit):
        sim = FrameSimulator(s27_circuit, width=1)
        scalar_step(sim, s27_circuit, {"G0": 1, "G1": 0, "G2": 1, "G3": 0})
        sim.reset()
        assert all(unpack(v, 1) == [X] for v in sim.get_state())

    def test_clock_latches_next_state(self):
        c = Circuit("latch")
        c.add_input("a")
        c.add_gate("q", GateType.DFF, ["a"])
        c.add_gate("y", GateType.BUF, ["q"])
        c.add_output("y")
        sim = FrameSimulator(c, width=1)
        first = scalar_step(sim, c, {"a": 1})
        second = scalar_step(sim, c, {"a": 0})
        assert first["y"] == X   # state unknown during the first frame
        assert second["y"] == 1  # previous frame's input appears now


class TestBitParallelism:
    def test_slots_are_independent(self, s27_circuit):
        import random

        rng = random.Random(3)
        width = 16
        vectors = []
        for _ in range(5):
            vectors.append(
                {pi: [rng.getrandbits(1) for _ in range(width)]
                 for pi in s27_circuit.inputs}
            )
        wide = FrameSimulator(s27_circuit, width=width)
        wide_out = []
        for vec in vectors:
            packed = {}
            for pi, bits in vec.items():
                p1 = sum(b << i for i, b in enumerate(bits))
                packed[pi] = (p1, (~p1) & ((1 << width) - 1))
            wide_out.append(wide.step(packed))
        for slot in range(width):
            narrow = FrameSimulator(s27_circuit, width=1)
            for frame, vec in enumerate(vectors):
                po = narrow.step(
                    {pi: pack_const(bits[slot], 1) for pi, bits in vec.items()}
                )
                for (w1, w0), (n1, n0) in zip(wide_out[frame], po):
                    assert ((w1 >> slot) & 1, (w0 >> slot) & 1) == (n1, n0)


class TestInjection:
    def _mutant(self, stuck: int) -> Circuit:
        """s27 with G8 literally tied to ``stuck`` (the injected equivalent)."""
        c = s27()
        gates = dict(c.gates)
        tie = GateType.CONST1 if stuck else GateType.CONST0
        from repro.circuit.netlist import Gate

        gates["G8"] = Gate("G8", tie, ())
        c.gates = gates
        c._invalidate()
        return c

    @pytest.mark.parametrize("stuck", [0, 1])
    def test_stem_injection_equals_mutant_circuit(self, stuck):
        import random

        rng = random.Random(11)
        vectors = [
            {pi: rng.getrandbits(1) for pi in s27().inputs} for _ in range(40)
        ]
        clean = s27()
        inj = Injection(net=compile_circuit(clean).index["G8"], stuck=stuck, mask=1)
        sim = FrameSimulator(clean, width=1, injections=[inj])
        got = [scalar_step(sim, clean, v) for v in vectors]
        mutant = self._mutant(stuck)
        expected = reference_sequence(mutant, vectors)
        assert got == expected

    def test_pin_injection_affects_only_that_gate(self):
        # y1 reads the faulted view of a, y2 the clean one
        c = Circuit("branch")
        c.add_input("a")
        c.add_gate("y1", GateType.BUF, ["a"])
        c.add_gate("y2", GateType.BUF, ["a"])
        c.add_output("y1")
        c.add_output("y2")
        cc = compile_circuit(c)
        inj = Injection(
            net=cc.index["a"], stuck=1, mask=1,
            gate_pos=cc.gate_of[cc.index["y1"]], pin=0,
        )
        sim = FrameSimulator(c, width=1, injections=[inj])
        out = scalar_step(sim, c, {"a": 0})
        assert out == {"y1": 1, "y2": 0}

    def test_ff_pin_injection_applies_at_clock(self):
        c = Circuit("ffpin")
        c.add_input("a")
        c.add_gate("q", GateType.DFF, ["a"])
        c.add_gate("other", GateType.BUF, ["a"])
        c.add_gate("y", GateType.BUF, ["q"])
        c.add_output("y")
        c.add_output("other")
        sim_clean = FrameSimulator(c, width=1)
        inj = Injection(net=compile_circuit(c).index["a"], stuck=0, mask=1, ff_pos=0)
        sim = FrameSimulator(c, width=1, injections=[inj])
        scalar_step(sim, c, {"a": 1})
        out = scalar_step(sim, c, {"a": 1})
        assert out["y"] == 0      # the latched value was forced to 0
        assert out["other"] == 1  # the combinational reader is unaffected


class TestConvenience:
    def test_simulate_sequence(self, s27_circuit):
        vectors = [
            {pi: pack_const(1, 1) for pi in s27_circuit.inputs} for _ in range(3)
        ]
        outputs = simulate_sequence(s27_circuit, vectors, width=1)
        assert len(outputs) == 3
        assert all(len(frame) == 1 for frame in outputs)
