"""Tests for the two-word 3-valued encoding, including hypothesis properties."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.circuit.gates import GateType, eval_gate
from repro.simulation.encoding import (
    X,
    diff_mask,
    eval3,
    eval_packed,
    full_mask,
    get_slot,
    known_mask,
    match_mask,
    pack,
    pack_const,
    popcount,
    set_slot,
    unpack,
)

SCALARS = [0, 1, X]
NARY = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]


class TestPacking:
    @given(st.lists(st.sampled_from(SCALARS), min_size=1, max_size=70))
    def test_pack_unpack_roundtrip(self, values):
        assert unpack(pack(values), len(values)) == values

    @given(st.sampled_from(SCALARS), st.integers(1, 70))
    def test_pack_const_broadcasts(self, value, width):
        assert unpack(pack_const(value, width), width) == [value] * width

    def test_pack_pads_with_x(self):
        packed = pack([0, 1], width=4)
        assert unpack(packed, 4) == [0, 1, X, X]

    def test_pack_rejects_bad_scalar(self):
        with pytest.raises(ValueError):
            pack([3])

    def test_unpack_rejects_invalid_slot(self):
        with pytest.raises(ValueError):
            unpack((0, 0), 1)

    @given(st.lists(st.sampled_from(SCALARS), min_size=1, max_size=16),
           st.integers(0, 15), st.sampled_from(SCALARS))
    def test_set_get_slot(self, values, slot, scalar):
        slot = slot % len(values)
        packed = set_slot(pack(values), slot, scalar)
        assert get_slot(packed, slot) == scalar
        for i, v in enumerate(values):
            if i != slot:
                assert get_slot(packed, i) == v

    def test_full_mask(self):
        assert full_mask(1) == 1
        assert full_mask(8) == 0xFF
        with pytest.raises(ValueError):
            full_mask(0)


class TestEval3:
    @pytest.mark.parametrize("gtype", NARY)
    def test_matches_two_valued_eval(self, gtype):
        for bits in itertools.product([0, 1], repeat=3):
            assert eval3(gtype, list(bits)) == eval_gate(gtype, list(bits))

    def test_controlling_value_beats_x(self):
        assert eval3(GateType.AND, [0, X]) == 0
        assert eval3(GateType.NAND, [0, X]) == 1
        assert eval3(GateType.OR, [1, X]) == 1
        assert eval3(GateType.NOR, [1, X]) == 0

    def test_x_propagates_without_controlling(self):
        assert eval3(GateType.AND, [1, X]) == X
        assert eval3(GateType.OR, [0, X]) == X
        assert eval3(GateType.XOR, [1, X]) == X
        assert eval3(GateType.NOT, [X]) == X

    @pytest.mark.parametrize("gtype", NARY)
    def test_x_result_is_achievable_both_ways(self, gtype):
        """When eval3 says X, both 0 and 1 completions must be possible."""
        for ins in itertools.product(SCALARS, repeat=2):
            if eval3(gtype, list(ins)) != X:
                continue
            completions = {
                eval_gate(gtype, [a if a != X else ra, b if b != X else rb])
                for (a, b) in [ins]
                for ra in (0, 1)
                for rb in (0, 1)
            }
            assert completions == {0, 1}


class TestEvalPacked:
    @pytest.mark.parametrize("gtype", NARY)
    @given(data=st.data())
    def test_packed_matches_scalar_per_slot(self, gtype, data):
        width = data.draw(st.integers(1, 33))
        n_ins = data.draw(st.integers(1, 4))
        columns = [
            data.draw(
                st.lists(st.sampled_from(SCALARS), min_size=width, max_size=width)
            )
            for _ in range(n_ins)
        ]
        packed_out = eval_packed(
            gtype, [pack(col) for col in columns], full_mask(width)
        )
        expected = [
            eval3(gtype, [columns[i][slot] for i in range(n_ins)])
            for slot in range(width)
        ]
        assert unpack(packed_out, width) == expected

    def test_not_swaps_words(self):
        packed = pack([0, 1, X])
        assert unpack(eval_packed(GateType.NOT, [packed], full_mask(3)), 3) == [
            1,
            0,
            X,
        ]

    def test_constants(self):
        m = full_mask(4)
        assert unpack(eval_packed(GateType.CONST0, [], m), 4) == [0] * 4
        assert unpack(eval_packed(GateType.CONST1, [], m), 4) == [1] * 4


class TestMasks:
    def test_known_mask(self):
        assert known_mask(pack([0, 1, X])) == 0b011

    def test_diff_mask_only_on_known_opposites(self):
        a = pack([0, 1, X, 1])
        b = pack([1, 1, 0, X])
        assert diff_mask(a, b) == 0b0001

    def test_match_mask_semantics(self):
        required = pack([1, 0, X, 1])
        actual = pack([1, 1, 0, X])
        # slot0 equal, slot1 mismatch, slot2 don't-care, slot3 X actual
        assert match_mask(required, actual, full_mask(4)) == 0b0101

    @given(st.integers(0, 2**64 - 1))
    def test_popcount(self, x):
        assert popcount(x) == bin(x).count("1")
