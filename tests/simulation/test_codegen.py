"""Differential tests: the ``codegen`` backend against the event oracle.

The event-driven :class:`FrameSimulator` is the reference; every test here
asserts the generated-kernel backend matches it bit-for-bit — outputs,
next state, detection sets and surviving fault states — across all ten
gate codes, all three injection kinds (stem, gate input pin, flip-flop
D pin) and X-valued inputs.
"""

import gc
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import s27
from repro.faults.model import Fault, full_fault_list
from repro.simulation.codegen import (
    CodegenFrameSimulator,
    generate_kernel_source,
    injection_signature,
    kernel_for,
)
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import X, pack_const, unpack
from repro.simulation.fault_sim import FaultSimulator, injection_for
from repro.simulation.logic_sim import (
    BACKEND_ENV,
    FrameSimulator,
    available_backends,
    make_simulator,
    resolve_backend,
)

_ALL_COMB = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUF,
    GateType.CONST0,
    GateType.CONST1,
]


@st.composite
def full_gateset_circuits(draw, max_pi=4, max_ff=3, max_gates=12):
    """Random sequential circuits over all ten gate codes (consts included)."""
    n_pi = draw(st.integers(1, max_pi))
    n_ff = draw(st.integers(0, max_ff))
    n_gates = draw(st.integers(1, max_gates))
    c = Circuit("codegen_hyp")
    pool = [c.add_input(f"pi{i}") for i in range(n_pi)]
    ffs = [f"ff{i}" for i in range(n_ff)]
    pool += ffs  # forward references resolved when the DFFs are added
    gate_outs = []
    for i in range(n_gates):
        gtype = draw(st.sampled_from(_ALL_COMB))
        if gtype in (GateType.CONST0, GateType.CONST1):
            fanin = 0
        elif gtype in (GateType.NOT, GateType.BUF):
            fanin = 1
        else:
            fanin = draw(st.integers(2, 3))
        candidates = pool[: n_pi + n_ff + len(gate_outs)]
        ins = [
            candidates[draw(st.integers(0, len(candidates) - 1))]
            for _ in range(fanin)
        ]
        net = f"g{i}"
        c.add_gate(net, gtype, ins)
        pool.append(net)
        gate_outs.append(net)
    for ff in ffs:
        src = pool[draw(st.integers(0, len(pool) - 1))]
        if src == ff:
            src = pool[0]
        c.add_gate(ff, GateType.DFF, [src])
    n_po = draw(st.integers(1, min(3, len(gate_outs))))
    chosen = draw(
        st.lists(st.sampled_from(gate_outs), min_size=n_po, max_size=n_po,
                 unique=True)
    )
    for net in chosen:
        c.add_output(net)
    return c


def _step_both(circuit, vectors, injections=(), width=1):
    """Run both backends frame by frame, asserting equality throughout."""
    cc = compile_circuit(circuit)
    ev = make_simulator(cc, width=width, injections=injections,
                        backend="event")
    cg = make_simulator(cc, width=width, injections=injections,
                        backend="codegen")
    assert isinstance(cg, CodegenFrameSimulator)
    for vec in vectors:
        packed = [pack_const(v, width) for v in vec]
        assert ev.step(packed) == cg.step(packed)
        assert ev.get_state() == cg.get_state()
        assert ev.read_next_state() == cg.read_next_state()
    return ev, cg


class TestLogicEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_random_circuits_x_inputs(self, data):
        circuit = data.draw(full_gateset_circuits())
        length = data.draw(st.integers(1, 6))
        vectors = [
            [data.draw(st.integers(0, 2)) for _ in circuit.inputs]
            for _ in range(length)
        ]
        _step_both(circuit, vectors)

    def test_every_gate_type_alone(self):
        for gtype in _ALL_COMB:
            c = Circuit(f"one_{gtype.name}")
            a = c.add_input("a")
            b = c.add_input("b")
            if gtype in (GateType.CONST0, GateType.CONST1):
                ins = []
            elif gtype in (GateType.NOT, GateType.BUF):
                ins = [a]
            else:
                ins = [a, b]
            c.add_gate("y", gtype, ins)
            c.add_output("y")
            vectors = [[va, vb] for va in (0, 1, X) for vb in (0, 1, X)]
            _step_both(c, vectors)

    def test_internal_net_read_falls_back_to_full_sweep(self):
        circuit = s27()
        cc = compile_circuit(circuit)
        ev = make_simulator(cc, width=1, backend="event")
        cg = make_simulator(cc, width=1, backend="codegen")
        rng = random.Random(3)
        for _ in range(10):
            vec = [pack_const(rng.getrandbits(1), 1) for _ in circuit.inputs]
            ev.step(vec)
            cg.step(vec)
            for net in circuit.nets:
                assert ev.read(net) == cg.read(net), net

    def test_wide_words(self):
        circuit = s27()
        rng = random.Random(11)
        vectors = [
            [rng.choice([0, 1, X]) for _ in circuit.inputs] for _ in range(12)
        ]
        _step_both(circuit, vectors, width=96)


class TestFaultEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_fault_sim_matches_event(self, data):
        circuit = data.draw(full_gateset_circuits())
        faults = full_fault_list(circuit)
        if len(faults) > 24:
            start = data.draw(st.integers(0, len(faults) - 24))
            faults = faults[start : start + 24]
        length = data.draw(st.integers(1, 6))
        vectors = [
            [data.draw(st.integers(0, 2)) for _ in circuit.inputs]
            for _ in range(length)
        ]
        states_ev, states_cg = {}, {}
        r_ev = FaultSimulator(circuit, width=8, backend="event").run(
            vectors, faults, fault_states=states_ev,
            stop_on_all_detected=False)
        r_cg = FaultSimulator(circuit, width=8, backend="codegen").run(
            vectors, faults, fault_states=states_cg,
            stop_on_all_detected=False)
        assert r_ev.detected == r_cg.detected  # same faults, same frames
        assert r_ev.fault_states == r_cg.fault_states
        assert r_ev.good_outputs == r_cg.good_outputs
        assert r_ev.good_state == r_cg.good_state
        assert states_ev == states_cg

    def test_all_injection_kinds_explicit(self):
        # fanout net feeds a gate pin AND a flip-flop D pin, so the fault
        # list carries stem, gate-pin and FF-pin faults for net "s"
        c = Circuit("kinds")
        a = c.add_input("a")
        b = c.add_input("b")
        c.add_gate("s", GateType.AND, [a, b])
        c.add_gate("y", GateType.NOR, ["s", b])
        c.add_gate("q", GateType.DFF, ["s"])
        c.add_gate("z", GateType.XOR, ["q", a])
        c.add_output("y")
        c.add_output("z")
        faults = full_fault_list(c)
        kinds = {(f.is_branch, f.gate == "q") for f in faults}
        assert (False, False) in kinds  # stems
        assert (True, False) in kinds  # gate-pin branches
        assert (True, True) in kinds  # FF D-pin branches
        rng = random.Random(2)
        vectors = [
            [rng.choice([0, 1, X]) for _ in c.inputs] for _ in range(16)
        ]
        r_ev = FaultSimulator(c, width=16, backend="event").run(
            vectors, faults, stop_on_all_detected=False)
        r_cg = FaultSimulator(c, width=16, backend="codegen").run(
            vectors, faults, stop_on_all_detected=False)
        assert r_ev.detected == r_cg.detected
        assert r_ev.fault_states == r_cg.fault_states

    def test_stem_fault_on_flip_flop_output(self):
        c = Circuit("ffstem")
        a = c.add_input("a")
        c.add_gate("q", GateType.DFF, [a])
        c.add_gate("y", GateType.BUF, ["q"])
        c.add_output("y")
        cc = compile_circuit(c)
        inj = [injection_for(cc, Fault("q", 0), 1)]
        ev, cg = _step_both(c, [[1], [1], [0]], injections=inj)
        assert ev.get_state() == cg.get_state()

    def test_signatures_match(self):
        circuit = s27()
        faults = full_fault_list(circuit)
        rng = random.Random(4)
        vectors = [
            [rng.getrandbits(1) for _ in circuit.inputs] for _ in range(20)
        ]
        r_ev = FaultSimulator(circuit, width=32, backend="event").run(
            vectors, faults, record_signatures=True)
        r_cg = FaultSimulator(circuit, width=32, backend="codegen").run(
            vectors, faults, record_signatures=True)
        assert r_ev.signatures == r_cg.signatures


class TestKernelCache:
    def test_same_shape_shares_kernel(self):
        circuit = s27()
        cc = compile_circuit(circuit)
        f0, f1 = Fault("G10", 0), Fault("G10", 0)
        a = CodegenFrameSimulator(cc, width=4,
                                  injections=[injection_for(cc, f0, 0b0001)])
        b = CodegenFrameSimulator(cc, width=4,
                                  injections=[injection_for(cc, f1, 0b0100)])
        assert a._kernel is b._kernel  # masks differ, shape shared
        assert a._kernel_masks != b._kernel_masks

    def test_signature_ignores_masks(self):
        circuit = s27()
        cc = compile_circuit(circuit)
        i1 = injection_for(cc, Fault("G10", 1), 0b01)
        i2 = injection_for(cc, Fault("G10", 1), 0b10)
        assert injection_signature([i1]) == injection_signature([i2])

    def test_ff_pin_injection_not_in_signature(self):
        c = Circuit("ffpin")
        a = c.add_input("a")
        b = c.add_input("b")
        c.add_gate("s", GateType.OR, [a, b])
        c.add_gate("q", GateType.DFF, ["s"])
        c.add_gate("y", GateType.AND, ["q", "s"])
        c.add_output("y")
        cc = compile_circuit(c)
        ff_fault = Fault("s", 1, gate="q", pin=0)
        inj = injection_for(cc, ff_fault, 1)
        assert inj.ff_pos is not None
        assert injection_signature([inj]) == ()

    def test_generated_source_is_plain_statements(self):
        cc = compile_circuit(s27())
        src = generate_kernel_source(cc, [])
        assert src.startswith("def _kernel(v1, v0, mask):")
        assert "for " not in src and "if " not in src  # straight-line
        assert f"v1[{cc.po[0]}]" in src

    def test_cache_lives_on_compiled_circuit(self):
        circuit = s27()
        cc = compile_circuit(circuit)
        kernel_for(cc, [])
        assert hasattr(cc, "_codegen_kernels")


class TestBackendRegistry:
    def test_available(self):
        names = available_backends()
        assert "event" in names and "codegen" in names

    def test_resolve_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None) == "event"

    def test_resolve_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "codegen")
        assert resolve_backend(None) == "codegen"
        sim = make_simulator(s27(), width=2)
        assert isinstance(sim, CodegenFrameSimulator)

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "codegen")
        sim = make_simulator(s27(), width=2, backend="event")
        assert type(sim) is FrameSimulator

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            resolve_backend("vhdl")


class TestShardedRun:
    def _run(self, jobs, backend="codegen", width=4, **kwargs):
        circuit = s27()
        faults = full_fault_list(circuit)
        rng = random.Random(7)
        vectors = [
            [rng.getrandbits(1) for _ in circuit.inputs] for _ in range(15)
        ]
        states = {}
        sim = FaultSimulator(circuit, width=width, backend=backend, jobs=jobs)
        result = sim.run(vectors, faults, fault_states=states, **kwargs)
        return result, states

    @pytest.mark.parametrize("backend", ["event", "codegen"])
    def test_sharded_matches_sequential(self, backend):
        r1, s1 = self._run(jobs=1, backend=backend)
        r4, s4 = self._run(jobs=4, backend=backend)
        assert r1.detected == r4.detected
        assert list(r1.detected) == list(r4.detected)  # merge order too
        assert r1.fault_states == r4.fault_states
        assert s1 == s4
        assert r1.good_outputs == r4.good_outputs
        assert r1.good_state == r4.good_state

    def test_sharded_signatures_match(self):
        r1, _ = self._run(jobs=1, record_signatures=True)
        r3, _ = self._run(jobs=3, record_signatures=True)
        assert r1.signatures == r3.signatures

    def test_fallback_without_fork(self, monkeypatch):
        from repro.simulation import fault_sim as fs

        monkeypatch.setattr(fs, "_fork_available", lambda: False)
        r1, s1 = self._run(jobs=1)
        r4, s4 = self._run(jobs=4)  # silently degrades to in-process
        assert r1.detected == r4.detected
        assert s1 == s4

    def test_jobs_one_never_forks(self, monkeypatch):
        from repro.simulation import fault_sim as fs

        def boom(*_a, **_k):
            raise AssertionError("sharded path used with jobs=1")

        monkeypatch.setattr(fs.FaultSimulator, "_run_sharded", boom)
        result, _ = self._run(jobs=1)
        assert result.detected

    def test_per_call_jobs_override(self):
        circuit = s27()
        faults = full_fault_list(circuit)
        vectors = [[1, 0, 1, 1], [0, 1, 1, 0], [1, 1, 0, 1]]
        sim = FaultSimulator(circuit, width=4, jobs=1)
        r_seq = sim.run(vectors, faults)
        r_par = sim.run(vectors, faults, jobs=2)
        assert r_seq.detected == r_par.detected

    def test_split_chunks(self):
        from repro.simulation.fault_sim import _split_chunks

        assert _split_chunks([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]
        assert _split_chunks([1, 2], 8) == [[1], [2]]
        assert _split_chunks([1], 1) == [[1]]


class TestCliPlumbing:
    def test_atpg_backend_and_jobs_flags(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "vec.txt"
        rc = main([
            "atpg", "s27", "--passes", "1", "--seq-len", "4",
            "--time-scale", "0.01", "--backend", "codegen", "--jobs", "2",
            "-o", str(out),
        ])
        assert rc == 0
        assert out.exists()
        assert "coverage" in capsys.readouterr().out

    def test_faultsim_backend_flag(self, tmp_path, capsys):
        from repro.cli import main

        vec = tmp_path / "vec.txt"
        vec.write_text("1011\n0110\nx1x0\n")
        rc = main(["faultsim", "s27", str(vec), "--backend", "codegen"])
        assert rc == 0
        assert "faults" in capsys.readouterr().out

    def test_driver_backend_identical_results(self):
        from repro.hybrid.driver import gahitec
        from repro.hybrid.passes import gahitec_schedule

        runs = {}
        for be in ("event", "codegen"):
            driver = gahitec(s27(), seed=3, backend=be)
            res = driver.run(gahitec_schedule(x=4, time_scale=None))
            runs[be] = (res.test_set, res.detected)
        assert runs["event"] == runs["codegen"]


class TestCompileCacheLifetime:
    def test_cache_entry_dies_with_compiled_form(self):
        from repro.simulation import compiled as compiled_mod

        before = len(compiled_mod._CACHE)
        compile_circuit(s27())  # result dropped immediately
        gc.collect()
        assert len(compiled_mod._CACHE) == before

    def test_cache_hit_while_alive(self):
        circuit = s27()
        cc = compile_circuit(circuit)
        assert compile_circuit(circuit) is cc
