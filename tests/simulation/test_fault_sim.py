"""Tests for the PROOFS-style parallel fault simulator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import s27
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault, full_fault_list
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import X, pack_const, unpack
from repro.simulation.fault_sim import FaultSimulator, fault_coverage, injection_for
from repro.simulation.logic_sim import FrameSimulator

from ..conftest import random_circuits


def serial_detects(circuit, fault, vectors) -> bool:
    """Single-fault, single-slot oracle: simulate good and faulty serially."""
    cc = compile_circuit(circuit)
    good = FrameSimulator(cc, width=1)
    bad = FrameSimulator(cc, width=1, injections=[injection_for(cc, fault, 1)])
    for vec in vectors:
        g = good.step([pack_const(v, 1) for v in vec])
        b = bad.step([pack_const(v, 1) for v in vec])
        for (g1, g0), (b1, b0) in zip(g, b):
            gv = unpack((g1, g0), 1)[0]
            bv = unpack((b1, b0), 1)[0]
            if gv != X and bv != X and gv != bv:
                return True
    return False


class TestAgainstSerialOracle:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_parallel_matches_serial(self, data):
        circuit = data.draw(random_circuits(max_pi=3, max_ff=2, max_gates=8))
        faults = collapse_faults(circuit)[:12]
        length = data.draw(st.integers(1, 6))
        vectors = [
            [data.draw(st.integers(0, 1)) for _ in circuit.inputs]
            for _ in range(length)
        ]
        result = FaultSimulator(circuit, width=8).run(vectors, faults)
        for fault in faults:
            assert (fault in result.detected) == serial_detects(
                circuit, fault, vectors
            ), f"{fault} disagreement"

    def test_s27_full_agreement(self):
        circuit = s27()
        rng = random.Random(5)
        vectors = [
            [rng.getrandbits(1) for _ in circuit.inputs] for _ in range(30)
        ]
        faults = collapse_faults(circuit)
        result = FaultSimulator(circuit, width=64).run(vectors, faults)
        for fault in faults:
            assert (fault in result.detected) == serial_detects(
                circuit, fault, vectors
            )


class TestDetectionRecords:
    def test_detection_frame_is_first(self):
        c = Circuit("direct")
        c.add_input("a")
        c.add_gate("y", GateType.BUF, ["a"])
        c.add_output("y")
        fault = Fault("y", 0)
        result = FaultSimulator(c).run([[0], [1], [1]], [fault])
        assert result.detected[fault] == 1  # first vector with a=1

    def test_x_good_output_never_detects(self):
        c = Circuit("xout")
        c.add_input("a")
        c.add_gate("q", GateType.DFF, ["a"])
        c.add_gate("y", GateType.BUF, ["q"])
        c.add_output("y")
        # in frame 0 the good output is X: no detection allowed
        result = FaultSimulator(c).run([[1]], [Fault("y", 0)])
        assert not result.detected

    def test_states_persist_across_calls(self):
        c = Circuit("persist")
        c.add_input("a")
        c.add_gate("q", GateType.DFF, ["a"])
        c.add_gate("y", GateType.BUF, ["q"])
        c.add_output("y")
        fault = Fault("a", 0)
        sim = FaultSimulator(c)
        states = {}
        # first call: the difference is captured in the flip-flop only
        r1 = sim.run([[1]], [fault], fault_states=states)
        assert fault not in r1.detected
        assert states[fault] == [0]  # faulty circuit latched the stuck 0
        # second call continues from stored states: good q=1, faulty q=0
        r2 = sim.run([[0]], [fault], good_state=r1.good_state, fault_states=states)
        assert fault in r2.detected

    def test_detected_faults_drop_from_states(self):
        circuit = s27()
        faults = collapse_faults(circuit)
        rng = random.Random(1)
        vectors = [[rng.getrandbits(1) for _ in circuit.inputs] for _ in range(50)]
        result = FaultSimulator(circuit).run(vectors, faults)
        assert set(result.fault_states) == set(faults) - set(result.detected)


class TestCoverageHelper:
    def test_coverage_fraction(self):
        circuit = s27()
        faults = collapse_faults(circuit)
        rng = random.Random(1)
        vectors = [[rng.getrandbits(1) for _ in circuit.inputs] for _ in range(100)]
        cov = fault_coverage(circuit, vectors, faults)
        assert 0.9 <= cov <= 1.0

    def test_empty_faults(self):
        assert fault_coverage(s27(), [[0, 0, 0, 0]], []) == 0.0

    def test_batching_matches_single_batch(self):
        circuit = s27()
        faults = collapse_faults(circuit)
        rng = random.Random(9)
        vectors = [[rng.getrandbits(1) for _ in circuit.inputs] for _ in range(20)]
        wide = FaultSimulator(circuit, width=64).run(vectors, faults)
        narrow = FaultSimulator(circuit, width=4).run(vectors, faults)
        assert wide.detected == narrow.detected
