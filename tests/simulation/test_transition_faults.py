"""Transition-fault injection: semantics, backend equivalence, cache keys.

The event interpreter is the oracle for the launch/capture semantics
(slow-to-rise keeps a 0 one extra frame, slow-to-fall keeps a 1); the
codegen and numpy backends must agree with it bit for bit, including on
mixed stuck-at + transition fault universes.  The persistent kernel
cache must treat the two models as different kernels: a stuck-at-warmed
cache misses (never corrupt-loads) under transition injection.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import iscas89, s27
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault
from repro.simulation import kernel_cache
from repro.simulation.codegen import COMPILE_STATS, kernel_for
from repro.simulation.compiled import compile_circuit
from repro.simulation.fault_sim import FaultSimulator, injection_for

from ..conftest import random_circuits

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

BACKENDS = ["event", "codegen"] + (["numpy"] if HAVE_NUMPY else [])


def buf_circuit() -> Circuit:
    c = Circuit("buf")
    c.add_input("a")
    c.add_gate("y", GateType.BUF, ["a"])
    c.add_output("y")
    return c


def run_backend(circuit, vectors, faults, backend, width=8):
    sim = FaultSimulator(circuit, width=width, backend=backend)
    return sim.run(vectors, faults)


class TestLaunchCaptureSemantics:
    """Hand-computed oracle pins for the event interpreter itself."""

    str_fault = Fault("a", 0, model="transition")  # slow-to-rise
    stf_fault = Fault("a", 1, model="transition")  # slow-to-fall

    def test_rising_edge_detects_slow_to_rise(self):
        result = run_backend(
            buf_circuit(), [[0], [1]], [self.str_fault], "event"
        )
        assert result.detected == {self.str_fault: 1}

    def test_static_site_never_detects(self):
        for vectors in ([[1], [1]], [[0], [0]]):
            result = run_backend(
                buf_circuit(), vectors, [self.str_fault], "event"
            )
            assert not result.detected

    def test_falling_edge_detects_slow_to_fall(self):
        result = run_backend(
            buf_circuit(), [[1], [0]], [self.stf_fault], "event"
        )
        assert result.detected == {self.stf_fault: 1}

    def test_wrong_polarity_edge_is_blind(self):
        result = run_backend(
            buf_circuit(), [[1], [0]], [self.str_fault], "event"
        )
        assert not result.detected

    def test_single_frame_cannot_detect(self):
        # frame 0 has no previous frame: the faulty site reads X, and an
        # X never disagrees observably with the good value
        for vec in ([[1]], [[0]]):
            result = run_backend(
                buf_circuit(), vec, [self.str_fault, self.stf_fault], "event"
            )
            assert not result.detected

    def test_delayed_by_exactly_one_frame(self):
        # 0,1,1: the slow-to-rise site recovers at frame 2 — only the
        # launch frame differs from the good machine
        result = run_backend(
            buf_circuit(), [[0], [1], [1]], [self.str_fault], "event"
        )
        assert result.detected == {self.str_fault: 1}


def ff_circuit() -> Circuit:
    """A flip-flop whose output net is readable: d -> ff -> y."""
    c = Circuit("ffc")
    c.add_input("d")
    c.add_gate("ff", GateType.DFF, ["d"])
    c.add_gate("y", GateType.BUF, ["ff"])
    c.add_output("y")
    return c


class TestCarriedStateSoundness:
    """Carried fault states must hold the raw latch value, not the forced
    read value: persisting the forced value re-applies the transition
    delay in the next run and can fabricate detections the true faulty
    machine never produces."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ff_output_stem_carries_raw_state(self, backend):
        # ff s-t-f: after d=1 then d=0 the latch holds raw 0, but the
        # forced (slow-to-fall) read of the net is still 1
        fault = Fault("ff", 1, model="transition")
        states = {}
        sim = FaultSimulator(ff_circuit(), width=8, backend=backend)
        result = sim.run([[1], [0]], [fault], fault_states=states)
        assert not result.detected  # no feedback: never observable here
        assert states[fault] == [0]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_incremental_detection_subset_of_scratch(self, backend):
        # splitting a sequence into carried-state blocks loses only the
        # cross-block previous-frame values (reset to X), which is
        # conservative: the incremental run must never claim a fault the
        # whole-sequence run does not
        import random

        circuit = iscas89("s27")
        faults = collapse_faults(circuit, "transition")
        npi = len(circuit.inputs)
        for seed in range(3):
            rng = random.Random(seed)
            vectors = [
                [rng.getrandbits(1) for _ in range(npi)] for _ in range(30)
            ]
            scratch = set(
                FaultSimulator(circuit, width=64, backend=backend)
                .run(vectors, list(faults), stop_on_all_detected=False)
                .detected
            )
            good_state = None
            states = {}
            remaining = list(faults)
            incremental = set()
            for i in range(0, len(vectors), 3):
                sim = FaultSimulator(circuit, width=64, backend=backend)
                res = sim.run(
                    vectors[i : i + 3],
                    remaining,
                    good_state=good_state,
                    fault_states=states,
                    stop_on_all_detected=False,
                )
                incremental |= set(res.detected)
                remaining = [f for f in remaining if f not in res.detected]
                good_state = res.good_state
            assert incremental <= scratch, sorted(
                str(f) for f in incremental - scratch
            )


def assert_results_equal(a, b, label):
    assert a.detected == b.detected, label
    assert a.good_state == b.good_state, label
    assert a.fault_states == b.fault_states, label
    assert a.good_outputs == b.good_outputs, label


class TestBackendEquivalence:
    """Event interpreter as oracle; codegen and numpy must match it."""

    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_s27_transition_universe(self, backend):
        circuit = s27()
        faults = collapse_faults(circuit, "transition")
        import random

        rng = random.Random(7)
        vectors = [
            [rng.getrandbits(1) for _ in circuit.inputs] for _ in range(48)
        ]
        oracle = run_backend(circuit, vectors, faults, "event")
        other = run_backend(circuit, vectors, faults, backend)
        assert oracle.detected, "oracle found no transitions — dead test"
        assert_results_equal(oracle, other, backend)

    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_s298_mixed_universe(self, backend):
        circuit = iscas89("s298")
        faults = (
            collapse_faults(circuit)[:40]
            + collapse_faults(circuit, "transition")[:40]
        )
        import random

        rng = random.Random(11)
        vectors = [
            [rng.getrandbits(1) for _ in circuit.inputs] for _ in range(32)
        ]
        oracle = run_backend(circuit, vectors, faults, "event")
        other = run_backend(circuit, vectors, faults, backend)
        assert_results_equal(oracle, other, backend)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_random_circuits_all_backends(self, data):
        circuit = data.draw(random_circuits(max_pi=3, max_ff=2, max_gates=8))
        faults = collapse_faults(circuit, "transition")[:10]
        length = data.draw(st.integers(2, 6))
        vectors = [
            [data.draw(st.integers(0, 1)) for _ in circuit.inputs]
            for _ in range(length)
        ]
        oracle = run_backend(circuit, vectors, faults, "event")
        for backend in BACKENDS[1:]:
            other = run_backend(circuit, vectors, faults, backend)
            assert_results_equal(oracle, other, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_grade_blocks_mixed(self, backend):
        circuit = s27()
        faults = (
            collapse_faults(circuit)[:12]
            + collapse_faults(circuit, "transition")[:12]
        )
        import random

        rng = random.Random(3)
        blocks = [
            [
                [rng.getrandbits(1) for _ in circuit.inputs]
                for _ in range(8)
            ]
            for _ in range(3)
        ]
        sim = FaultSimulator(circuit, width=8, backend=backend)
        graded = sim.grade_blocks(blocks, faults)
        oracle = FaultSimulator(circuit, width=8, backend="event").grade_blocks(
            blocks, faults
        )
        assert graded.detected == oracle.detected
        assert graded.per_block_new == oracle.per_block_new
        assert graded.good_state == oracle.good_state


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(kernel_cache.ENV_VAR, str(tmp_path))
    return tmp_path


class TestKernelCacheModelSeparation:
    """Model id is part of the kernel key: no cross-model (corrupt) loads."""

    def test_stuck_at_warm_cache_misses_under_transition(self, cache_dir):
        sa = Fault("G10", 0)
        tr = Fault("G10", 0, model="transition")
        cc = compile_circuit(s27())
        kernel_for(cc, [injection_for(cc, sa, 1)])
        # same site, other model, fresh compile: must compile anew (a
        # cross-model disk hit would run stuck-at forcing code)
        warm = compile_circuit(s27())
        before = COMPILE_STATS["kernels"]
        misses = kernel_cache.CACHE_STATS["misses"]
        kernel_for(warm, [injection_for(warm, tr, 1)])
        assert COMPILE_STATS["kernels"] == before + 1
        assert kernel_cache.CACHE_STATS["misses"] == misses + 1

    def test_warm_start_compiles_zero_per_model(self, cache_dir):
        sa = Fault("G10", 0)
        tr = Fault("G10", 0, model="transition")
        cold = compile_circuit(s27())
        kernel_for(cold, [injection_for(cold, sa, 1)])
        kernel_for(cold, [injection_for(cold, tr, 1)])
        warm = compile_circuit(s27())
        before = COMPILE_STATS["kernels"]
        hits = kernel_cache.CACHE_STATS["hits"]
        kernel_for(warm, [injection_for(warm, sa, 1)])
        kernel_for(warm, [injection_for(warm, tr, 1)])
        assert COMPILE_STATS["kernels"] == before
        assert kernel_cache.CACHE_STATS["hits"] == hits + 2

    def test_warm_transition_grades_match_event(self, cache_dir):
        circuit = s27()
        faults = collapse_faults(circuit, "transition")[:16]
        import random

        rng = random.Random(5)
        vectors = [
            [rng.getrandbits(1) for _ in circuit.inputs] for _ in range(24)
        ]
        # prime the cache with the *stuck-at* universe first
        FaultSimulator(s27(), width=8, backend="codegen").run(
            vectors, collapse_faults(circuit)[:16]
        )
        warm = run_backend(s27(), vectors, faults, "codegen")
        oracle = run_backend(circuit, vectors, faults, "event")
        assert_results_equal(oracle, warm, "warm codegen")
