"""Tests for the compiled circuit form."""

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import s27
from repro.simulation.compiled import CompiledCircuit, compile_circuit


class TestCompiledCircuit:
    def test_indices_cover_all_nets(self, s27_circuit):
        cc = compile_circuit(s27_circuit)
        assert sorted(cc.index.values()) == list(range(cc.num_nets))
        assert [cc.name_of(cc.index[n]) for n in s27_circuit.nets] == s27_circuit.nets

    def test_pi_po_ff_mapping(self, s27_circuit):
        cc = compile_circuit(s27_circuit)
        assert [cc.name_of(i) for i in cc.pi] == ["G0", "G1", "G2", "G3"]
        assert [cc.name_of(i) for i in cc.po] == ["G17"]
        assert [cc.name_of(i) for i in cc.ff_out] == ["G5", "G6", "G7"]
        assert [cc.name_of(i) for i in cc.ff_in] == ["G10", "G11", "G13"]

    def test_gates_in_level_order(self, s27_circuit):
        cc = compile_circuit(s27_circuit)
        levels = [g.level for g in cc.gates]
        assert levels == sorted(levels)

    def test_gate_of_none_for_sources(self, s27_circuit):
        cc = compile_circuit(s27_circuit)
        for i in cc.pi + cc.ff_out:
            assert cc.gate_of[i] is None
            assert cc.is_source(i)

    def test_fanout_gates_consistent(self, s27_circuit):
        cc = compile_circuit(s27_circuit)
        for net_idx, positions in enumerate(cc.fanout_gates):
            for pos in positions:
                assert net_idx in cc.gates[pos].fanin

    def test_cache_reuses_same_object(self, s27_circuit):
        assert compile_circuit(s27_circuit) is compile_circuit(s27_circuit)

    def test_cache_distinguishes_copies(self, s27_circuit):
        other = s27_circuit.copy()
        assert compile_circuit(s27_circuit) is not compile_circuit(other)

    def test_dffs_not_in_gate_list(self, s27_circuit):
        cc = compile_circuit(s27_circuit)
        assert all(g.gtype is not GateType.DFF for g in cc.gates)
        assert len(cc.gates) == s27_circuit.num_gates
