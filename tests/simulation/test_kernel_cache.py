"""The persistent kernel cache: hits, integrity, and telemetry.

Exercises the disk layer shared by both compiling backends: a cold
process writes entries, a warm process (simulated with fresh compiled
circuits) loads them with **zero** recompilation, and a corrupted or
truncated entry is detected, discarded and transparently rebuilt — the
cache can degrade but never crash a run.
"""

import os

import pytest

from repro.circuits import s27
from repro.faults.model import full_fault_list
from repro.simulation import kernel_cache
from repro.simulation.codegen import COMPILE_STATS, kernel_for
from repro.simulation.compiled import compile_circuit
from repro.simulation.fault_sim import FaultSimulator
from repro.telemetry import TelemetryRecorder

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(kernel_cache.ENV_VAR, str(tmp_path))
    return tmp_path


def _entry_files(root):
    return [
        os.path.join(dirpath, f)
        for dirpath, _, files in os.walk(root)
        for f in files
        if f.endswith(".rkc")
    ]


class TestStoreLoad:
    def test_roundtrip(self, cache_dir):
        key = kernel_cache.entry_key("test", 1, "fp", ("a", 2))
        payload = {"rows": b"\x01\x02", "n": 7, "t": (1, 2, 3)}
        assert kernel_cache.store(key, payload)
        assert kernel_cache.load(key) == payload

    def test_disabled_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv(kernel_cache.ENV_VAR, raising=False)
        key = kernel_cache.entry_key("test", 1, "fp")
        assert not kernel_cache.store(key, {"x": 1})
        assert kernel_cache.load(key) is None
        assert not _entry_files(tmp_path)

    def test_missing_entry_counts_miss(self, cache_dir):
        before = kernel_cache.CACHE_STATS["misses"]
        assert kernel_cache.load("0" * 64) is None
        assert kernel_cache.CACHE_STATS["misses"] == before + 1

    def test_configure_sets_environment(self, tmp_path, monkeypatch):
        monkeypatch.delenv(kernel_cache.ENV_VAR, raising=False)
        kernel_cache.configure(str(tmp_path))
        try:
            assert os.environ[kernel_cache.ENV_VAR] == str(tmp_path)
            assert kernel_cache.cache_dir() == str(tmp_path)
        finally:
            kernel_cache.configure(None)
        assert kernel_cache.cache_dir() is None

    def test_unmarshallable_payload_degrades(self, cache_dir):
        key = kernel_cache.entry_key("test", 1, "fp")
        assert not kernel_cache.store(key, {"bad": object()})

    def test_fingerprint_stable_across_compiles(self):
        fp1 = kernel_cache.circuit_fingerprint(compile_circuit(s27()))
        fp2 = kernel_cache.circuit_fingerprint(compile_circuit(s27()))
        assert fp1 == fp2


class TestCorruption:
    def _store_one(self):
        key = kernel_cache.entry_key("test", 1, "fp")
        kernel_cache.store(key, [1, 2, 3])
        return key

    @pytest.mark.parametrize("damage", ["truncate", "flip", "garbage"])
    def test_detected_and_discarded(self, cache_dir, damage):
        key = self._store_one()
        (path,) = _entry_files(cache_dir)
        blob = open(path, "rb").read()
        if damage == "truncate":
            blob = blob[: len(blob) // 2]
        elif damage == "flip":
            blob = blob[:40] + bytes([blob[40] ^ 0xFF]) + blob[41:]
        else:
            blob = b"not a cache entry"
        open(path, "wb").write(blob)
        before = kernel_cache.CACHE_STATS["corrupt"]
        assert kernel_cache.load(key) is None
        assert kernel_cache.CACHE_STATS["corrupt"] == before + 1
        assert not _entry_files(cache_dir)  # bad entry deleted
        # a rebuild overwrites cleanly and the next load succeeds
        kernel_cache.store(key, [1, 2, 3])
        assert kernel_cache.load(key) == [1, 2, 3]


class TestCodegenDiskCache:
    def test_warm_compile_skipped(self, cache_dir):
        cold = compile_circuit(s27())
        before = COMPILE_STATS["kernels"]
        kernel_for(cold, [])
        assert COMPILE_STATS["kernels"] == before + 1
        assert _entry_files(cache_dir)
        # a fresh compiled circuit simulates a warm process: the kernel
        # comes off disk without touching the compiler
        warm = compile_circuit(s27())
        before = COMPILE_STATS["kernels"]
        hits = kernel_cache.CACHE_STATS["hits"]
        kernel_for(warm, [])
        assert COMPILE_STATS["kernels"] == before
        assert kernel_cache.CACHE_STATS["hits"] == hits + 1

    def test_corrupt_kernel_recompiles(self, cache_dir):
        kernel_for(compile_circuit(s27()), [])
        for path in _entry_files(cache_dir):
            open(path, "wb").write(b"\x00" * 10)
        before = COMPILE_STATS["kernels"]
        kernel_for(compile_circuit(s27()), [])
        assert COMPILE_STATS["kernels"] == before + 1  # recompiled
        # and the overwritten entry is valid again
        before = COMPILE_STATS["kernels"]
        kernel_for(compile_circuit(s27()), [])
        assert COMPILE_STATS["kernels"] == before


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
class TestNumpyProgramDiskCache:
    def test_warm_build_skipped(self, cache_dir):
        from repro.simulation.numpy_backend import PROGRAM_STATS, program_for

        before = PROGRAM_STATS["programs"]
        program_for(compile_circuit(s27()))
        assert PROGRAM_STATS["programs"] == before + 1
        before = PROGRAM_STATS["programs"]
        program_for(compile_circuit(s27()))  # fresh cc -> disk hit
        assert PROGRAM_STATS["programs"] == before

    def test_corrupt_program_rebuilds(self, cache_dir):
        from repro.simulation.numpy_backend import PROGRAM_STATS, program_for

        program_for(compile_circuit(s27()))
        for path in _entry_files(cache_dir):
            blob = open(path, "rb").read()
            open(path, "wb").write(blob[:50])
        before = PROGRAM_STATS["programs"]
        corrupt = kernel_cache.CACHE_STATS["corrupt"]
        program_for(compile_circuit(s27()))
        assert PROGRAM_STATS["programs"] == before + 1
        assert kernel_cache.CACHE_STATS["corrupt"] == corrupt + 1

    def test_cached_program_results_identical(self, cache_dir):
        import random

        circuit = s27()
        faults = full_fault_list(circuit)
        rng = random.Random(3)
        vectors = [
            [rng.getrandbits(1) for _ in circuit.inputs] for _ in range(12)
        ]
        runs = []
        for _ in range(2):  # second run loads the program from disk
            res = FaultSimulator(
                compile_circuit(circuit), width=32, backend="numpy"
            ).run(vectors, faults, stop_on_all_detected=False)
            runs.append((res.detected, res.good_state, res.fault_states))
        assert runs[0] == runs[1]


class TestTelemetryCounters:
    def test_warm_run_reports_hits(self, cache_dir):
        circuit = s27()
        faults = full_fault_list(circuit)[:8]
        vectors = [[1, 0, 1, 1], [0, 1, 0, 0]]
        FaultSimulator(compile_circuit(circuit), width=8,
                       backend="codegen").run(vectors, faults)
        tel = TelemetryRecorder()
        FaultSimulator(compile_circuit(circuit), width=8, backend="codegen",
                       telemetry=tel).run(vectors, faults)
        counters = tel.registry.counters
        assert counters.get("sim.kernel_cache.hits", 0) >= 1
        assert "sim.kernel_cache.corrupt" not in counters

    def test_disabled_cache_reports_nothing(self, monkeypatch):
        monkeypatch.delenv(kernel_cache.ENV_VAR, raising=False)
        circuit = s27()
        tel = TelemetryRecorder()
        FaultSimulator(compile_circuit(circuit), width=8, backend="codegen",
                       telemetry=tel).run(
            [[1, 0, 1, 1]], full_fault_list(circuit)[:4])
        counters = tel.registry.counters
        assert not any(k.startswith("sim.kernel_cache") for k in counters)
