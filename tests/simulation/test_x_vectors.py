"""Tests for don't-care (X) handling in test vectors end to end."""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import s27
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault
from repro.simulation.encoding import X
from repro.simulation.fault_sim import FaultSimulator


class TestXInVectors:
    def test_x_vector_never_detects_through_unknown(self):
        """An X on the sensitising input keeps the PO unknown: no credit."""
        c = Circuit("xsens")
        c.add_input("a")
        c.add_input("en")
        c.add_gate("y", GateType.AND, ["a", "en"])
        c.add_output("y")
        fault = Fault("a", 0)
        # en is X: good output is X, detection must NOT be claimed
        result = FaultSimulator(c).run([[1, X]], [fault])
        assert fault not in result.detected
        # en = 1 makes it definite
        result = FaultSimulator(c).run([[1, 1]], [fault])
        assert fault in result.detected

    def test_x_vectors_are_conservative_vs_filled(self):
        """Anything an X sequence detects, some filled sequence detects."""
        import random

        circuit = s27()
        faults = collapse_faults(circuit)
        rng = random.Random(3)
        x_vectors = []
        for _ in range(30):
            x_vectors.append(
                [rng.choice([0, 1, X]) for _ in circuit.inputs]
            )
        zero_fill = [[0 if v == X else v for v in vec] for vec in x_vectors]
        one_fill = [[1 if v == X else v for v in vec] for vec in x_vectors]
        sim = FaultSimulator(circuit)
        with_x = set(sim.run(x_vectors, faults).detected)
        either_fill = set(sim.run(zero_fill, faults).detected) | set(
            sim.run(one_fill, faults).detected
        )
        # X-detection requires the difference regardless of the X values,
        # so in particular the all-zero fill must reproduce it … but the
        # converse is false.  (Exact statement: with_x ⊆ zero_fill-detects.)
        zero_detects = set(sim.run(zero_fill, faults).detected)
        assert with_x <= zero_detects
        assert with_x <= either_fill

    def test_all_x_vector_detects_nothing(self):
        circuit = s27()
        faults = collapse_faults(circuit)
        result = FaultSimulator(circuit).run(
            [[X] * 4] * 10, faults
        )
        assert not result.detected
