"""Differential tests: the ``numpy`` backend against event and codegen.

The event-driven :class:`FrameSimulator` remains the oracle; these tests
assert the vectorized matrix backend matches it (and the codegen
backend) bit-for-bit — detection sets *and their insertion order*,
surviving fault states, good-machine outputs/state and signatures —
across the full gate set, all injection kinds, X-valued inputs, and
machine widths from one slot to many words.  The backend is optional:
the fallback tests at the bottom run with or without numpy installed.
"""

import sys
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import iscas89, s27
from repro.faults.model import Fault, full_fault_list
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import X
from repro.simulation.fault_sim import FaultSimulator, injection_for
from repro.simulation.logic_sim import (
    BackendUnavailableError,
    available_backends,
    make_simulator,
    resolve_backend,
)

from .test_codegen import full_gateset_circuits

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - container images ship numpy
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

#: One slot, one partial word, exactly one word of fault chunking, and
#: multi-word machines — the widths named by the acceptance criteria.
WIDTHS = [1, 64, 256, 1024]


def _run_all_backends(circuit, vectors, faults, width, **kwargs):
    results = {}
    for backend in ("event", "codegen", "numpy"):
        states = {}
        sim = FaultSimulator(circuit, width=width, backend=backend)
        res = sim.run(vectors, faults, fault_states=states, **kwargs)
        results[backend] = (res, states)
    return results


def _assert_equivalent(results):
    ref, ref_states = results["event"]
    for backend in ("codegen", "numpy"):
        got, got_states = results[backend]
        assert got.detected == ref.detected, backend
        assert list(got.detected) == list(ref.detected), backend  # order
        assert got.fault_states == ref.fault_states, backend
        assert got.good_outputs == ref.good_outputs, backend
        assert got.good_state == ref.good_state, backend
        assert got_states == ref_states, backend


@needs_numpy
class TestThreeWayEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_random_circuits(self, data):
        circuit = data.draw(full_gateset_circuits())
        faults = full_fault_list(circuit)
        if len(faults) > 24:
            start = data.draw(st.integers(0, len(faults) - 24))
            faults = faults[start : start + 24]
        length = data.draw(st.integers(1, 6))
        vectors = [
            [data.draw(st.integers(0, 2)) for _ in circuit.inputs]
            for _ in range(length)
        ]
        width = data.draw(st.sampled_from(WIDTHS))
        _assert_equivalent(
            _run_all_backends(circuit, vectors, faults, width,
                              stop_on_all_detected=False)
        )

    @pytest.mark.parametrize("width", WIDTHS)
    def test_s27_all_widths(self, width, rng_vectors=20):
        import random

        circuit = s27()
        faults = full_fault_list(circuit)
        rng = random.Random(width)
        vectors = [
            [rng.choice([0, 1, X]) for _ in circuit.inputs]
            for _ in range(rng_vectors)
        ]
        _assert_equivalent(
            _run_all_backends(circuit, vectors, faults, width,
                              stop_on_all_detected=False)
        )

    def test_early_stop_equivalence(self):
        import random

        circuit = s27()
        faults = full_fault_list(circuit)
        rng = random.Random(5)
        vectors = [
            [rng.getrandbits(1) for _ in circuit.inputs] for _ in range(40)
        ]
        _assert_equivalent(
            _run_all_backends(circuit, vectors, faults, 64,
                              stop_on_all_detected=True)
        )

    def test_all_injection_kinds_explicit(self):
        import random

        # fanout net feeds a gate pin AND a flip-flop D pin, plus parity
        # gates so the XOR per-gate path carries injections too
        c = Circuit("np_kinds")
        a = c.add_input("a")
        b = c.add_input("b")
        c.add_gate("s", GateType.AND, [a, b])
        c.add_gate("y", GateType.NOR, ["s", b])
        c.add_gate("q", GateType.DFF, ["s"])
        c.add_gate("z", GateType.XOR, ["q", a])
        c.add_gate("w", GateType.XNOR, ["z", "s"])
        c.add_output("y")
        c.add_output("w")
        faults = full_fault_list(c)
        rng = random.Random(2)
        vectors = [
            [rng.choice([0, 1, X]) for _ in c.inputs] for _ in range(16)
        ]
        _assert_equivalent(
            _run_all_backends(c, vectors, faults, 16,
                              stop_on_all_detected=False)
        )

    def test_stem_fault_on_flip_flop_output_state(self):
        # the forced value must appear in the *extracted* final state,
        # exactly as the event backend applies it at the clock edge
        c = Circuit("np_ffstem")
        a = c.add_input("a")
        c.add_gate("q", GateType.DFF, [a])
        c.add_gate("y", GateType.BUF, ["q"])
        c.add_output("y")
        faults = [Fault("q", 0), Fault("q", 1)]
        _assert_equivalent(
            _run_all_backends(c, [[1], [1], [0]], faults, 8,
                              stop_on_all_detected=False)
        )

    def test_signatures_match(self):
        import random

        circuit = s27()
        faults = full_fault_list(circuit)
        rng = random.Random(4)
        vectors = [
            [rng.getrandbits(1) for _ in circuit.inputs] for _ in range(20)
        ]
        runs = {}
        for backend in ("event", "codegen", "numpy"):
            runs[backend] = FaultSimulator(
                circuit, width=32, backend=backend
            ).run(vectors, faults, record_signatures=True)
        assert runs["numpy"].signatures == runs["event"].signatures
        assert runs["codegen"].signatures == runs["event"].signatures

    def test_incremental_carried_states(self):
        # three grading blocks with faulty-machine states carried between
        # them — the campaign/merge regime the backend exists for
        import random

        circuit = iscas89("s298")
        faults = full_fault_list(circuit)[:80]
        rng = random.Random(9)
        blocks = [
            [[rng.getrandbits(1) for _ in circuit.inputs] for _ in range(8)]
            for _ in range(3)
        ]
        runs = {}
        for backend in ("event", "numpy"):
            sim = FaultSimulator(circuit, width=64, backend=backend)
            remaining = list(faults)
            states: dict = {}
            good = [X] * len(compile_circuit(circuit).ff_out)
            detected = {}
            for block in blocks:
                res = sim.run(block, remaining, good_state=good,
                              fault_states=states)
                detected.update(res.detected)
                remaining = [f for f in remaining if f not in res.detected]
                good = res.good_state
            runs[backend] = (detected, states, good)
        assert runs["numpy"] == runs["event"]

    def test_grade_blocks_consistency(self):
        import random

        circuit = s27()
        faults = full_fault_list(circuit)
        rng = random.Random(6)
        blocks = [
            [[rng.getrandbits(1) for _ in circuit.inputs] for _ in range(6)]
            for _ in range(4)
        ]
        graded = {}
        for backend in ("event", "numpy"):
            sim = FaultSimulator(circuit, width=32, backend=backend)
            r = sim.grade_blocks(blocks, faults)
            graded[backend] = (r.kept, r.dropped, r.detected,
                               r.per_block_new)
        assert graded["numpy"] == graded["event"]


@needs_numpy
class TestBackendSelection:
    def test_registered_and_resolvable(self):
        assert "numpy" in available_backends()
        assert resolve_backend("numpy") == "numpy"

    def test_make_simulator(self):
        from repro.simulation.numpy_backend import NumpyFrameSimulator

        sim = make_simulator(s27(), width=8, backend="numpy")
        assert isinstance(sim, NumpyFrameSimulator)

    def test_env_selection(self, monkeypatch):
        from repro.simulation.logic_sim import BACKEND_ENV
        from repro.simulation.numpy_backend import NumpyFrameSimulator

        monkeypatch.setenv(BACKEND_ENV, "numpy")
        sim = make_simulator(s27(), width=2)
        assert isinstance(sim, NumpyFrameSimulator)

    def test_program_shared_across_shapes(self):
        # one program serves every injection shape — the structural
        # advantage over codegen's kernel-per-signature
        from repro.simulation.numpy_backend import program_for

        cc = compile_circuit(s27())
        i1 = [injection_for(cc, Fault("G10", 0), 1)]
        i2 = [injection_for(cc, Fault("G11", 1), 1),
              injection_for(cc, Fault("G10", 0), 2)]
        a = make_simulator(cc, width=4, injections=i1, backend="numpy")
        b = make_simulator(cc, width=4, injections=i2, backend="numpy")
        assert a._prog is b._prog
        assert program_for(cc) is a._prog


class TestFallbackWithoutNumpy:
    """The backend degrades, never crashes, when numpy is absent."""

    def _hide_numpy(self, monkeypatch):
        import repro.simulation.logic_sim as ls

        # a None entry makes ``import numpy`` raise ImportError; dropping
        # the backend module + registration forces a fresh lazy load
        monkeypatch.setitem(sys.modules, "numpy", None)
        monkeypatch.delitem(
            sys.modules, "repro.simulation.numpy_backend", raising=False
        )
        monkeypatch.delitem(ls._BACKENDS, "numpy", raising=False)

    def test_resolve_falls_back_with_warning(self, monkeypatch):
        self._hide_numpy(monkeypatch)
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resolve_backend("numpy") == "codegen"

    def test_make_simulator_degrades(self, monkeypatch):
        from repro.simulation.codegen import CodegenFrameSimulator

        self._hide_numpy(monkeypatch)
        with pytest.warns(RuntimeWarning):
            sim = make_simulator(s27(), width=4, backend="numpy")
        assert isinstance(sim, CodegenFrameSimulator)

    def test_fault_simulator_degrades(self, monkeypatch):
        self._hide_numpy(monkeypatch)
        with pytest.warns(RuntimeWarning):
            sim = FaultSimulator(s27(), width=8, backend="numpy")
        assert sim.backend == "codegen"
        res = sim.run([[1, 0, 1, 1]], full_fault_list(s27())[:4])
        assert res.good_outputs

    @needs_numpy
    def test_direct_construction_raises(self, monkeypatch):
        import repro.simulation.numpy_backend as npb

        monkeypatch.setattr(npb, "np", None)
        with pytest.raises(BackendUnavailableError, match="numpy"):
            npb.NumpyFrameSimulator(compile_circuit(s27()), width=4)

    @needs_numpy
    def test_available_backends_lists_numpy(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no fallback warning expected
            assert "numpy" in available_backends()
