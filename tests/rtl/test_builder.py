"""Tests for the word-level RTL builder (verified by simulation)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.netlist import CircuitError
from repro.rtl.builder import RtlBuilder
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import pack_const, unpack
from repro.simulation.logic_sim import FrameSimulator


def evaluate(circuit, inputs: dict) -> dict:
    """One combinational evaluation (scalars) of a built circuit."""
    sim = FrameSimulator(circuit, width=1)
    vec = {net: pack_const(v, 1) for net, v in inputs.items()}
    po = sim.apply_inputs(vec)
    sim.settle()
    return {net: unpack(sim.read(net), 1)[0] for net in circuit.outputs}


def drive_bus(names, value):
    return {net: (value >> i) & 1 for i, net in enumerate(names)}


def read_bus(outs, names):
    return sum(outs[net] << i for i, net in enumerate(names))


class TestAdders:
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_add(self, x, y, cin):
        b = RtlBuilder("add")
        a = b.input_bus("a", 8)
        bb = b.input_bus("b", 8)
        ci = b.input_bit("ci")
        total, cout = b.add(a, bb, ci)
        b.output_bus(total)
        b.output_bit(cout)
        c = b.build()
        ins = {**drive_bus(a, x), **drive_bus(bb, y), "ci": cin}
        outs = evaluate(c, ins)
        got = read_bus(outs, total) | (outs[cout] << 8)
        assert got == x + y + cin

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_sub(self, x, y):
        b = RtlBuilder("sub")
        a = b.input_bus("a", 8)
        bb = b.input_bus("b", 8)
        diff, no_borrow = b.sub(a, bb)
        b.output_bus(diff)
        b.output_bit(no_borrow)
        c = b.build()
        outs = evaluate(c, {**drive_bus(a, x), **drive_bus(bb, y)})
        assert read_bus(outs, diff) == (x - y) & 0xFF
        assert outs[no_borrow] == int(x >= y)

    @given(st.integers(0, 15))
    def test_inc_dec(self, x):
        b = RtlBuilder("incdec")
        a = b.input_bus("a", 4)
        up = b.inc(a)
        down = b.dec(a)
        b.output_bus(up)
        b.output_bus(down)
        c = b.build()
        outs = evaluate(c, drive_bus(a, x))
        assert read_bus(outs, up) == (x + 1) & 0xF
        assert read_bus(outs, down) == (x - 1) & 0xF


class TestSelectors:
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
    def test_mux2(self, x, y, s):
        b = RtlBuilder("mux")
        a = b.input_bus("a", 4)
        bb = b.input_bus("b", 4)
        sel = b.input_bit("s")
        out = b.mux2(sel, a, bb)
        b.output_bus(out)
        c = b.build()
        outs = evaluate(c, {**drive_bus(a, x), **drive_bus(bb, y), "s": s})
        assert read_bus(outs, out) == (y if s else x)

    def test_mux_tree_selects_all_options(self):
        b = RtlBuilder("mt")
        sels = [b.input_bit(f"s{i}") for i in range(2)]
        options = [b.const_bus(v, 4) for v in (3, 7, 12, 9)]
        out = b.mux_tree(sels, options)
        b.output_bus(out)
        c = b.build()
        for v, expect in enumerate((3, 7, 12, 9)):
            outs = evaluate(c, {"s0": v & 1, "s1": (v >> 1) & 1})
            assert read_bus(outs, out) == expect

    def test_onehot_mux(self):
        b = RtlBuilder("oh")
        lines = [b.input_bit(f"l{i}") for i in range(3)]
        buses = [b.const_bus(v, 4) for v in (5, 10, 15)]
        out = b.onehot_mux(lines, buses)
        b.output_bus(out)
        c = b.build()
        for i, expect in enumerate((5, 10, 15)):
            ins = {f"l{j}": int(j == i) for j in range(3)}
            assert read_bus(evaluate(c, ins), out) == expect

    def test_decoder(self):
        b = RtlBuilder("dec")
        sel = b.input_bus("s", 3)
        lines = b.decoder(sel)
        b.output_bus(lines)
        c = b.build()
        for v in range(8):
            outs = evaluate(c, drive_bus(sel, v))
            assert [outs[l] for l in lines] == [int(i == v) for i in range(8)]


class TestComparators:
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_equals(self, x, y):
        b = RtlBuilder("eq")
        a = b.input_bus("a", 4)
        bb = b.input_bus("b", 4)
        e = b.equals(a, bb)
        b.output_bit(e)
        c = b.build()
        outs = evaluate(c, {**drive_bus(a, x), **drive_bus(bb, y)})
        assert outs[e] == int(x == y)

    @given(st.integers(0, 15))
    def test_is_zero(self, x):
        b = RtlBuilder("z")
        a = b.input_bus("a", 4)
        z = b.is_zero(a)
        b.output_bit(z)
        c = b.build()
        assert evaluate(c, drive_bus(a, x))[z] == int(x == 0)


class TestShifts:
    def test_shift_left(self):
        b = RtlBuilder("shl")
        a = b.input_bus("a", 4)
        out = b.shift_left(a)
        b.output_bus(out)
        c = b.build()
        assert read_bus(evaluate(c, drive_bus(a, 0b0101)), out) == 0b1010

    def test_shift_right_with_fill(self):
        b = RtlBuilder("shr")
        a = b.input_bus("a", 4)
        f = b.input_bit("f")
        out = b.shift_right(a, fill=f)
        b.output_bus(out)
        c = b.build()
        outs = evaluate(c, {**drive_bus(a, 0b0101), "f": 1})
        assert read_bus(outs, out) == 0b1010


class TestRegisters:
    def test_register_follows_input(self):
        b = RtlBuilder("reg")
        d = b.input_bus("d", 4)
        q = b.register(d, "r")
        b.output_bus(q)
        c = b.build()
        sim = FrameSimulator(c, width=1)
        sim.step({net: pack_const((5 >> i) & 1, 1) for i, net in enumerate(d)})
        sim.step({net: pack_const(0, 1) for net in d})
        got = sum(unpack(sim.read(net), 1)[0] << i for i, net in enumerate(q))
        # after the second clock q holds the first vector's value? No:
        # q follows d each clock, so it now holds the second vector (0)
        assert got == 0

    def test_register_with_enable_holds(self):
        b = RtlBuilder("regen")
        d = b.input_bus("d", 4)
        en = b.input_bit("en")
        q = b.register(d, "r", enable=en)
        b.output_bus(q)
        c = b.build()
        sim = FrameSimulator(c, width=1)

        def step(value, enable):
            vec = {net: pack_const((value >> i) & 1, 1) for i, net in enumerate(d)}
            vec["en"] = pack_const(enable, 1)
            sim.step(vec)

        step(9, 1)   # load 9
        step(3, 0)   # hold
        got = sum(unpack(sim.read(net), 1)[0] << i for i, net in enumerate(q))
        assert got == 9

    def test_undriven_register_loop_rejected(self):
        b = RtlBuilder("bad")
        b.input_bus("a", 1)
        b.register_loop(2, "r")
        with pytest.raises(ValueError):
            b.build()

    def test_double_drive_rejected(self):
        b = RtlBuilder("dd")
        a = b.input_bus("a", 2)
        loop = b.register_loop(2, "r")
        loop.drive(a)
        with pytest.raises(ValueError):
            loop.drive(a)


class TestBuild:
    def test_build_sweeps_dead_carry(self):
        b = RtlBuilder("sweepy")
        a = b.input_bus("a", 4)
        bb = b.input_bus("b", 4)
        total, _unused_carry = b.add(a, bb)
        b.output_bus(total)
        c = b.build()  # must not raise about the dangling carry
        assert c.num_gates > 0
