"""Tests for structural fault-equivalence collapsing."""

import random

from hypothesis import given, settings, strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import s27
from repro.faults.collapse import (
    collapse_faults,
    collapse_ratio,
    equivalence_classes,
)
from repro.faults.model import Fault, full_fault_list
from repro.simulation.fault_sim import FaultSimulator

from ..conftest import random_circuits


class TestLocalRules:
    def test_inverter_chain(self):
        c = Circuit("inv")
        c.add_input("a")
        c.add_gate("n1", GateType.NOT, ["a"])
        c.add_gate("y", GateType.NOT, ["n1"])
        c.add_output("y")
        classes = equivalence_classes(c)
        # a s-a-0 == n1 s-a-1 == y s-a-0
        assert classes[Fault("a", 0)] == classes[Fault("n1", 1)]
        assert classes[Fault("n1", 1)] == classes[Fault("y", 0)]
        # full universe 6 -> 2 classes
        assert len(collapse_faults(c)) == 2

    def test_and_gate_inputs_sa0_merge_with_output_sa0(self):
        c = Circuit("and")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.AND, ["a", "b"])
        c.add_output("y")
        classes = equivalence_classes(c)
        assert classes[Fault("a", 0)] == classes[Fault("y", 0)]
        assert classes[Fault("b", 0)] == classes[Fault("y", 0)]
        assert classes[Fault("a", 1)] != classes[Fault("y", 1)]

    def test_nand_gate_inverts_output_value(self):
        c = Circuit("nand")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.NAND, ["a", "b"])
        c.add_output("y")
        classes = equivalence_classes(c)
        assert classes[Fault("a", 0)] == classes[Fault("y", 1)]

    def test_xor_has_no_collapsing(self):
        c = Circuit("xor")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.XOR, ["a", "b"])
        c.add_output("y")
        assert len(collapse_faults(c)) == 6

    def test_dff_collapses_like_buffer(self):
        c = Circuit("dff")
        c.add_input("a")
        c.add_gate("q", GateType.DFF, ["a"])
        c.add_gate("y", GateType.BUF, ["q"])
        c.add_output("y")
        classes = equivalence_classes(c)
        assert classes[Fault("a", 0)] == classes[Fault("q", 0)]
        assert classes[Fault("q", 1)] == classes[Fault("y", 1)]

    def test_branch_faults_collapse_into_gate_rule(self):
        c = Circuit("branchy")
        c.add_input("a")
        c.add_gate("y1", GateType.AND, ["a", "b"])
        c.add_gate("y2", GateType.OR, ["a", "b"])
        c.add_input("b")
        c.add_output("y1")
        c.add_output("y2")
        classes = equivalence_classes(c)
        # a's branch into the AND, s-a-0, merges with y1 s-a-0
        assert classes[Fault("a", 0, gate="y1", pin=0)] == classes[Fault("y1", 0)]
        # but the stem fault a s-a-0 does NOT (fanout blocks it)
        assert classes[Fault("a", 0)] != classes[Fault("y1", 0)]


class TestGlobalProperties:
    def test_collapse_ratio_on_s27(self):
        full, collapsed = collapse_ratio(s27())
        assert full == 52
        assert collapsed < full
        assert collapsed == len(collapse_faults(s27()))

    def test_representatives_are_members(self):
        c = s27()
        classes = equivalence_classes(c)
        universe = set(full_fault_list(c)) | set(classes)
        assert all(rep in universe for rep in classes.values())

    def test_deterministic(self):
        assert collapse_faults(s27()) == collapse_faults(s27())

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_equivalent_faults_detected_together(self, data):
        """Any test sequence detects either all or none of a class."""
        circuit = data.draw(random_circuits(max_pi=3, max_ff=2, max_gates=7))
        classes = equivalence_classes(circuit)
        rng = random.Random(data.draw(st.integers(0, 1000)))
        vectors = [
            [rng.getrandbits(1) for _ in circuit.inputs] for _ in range(8)
        ]
        universe = list(classes)
        result = FaultSimulator(circuit, width=32).run(
            vectors, universe, stop_on_all_detected=False
        )
        by_class = {}
        for fault in universe:
            by_class.setdefault(classes[fault], set()).add(
                fault in result.detected
            )
        # Classes merged across a DFF boundary are exempt: flop
        # input≡output collapse is exact only once the fault effect has
        # latched, so under the unknown initial state the flop-output
        # fault can be observed one frame before the flop-input fault.
        dff_reps = set()
        for gate in circuit.gates.values():
            if gate.gtype is GateType.DFF:
                for stuck in (0, 1):
                    dff_reps.add(classes[Fault(gate.output, stuck)])
        for rep, outcomes in by_class.items():
            if rep in dff_reps:
                continue
            assert len(outcomes) == 1, f"class of {rep} split: {outcomes}"
