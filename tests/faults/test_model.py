"""Tests for the stuck-at fault model."""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import s27
from repro.faults.model import Fault, fault_site_known, full_fault_list


class TestFault:
    def test_stuck_must_be_binary(self):
        with pytest.raises(ValueError):
            Fault("a", 2)

    def test_str_stem(self):
        assert str(Fault("G5", 1)) == "G5 s-a-1"

    def test_str_branch(self):
        assert str(Fault("G5", 0, gate="G9", pin=1)) == "G5->G9.1 s-a-0"

    def test_is_branch(self):
        assert not Fault("a", 0).is_branch
        assert Fault("a", 0, gate="y", pin=0).is_branch

    def test_ordering_is_total_and_stable(self):
        faults = [Fault("b", 1), Fault("a", 0), Fault("a", 1),
                  Fault("a", 0, gate="y", pin=0)]
        assert sorted(faults) == sorted(faults[::-1])


class TestFullFaultList:
    def test_counts_on_s27(self):
        c = s27()
        faults = full_fault_list(c)
        # 17 nets x 2 stems + 2 x (sum of fanout sizes of multi-fanout nets)
        fanout = c.fanout
        branch_pins = sum(
            len(readers) for readers in fanout.values() if len(readers) > 1
        )
        assert len(faults) == 2 * 17 + 2 * branch_pins
        assert len(set(faults)) == len(faults)

    def test_no_branches_on_single_fanout_nets(self):
        c = Circuit("single")
        c.add_input("a")
        c.add_gate("y", GateType.NOT, ["a"])
        c.add_output("y")
        faults = full_fault_list(c)
        assert all(not f.is_branch for f in faults)
        assert len(faults) == 4

    def test_branches_on_fanout_stems(self):
        c = Circuit("fan")
        c.add_input("a")
        c.add_gate("y1", GateType.BUF, ["a"])
        c.add_gate("y2", GateType.NOT, ["a"])
        c.add_output("y1")
        c.add_output("y2")
        branches = [f for f in full_fault_list(c) if f.is_branch]
        assert {(f.gate, f.pin) for f in branches} == {("y1", 0), ("y2", 0)}
        assert len(branches) == 4

    def test_every_fault_site_is_known(self):
        c = s27()
        assert all(fault_site_known(c, f) for f in full_fault_list(c))

    def test_fault_site_known_rejects_garbage(self):
        c = s27()
        assert not fault_site_known(c, Fault("nope", 0))
        assert not fault_site_known(c, Fault("G0", 0, gate="nope", pin=0))
        assert not fault_site_known(c, Fault("G0", 0, gate="G14", pin=5))
        # pin exists but reads a different net
        assert not fault_site_known(c, Fault("G1", 0, gate="G14", pin=0))
