"""The fault-model registry, parse_fault, and fault_site_known edges.

Covers the model-qualified fault grammar (``parse_fault`` as the exact
inverse of ``str(Fault)``), the registry surface engines dispatch on,
transition enumeration/collapse, and the ``fault_site_known`` edge cases
around branch pins and primary-output stems.
"""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import s27
from repro.faults.collapse import collapse_faults
from repro.faults.model import (
    DEFAULT_FAULT_MODEL,
    Fault,
    FaultModelError,
    fault_model_names,
    fault_site_known,
    full_fault_list,
    parse_fault,
    resolve_fault_model,
)


class TestParseFault:
    def test_round_trip_every_fault_both_models(self):
        c = s27()
        for model in fault_model_names():
            for fault in full_fault_list(c, model):
                assert parse_fault(str(fault)) == fault

    def test_stem_forms(self):
        assert parse_fault("G5 s-a-1") == Fault("G5", 1)
        assert parse_fault("G5 s-t-r") == Fault("G5", 0, model="transition")
        assert parse_fault("G5 s-t-f") == Fault("G5", 1, model="transition")

    def test_branch_forms(self):
        assert parse_fault("G5->G9.1 s-a-0") == Fault(
            "G5", 0, gate="G9", pin=1
        )
        assert parse_fault("a->y.0 s-t-f") == Fault(
            "a", 1, gate="y", pin=0, model="transition"
        )

    def test_net_names_with_dots_and_spaces_trimmed(self):
        fault = Fault("u1.q", 0, gate="u2.y", pin=3)
        assert parse_fault(f"  {fault}  ") == fault

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "G5",
            "G5 s-a-2",
            "G5 s-x-0",
            " s-a-0",
            "G5->G9 s-a-0",  # branch without a pin
            "G5->G9.x s-a-0",  # non-numeric pin
            "G5->G9.-1 s-a-0",  # negative pin
            "G5->.0 s-a-0",  # empty gate
            "->G9.0 s-a-0",  # empty net
        ],
    )
    def test_rejections(self, text):
        with pytest.raises(ValueError):
            parse_fault(text)


class TestRegistry:
    def test_names(self):
        assert fault_model_names() == ["stuck_at", "transition"]

    def test_unknown_model_rejected(self):
        with pytest.raises(FaultModelError):
            resolve_fault_model("delay")
        with pytest.raises(FaultModelError):
            Fault("G1", 0, model="delay")

    def test_stuck_at_shape(self):
        m = resolve_fault_model(DEFAULT_FAULT_MODEL)
        assert m.min_window == 1
        assert m.inject_from_frame == 0
        assert m.untestable_proofs

    def test_transition_shape(self):
        m = resolve_fault_model("transition")
        assert m.min_window == 2
        assert m.inject_from_frame == 1
        assert not m.untestable_proofs
        assert not m.local_collapse

    def test_transition_universe_mirrors_stuck_at_sites(self):
        c = s27()
        sa = {(f.net, f.stuck, f.gate, f.pin) for f in full_fault_list(c)}
        tr = {
            (f.net, f.stuck, f.gate, f.pin)
            for f in full_fault_list(c, "transition")
        }
        assert sa == tr

    def test_transition_collapse_is_dedupe_only(self):
        c = s27()
        collapsed = collapse_faults(c, "transition")
        assert collapsed == sorted(set(full_fault_list(c, "transition")))
        # strictly larger than the equivalence-collapsed stuck-at list
        assert len(collapsed) > len(collapse_faults(c))

    def test_models_never_mix_in_one_universe(self):
        c = s27()
        for model in fault_model_names():
            assert all(
                f.model == model for f in collapse_faults(c, model)
            )


def po_stem_circuit() -> Circuit:
    """``a -> y`` where ``a``'s only reader is ``y`` but ``a`` is a PO.

    The PO observes the stem directly, so the branch ``a->y.0`` is a
    distinct (and valid) fault site despite fanout count 1.
    """
    c = Circuit("po_stem")
    c.add_input("a")
    c.add_gate("y", GateType.NOT, ["a"])
    c.add_output("a")
    c.add_output("y")
    return c


class TestFaultSiteKnown:
    def test_pin_beyond_gate_input_count(self):
        c = s27()
        gate = next(iter(c.gates.values()))
        net = gate.inputs[0]
        beyond = len(gate.inputs)
        fault = Fault(net, 0, gate=gate.output, pin=beyond)
        assert not fault_site_known(c, fault)
        assert not fault_site_known(
            c, Fault(net, 0, gate=gate.output, pin=beyond + 7)
        )

    def test_branch_into_gate_fed_by_po_net(self):
        c = po_stem_circuit()
        branch = Fault("a", 0, gate="y", pin=0)
        assert fault_site_known(c, branch)
        # and enumeration agrees: the PO is the second observation point
        assert branch in full_fault_list(c)
        tr = Fault("a", 0, gate="y", pin=0, model="transition")
        assert fault_site_known(c, tr)
        assert tr in full_fault_list(c, "transition")

    def test_stem_with_stray_pin_rejected(self):
        c = s27()
        assert fault_site_known(c, Fault("G0", 0))
        assert not fault_site_known(c, Fault("G0", 0, pin=0))

    def test_model_does_not_change_site_validity(self):
        c = s27()
        for fault in full_fault_list(c, "transition"):
            assert fault_site_known(c, fault)
