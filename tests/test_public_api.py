"""API-hygiene tests: every public name resolves and is documented."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.circuit",
    "repro.rtl",
    "repro.simulation",
    "repro.faults",
    "repro.atpg",
    "repro.ga",
    "repro.baselines",
    "repro.hybrid",
    "repro.campaign",
    "repro.circuits",
    "repro.analysis",
]


@pytest.mark.parametrize("package", PACKAGES)
class TestExports:
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_all_is_sorted_and_unique(self, package):
        module = importlib.import_module(package)
        names = [n for n in module.__all__ if n != "__version__"]
        assert len(names) == len(set(names)), f"{package}: duplicate exports"

    def test_public_callables_have_docstrings(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name, None)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"{package}: no docstring on {undocumented}"

    def test_module_has_docstring(self, package):
        module = importlib.import_module(package)
        assert (module.__doc__ or "").strip()


class TestVersion:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_public_class_methods_documented(self):
        """Spot-check: user-facing classes document their public methods."""
        from repro import FrameSimulator, HybridTestGenerator, PodemEngine

        for cls in (FrameSimulator, HybridTestGenerator, PodemEngine):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert (member.__doc__ or "").strip(), f"{cls.__name__}.{name}"
