"""Tests for the random / weighted-random baselines."""

import pytest

from repro.analysis import evaluate_test_set
from repro.baselines import (
    RandomAtpgParams,
    RandomTestGenerator,
    WeightedRandomTestGenerator,
)
from repro.circuits import s27
from repro.faults.collapse import collapse_faults


@pytest.mark.parametrize("gen_cls", [RandomTestGenerator,
                                     WeightedRandomTestGenerator])
class TestBaselines:
    def test_covers_most_of_s27(self, gen_cls):
        result = gen_cls(s27(), seed=1).run(RandomAtpgParams())
        assert len(result.detected) >= 0.85 * result.total_faults

    def test_claims_verified_by_resimulation(self, gen_cls):
        result = gen_cls(s27(), seed=1).run(RandomAtpgParams())
        report = evaluate_test_set(s27(), result.test_set, collapse_faults(s27()))
        assert set(report.detected) == set(result.detected)

    def test_reproducible(self, gen_cls):
        a = gen_cls(s27(), seed=7).run(RandomAtpgParams())
        b = gen_cls(s27(), seed=7).run(RandomAtpgParams())
        assert a.test_set == b.test_set

    def test_max_vectors_respected(self, gen_cls):
        params = RandomAtpgParams(block_len=8, max_vectors=16)
        result = gen_cls(s27(), seed=1).run(params)
        assert len(result.test_set) <= 24  # cap checked per block

    def test_time_limit(self, gen_cls):
        result = gen_cls(s27(), seed=1).run(RandomAtpgParams(), time_limit=0.0)
        assert result.test_set == []

    def test_stats_are_cumulative(self, gen_cls):
        result = gen_cls(s27(), seed=1).run(RandomAtpgParams())
        dets = [p.detected for p in result.passes]
        assert dets == sorted(dets)

    def test_never_claims_untestable(self, gen_cls):
        result = gen_cls(s27(), seed=1).run(RandomAtpgParams())
        assert result.untestable == []


class TestWeightedSpecifics:
    def test_weights_stay_in_bounds(self):
        gen = WeightedRandomTestGenerator(s27(), seed=2)
        gen.run(RandomAtpgParams(block_len=8))
        assert all(0.1 <= w <= 0.9 for w in gen.weights())

    def test_weights_adapt_away_from_uniform(self):
        gen = WeightedRandomTestGenerator(s27(), seed=2, candidates=4)
        gen.run(RandomAtpgParams(block_len=8))
        assert gen.weights() != [0.5] * 4
