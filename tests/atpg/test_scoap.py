"""Tests for the SCOAP-style testability measures."""

from repro.atpg.scoap import HARD, compute_testability
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import s27
from repro.simulation.compiled import compile_circuit


def measures(circuit):
    cc = compile_circuit(circuit)
    return cc, compute_testability(cc)


class TestControllability:
    def test_primary_inputs_cost_one(self):
        cc, m = measures(s27())
        for i in cc.pi:
            assert m.cc0[i] == 1 and m.cc1[i] == 1

    def test_ppi_cost_applied(self):
        cc, m = measures(s27())
        for i in cc.ff_out:
            assert m.cc0[i] == 50 and m.cc1[i] == 50

    def test_and_gate_formulas(self):
        c = Circuit("and")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.AND, ["a", "b"])
        c.add_output("y")
        cc, m = measures(c)
        y = cc.index["y"]
        assert m.cc0[y] == 2  # min(1, 1) + 1
        assert m.cc1[y] == 3  # 1 + 1 + 1

    def test_xor_parity_fold(self):
        c = Circuit("xor")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.XOR, ["a", "b"])
        c.add_output("y")
        cc, m = measures(c)
        y = cc.index["y"]
        assert m.cc0[y] == 3  # both 0 (1+1) or both 1 (1+1), +1
        assert m.cc1[y] == 3

    def test_constants(self):
        c = Circuit("const")
        c.add_input("a")
        c.add_gate("one", GateType.CONST1, [])
        c.add_gate("y", GateType.AND, ["a", "one"])
        c.add_output("y")
        cc, m = measures(c)
        one = cc.index["one"]
        assert m.cc1[one] == 0
        assert m.cc0[one] >= HARD

    def test_deeper_logic_costs_more(self):
        c = Circuit("chainy")
        c.add_input("a")
        prev = "a"
        costs = []
        cc0_prev = None
        for i in range(4):
            c.add_gate(f"n{i}", GateType.BUF, [prev])
            prev = f"n{i}"
        c.add_output(prev)
        cc, m = measures(c)
        chain = [cc.index[f"n{i}"] for i in range(4)]
        assert m.cc1[chain[0]] < m.cc1[chain[1]] < m.cc1[chain[3]]


class TestObservability:
    def test_po_cost_zero(self):
        cc, m = measures(s27())
        for i in cc.po:
            assert m.co[i] == 0

    def test_ppo_cost(self):
        c = Circuit("ppo")
        c.add_input("a")
        c.add_gate("q", GateType.DFF, ["a"])
        c.add_gate("y", GateType.BUF, ["q"])
        c.add_output("y")
        cc, m = measures(c)
        assert m.co[cc.index["a"]] == 30  # observed only through the D pin

    def test_side_input_cost_added(self):
        c = Circuit("side")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.AND, ["a", "b"])
        c.add_output("y")
        cc, m = measures(c)
        # observing a requires setting b=1 (cc1[b]=1), plus depth 1
        assert m.co[cc.index["a"]] == 2

    def test_every_s27_net_is_observable(self):
        cc, m = measures(s27())
        assert all(m.co[i] < HARD for i in range(cc.num_nets))

    def test_cc_accessor(self):
        cc, m = measures(s27())
        i = cc.pi[0]
        assert m.cc(i, 0) == m.cc0[i]
        assert m.cc(i, 1) == m.cc1[i]


class TestHandComputedCircuit:
    """Pin every CC0/CC1/CO value of one crafted circuit by hand.

    The circuit mixes reconvergence, an inverter, and a flip-flop so all
    three measures exercise their interesting terms::

        g1 = AND(a, b)        # feeds both g2 and the flip-flop
        g2 = OR(g1, c)
        y  = NOT(g2)          # primary output
        d  = DFF(g1)          # d is a PPI, g1 is a PPO
        z  = AND(d, c)        # primary output
    """

    def build(self):
        c = Circuit("crafted")
        for name in ("a", "b", "c"):
            c.add_input(name)
        c.add_gate("g1", GateType.AND, ["a", "b"])
        c.add_gate("g2", GateType.OR, ["g1", "c"])
        c.add_gate("y", GateType.NOT, ["g2"])
        c.add_gate("d", GateType.DFF, ["g1"])
        c.add_gate("z", GateType.AND, ["d", "c"])
        c.add_output("y")
        c.add_output("z")
        return measures(c)

    def test_controllability_pins(self):
        cc, m = self.build()
        idx = cc.index
        for name in ("a", "b", "c"):
            assert m.cc0[idx[name]] == 1 and m.cc1[idx[name]] == 1
        # flip-flop output: flat ppi_cost both ways
        assert (m.cc0[idx["d"]], m.cc1[idx["d"]]) == (50, 50)
        # g1 = AND(a, b): cc0 = min(1,1)+1, cc1 = 1+1+1
        assert (m.cc0[idx["g1"]], m.cc1[idx["g1"]]) == (2, 3)
        # g2 = OR(g1, c): cc0 = 2+1+1, cc1 = min(3,1)+1
        assert (m.cc0[idx["g2"]], m.cc1[idx["g2"]]) == (4, 2)
        # y = NOT(g2): swaps its input's costs, +1 depth
        assert (m.cc0[idx["y"]], m.cc1[idx["y"]]) == (3, 5)
        # z = AND(d, c): cc0 = min(50,1)+1, cc1 = 50+1+1
        assert (m.cc0[idx["z"]], m.cc1[idx["z"]]) == (2, 52)

    def test_observability_pins(self):
        cc, m = self.build()
        idx = cc.index
        assert m.co[idx["y"]] == 0 and m.co[idx["z"]] == 0
        # g2 observed through the inverter y
        assert m.co[idx["g2"]] == 1
        # g1: min(ppo_cost=30 into the DFF,
        #         co(g2)+1+cc0(c)=1+1+1 through the OR)
        assert m.co[idx["g1"]] == 3
        # c: min(through g2 with g1=0: 1+1+2,
        #        through z with d=1: 0+1+50)
        assert m.co[idx["c"]] == 4
        # d: through z with c=1
        assert m.co[idx["d"]] == 2
        # a and b: through g1 with the sibling input held at 1
        assert m.co[idx["a"]] == 5
        assert m.co[idx["b"]] == 5
