"""Tests for the nine-valued algebra helpers."""

from hypothesis import given, strategies as st

from repro.atpg.values import (
    D,
    DBAR,
    MASK2,
    ONE,
    XX,
    ZERO,
    faulty_of,
    good_of,
    has_x,
    is_d,
    is_known,
    make9,
    show9,
)
from repro.simulation.encoding import X

SCALARS = [0, 1, X]


class TestConstants:
    def test_named_values(self):
        assert good_of(ZERO) == 0 and faulty_of(ZERO) == 0
        assert good_of(ONE) == 1 and faulty_of(ONE) == 1
        assert good_of(D) == 1 and faulty_of(D) == 0
        assert good_of(DBAR) == 0 and faulty_of(DBAR) == 1
        assert good_of(XX) == X and faulty_of(XX) == X

    def test_d_detection(self):
        assert is_d(D) and is_d(DBAR)
        assert not is_d(ZERO) and not is_d(ONE) and not is_d(XX)
        assert not is_d(make9(1, X))

    def test_known_and_x(self):
        assert is_known(D) and is_known(ZERO)
        assert not is_known(make9(1, X))
        assert has_x(XX) and has_x(make9(0, X))
        assert not has_x(D)


class TestRoundtrip:
    @given(st.sampled_from(SCALARS), st.sampled_from(SCALARS))
    def test_make9_components(self, g, f):
        v = make9(g, f)
        assert good_of(v) == g
        assert faulty_of(v) == f

    @given(st.sampled_from(SCALARS), st.sampled_from(SCALARS))
    def test_values_fit_mask(self, g, f):
        p1, p0 = make9(g, f)
        assert p1 | p0 <= MASK2


class TestShow:
    def test_names(self):
        assert show9(ZERO) == "0"
        assert show9(ONE) == "1"
        assert show9(D) == "D"
        assert show9(DBAR) == "D'"
        assert show9(XX) == "X"
        assert show9(make9(1, X)) == "1/x"
