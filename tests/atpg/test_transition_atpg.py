"""Transition-fault ATPG end to end: detections, grading, knowledge walls.

The engine's unrolled view of a transition fault is an optimistic
approximation, so every DETECTED here has survived true-semantics
verification by fault simulation — which is what these tests lean on:
the hybrid driver must reach nonzero launch/capture detections on real
ISCAS89 circuits, the tests it emits must grade identically on all three
backends, and knowledge mined under stuck-at must never leak into a
transition run.
"""

import pytest

from repro.atpg.context import AtpgContext
from repro.circuits import iscas89, s27
from repro.faults.collapse import collapse_faults
from repro.hybrid.driver import HybridTestGenerator
from repro.hybrid.passes import gahitec_schedule
from repro.knowledge import KnowledgeError, StateKnowledge, save_knowledge
from repro.simulation.fault_sim import FaultSimulator

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

GRADING_BACKENDS = ["event", "codegen"] + (["numpy"] if HAVE_NUMPY else [])


def transition_run(circuit, fault_count=24, seed=1):
    faults = collapse_faults(circuit, "transition")[:fault_count]
    driver = HybridTestGenerator(
        circuit,
        seed=seed,
        faults=faults,
        fault_model="transition",
    )
    schedule = gahitec_schedule(x=8, num_passes=2, time_scale=None)
    return faults, driver.run(schedule)


class TestTransitionCampaigns:
    @pytest.mark.parametrize("name", ["s298", "s344"])
    def test_nonzero_detections_with_identical_grades(self, name):
        circuit = iscas89(name)
        faults, result = transition_run(circuit)
        assert result.detected, f"no transition detections on {name}"
        assert all(f.model == "transition" for f in result.detected)
        # the emitted tests grade bit-identically on every backend
        grades = []
        for backend in GRADING_BACKENDS:
            sim = FaultSimulator(circuit, width=8, backend=backend)
            outcome = sim.run(result.test_set, faults)
            grades.append((outcome.detected, outcome.good_state))
        assert all(g == grades[0] for g in grades[1:])
        # every driver-claimed detection is a true launch/capture detect
        assert set(result.detected) <= set(grades[0][0])

    def test_never_claims_untestable(self):
        # the unrolled window is an approximation under transition:
        # exhaustion must report ABORTED, not UNTESTABLE
        circuit = s27()
        faults = collapse_faults(circuit, "transition")
        driver = HybridTestGenerator(
            circuit, seed=0, faults=faults, fault_model="transition"
        )
        result = driver.run(gahitec_schedule(x=8, num_passes=2, time_scale=None))
        assert not result.untestable
        assert result.detected


class TestKnowledgePartitioning:
    def test_fingerprints_are_model_partitioned(self):
        circuit = s27()
        sa = AtpgContext(circuit)
        tr = AtpgContext(circuit, fault_model="transition")
        assert sa.knowledge_fingerprint == "unconstrained"
        assert tr.knowledge_fingerprint == "unconstrained|model[transition]"

    def test_stuck_at_store_rejected_by_transition_run(self):
        circuit = s27()
        store = StateKnowledge(circuit=circuit.name,
                               fingerprint="unconstrained")
        # fine under the default model...
        HybridTestGenerator(circuit, knowledge=store)
        # ...but a transition run must refuse it outright
        with pytest.raises(KnowledgeError):
            HybridTestGenerator(
                circuit, knowledge=store, fault_model="transition"
            )

    def test_stuck_at_sidecar_invisible_to_transition_load(self, tmp_path):
        from repro.knowledge import load_store_for, model_fingerprint

        circuit = s27()
        store = StateKnowledge(circuit=circuit.name,
                               fingerprint="unconstrained")
        store.record_justified({"G5": 1}, [[0, 0, 0, 0]])
        path = str(tmp_path / "knowledge.json")
        save_knowledge({circuit.name: store}, path)
        assert load_store_for(path, circuit.name, "unconstrained") is not None
        fingerprint = model_fingerprint("unconstrained", "transition")
        assert load_store_for(path, circuit.name, fingerprint) is None

    def test_transition_run_mines_model_tagged_facts(self):
        circuit = s27()
        driver = HybridTestGenerator(
            circuit,
            seed=0,
            faults=collapse_faults(circuit, "transition")[:8],
            fault_model="transition",
        )
        driver.run(gahitec_schedule(x=8, num_passes=1, time_scale=None))
        assert driver.knowledge is not None
        assert (
            driver.knowledge.fingerprint
            == "unconstrained|model[transition]"
        )
