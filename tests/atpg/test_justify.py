"""Tests for deterministic reverse-time state justification."""

from repro.atpg.justify import JustifyStatus, justify_state
from repro.atpg.podem import Limits
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import counter, gray_fsm, s27, two_stage_pipeline
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import X, pack_const, unpack
from repro.simulation.logic_sim import FrameSimulator


def verify_justification(circuit, required, vectors):
    """Apply the vectors from all-X and check the required state holds."""
    sim = FrameSimulator(circuit, width=1)
    for vec in vectors:
        sim.step([pack_const(0 if v == X else v, 1) for v in vec])
    state = dict(zip(circuit.flops, sim.get_state()))
    for net, want in required.items():
        assert unpack(state[net], 1)[0] == want, f"{net} != {want}"


class TestJustifyState:
    def test_empty_requirement_is_trivial(self):
        cc = compile_circuit(s27())
        res = justify_state(cc, {}, max_depth=4, limits=Limits())
        assert res.success and res.vectors == []

    def test_single_flop_one_frame(self):
        circuit = two_stage_pipeline()
        cc = compile_circuit(circuit)
        res = justify_state(cc, {"f1": 1}, max_depth=4, limits=Limits())
        assert res.success
        assert len(res.vectors) == 1
        verify_justification(circuit, {"f1": 1}, res.vectors)

    def test_deep_flop_needs_more_frames(self):
        circuit = two_stage_pipeline()
        cc = compile_circuit(circuit)
        res = justify_state(cc, {"f2": 1}, max_depth=4, limits=Limits())
        assert res.success
        assert len(res.vectors) == 2
        verify_justification(circuit, {"f2": 1}, res.vectors)

    def test_depth_bound_reported(self):
        circuit = two_stage_pipeline()
        cc = compile_circuit(circuit)
        res = justify_state(cc, {"f2": 1}, max_depth=1, limits=Limits())
        assert res.status is JustifyStatus.BOUNDED

    def test_counter_state_justification(self):
        """Reaching count=3 on a 3-bit counter takes 3 enabled steps."""
        circuit = counter(3)
        cc = compile_circuit(circuit)
        required = {"q0": 1, "q1": 1, "q2": 0}
        res = justify_state(cc, required, max_depth=10, limits=Limits(50_000))
        assert res.success
        verify_justification(circuit, required, res.vectors)

    def test_gray_fsm_state(self):
        circuit = gray_fsm()
        cc = compile_circuit(circuit)
        required = {"s0": 1, "s1": 1}
        res = justify_state(cc, required, max_depth=8, limits=Limits(10_000))
        assert res.success
        verify_justification(circuit, required, res.vectors)

    def test_unreachable_state_exhausts(self):
        c = Circuit("stuck_pair")
        c.add_input("a")
        c.add_gate("q1", GateType.DFF, ["a"])
        c.add_gate("na", GateType.NOT, ["a"])
        c.add_gate("q2", GateType.DFF, ["na"])
        c.add_gate("y", GateType.XOR, ["q1", "q2"])
        c.add_output("y")
        cc = compile_circuit(c)
        # q1 and q2 always latch opposite values: (1, 1) is unreachable
        res = justify_state(cc, {"q1": 1, "q2": 1}, max_depth=6,
                            limits=Limits(50_000))
        assert res.status is JustifyStatus.EXHAUSTED

    def test_limit_reported(self):
        circuit = counter(4)
        cc = compile_circuit(circuit)
        res = justify_state(
            cc, {"q3": 1}, max_depth=20, limits=Limits(max_backtracks=0)
        )
        assert res.status in (JustifyStatus.LIMIT, JustifyStatus.BOUNDED)

    def test_all_s27_single_flop_states_justifiable(self):
        circuit = s27()
        cc = compile_circuit(circuit)
        for ff in circuit.flops:
            for value in (0, 1):
                res = justify_state(
                    cc, {ff: value}, max_depth=8, limits=Limits(50_000)
                )
                assert res.success, f"{ff}={value} should be justifiable"
                verify_justification(circuit, {ff: value}, res.vectors)
