"""AtpgContext: shared per-circuit state, built once, coerced anywhere."""

import pytest

from repro.atpg.constraints import InputConstraints
from repro.atpg.context import AtpgContext
from repro.atpg.hitec import SequentialTestGenerator
from repro.circuits import s27, two_stage_pipeline
from repro.ga.justification import GAStateJustifier
from repro.simulation.compiled import CompiledCircuit, compile_circuit


class TestConstruction:
    def test_compiles_circuit_once(self):
        ctx = AtpgContext(s27())
        assert isinstance(ctx.cc, CompiledCircuit)
        assert ctx.circuit.name == "s27"

    def test_accepts_precompiled_circuit(self):
        cc = compile_circuit(s27())
        ctx = AtpgContext(cc)
        assert ctx.cc is cc

    def test_ensure_passes_context_through(self):
        ctx = AtpgContext(s27())
        assert AtpgContext.ensure(ctx) is ctx
        # None overrides are the legacy defaults: harmless
        assert AtpgContext.ensure(ctx, testability=None) is ctx

    def test_ensure_rejects_real_overrides_on_a_context(self):
        ctx = AtpgContext(s27())
        with pytest.raises(ValueError, match="cannot override"):
            AtpgContext.ensure(ctx, seed=7)


class TestSharedArtifacts:
    def test_testability_and_faults_are_cached(self):
        ctx = AtpgContext(s27())
        assert ctx.testability is ctx.testability
        first = ctx.faults
        assert first == ctx.faults
        first.clear()  # callers get copies; the cache must survive
        assert ctx.faults

    def test_fault_simulators_cached_by_shape(self):
        ctx = AtpgContext(s27())
        assert ctx.fault_simulator(64, 1) is ctx.fault_simulator(64, 1)
        assert ctx.fault_simulator(64, 1) is not ctx.fault_simulator(32, 1)
        assert ctx.verifier() is ctx.fault_simulator(1, 1)

    def test_rng_streams_are_deterministic_and_distinct(self):
        a, b = AtpgContext(s27(), seed=5), AtpgContext(s27(), seed=5)
        assert a.rng("ga").random() == b.rng("ga").random()
        assert a.rng("ga").random() != a.rng("hitec").random()
        assert (
            AtpgContext(s27(), seed=6).rng("ga").random()
            != b.rng("ga").random()
        )


class TestConstraintsAndKnowledge:
    def test_trivial_constraints_normalise_away(self):
        ctx = AtpgContext(s27())
        assert ctx.active_constraints is None
        assert ctx.knowledge_fingerprint == "unconstrained"
        ctx2 = AtpgContext(s27(), constraints=InputConstraints())
        assert ctx2.active_constraints is None

    def test_make_knowledge_matches_environment(self):
        pinned = InputConstraints(fixed={"G0": 0})
        ctx = AtpgContext(two_stage_pipeline(), constraints=pinned)
        store = ctx.make_knowledge()
        assert ctx.knowledge is store
        assert store.circuit == "pipe2"
        assert store.fingerprint == ctx.knowledge_fingerprint != "unconstrained"


class TestEngineSharing:
    def test_engines_built_on_one_context_share_state(self):
        ctx = AtpgContext(s27(), seed=3)
        seqgen = SequentialTestGenerator(ctx)
        ga = GAStateJustifier(ctx)
        assert seqgen.ctx is ctx
        assert ga.ctx is ctx
        assert seqgen.meas is ctx.testability

    def test_legacy_circuit_argument_still_works(self):
        seqgen = SequentialTestGenerator(s27())
        assert isinstance(seqgen.ctx, AtpgContext)
        assert seqgen.ctx.circuit.name == "s27"
