"""Regression tests for soundness bugs found by property-based fuzzing.

Each test pins the minimal counterexample that exposed a real defect, so
the fix can never silently regress.
"""

import pytest

from repro.atpg.hitec import SequentialTestGenerator
from repro.atpg.hitec import TestGenStatus as GenStatus
from repro.atpg.justify import JustifyStatus, justify_state
from repro.atpg.podem import Limits, PodemEngine
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import X
from repro.simulation.fault_sim import FaultSimulator


def and_loop_circuit() -> Circuit:
    """g0 = AND(ff0, ff1); ff0 = DFF(g0); ff1 = DFF(pi0); PO = g0.

    ``ff0 = 1`` is unreachable from power-up X (the AND loop can never
    become a definite 1), but ``ff0 = 0`` is reachable *only* through the
    minimal requirement {ff1 = 0}: requiring {ff0 = 0} of the previous
    frame loops, and {ff0 = 1, ff1 = 0} contains the unreachable bit.
    """
    c = Circuit("and_loop")
    c.add_input("pi0")
    c.add_gate("g0", GateType.AND, ["ff0", "ff1"])
    c.add_gate("ff0", GateType.DFF, ["g0"])
    c.add_gate("ff1", GateType.DFF, ["pi0"])
    c.add_output("g0")
    return c


class TestRequirementMinimisation:
    """PODEM must not over-constrain the frame-0 state (bug #2)."""

    def test_justify_through_minimal_requirement(self):
        cc = compile_circuit(and_loop_circuit())
        res = justify_state(cc, {"ff0": 0}, max_depth=8, limits=Limits(5000))
        assert res.status is JustifyStatus.JUSTIFIED

    def test_faults_on_the_loop_are_detected(self):
        circuit = and_loop_circuit()
        cc = compile_circuit(circuit)
        gen = SequentialTestGenerator(cc, max_frames=6)
        sim = FaultSimulator(cc)

        def justifier(required):
            return justify_state(cc, required, 8, Limits(5000))

        for fault in (Fault("g0", 1), Fault("ff0", 1)):
            res = gen.generate(fault, justifier, Limits(5000))
            assert res.status is GenStatus.DETECTED, str(fault)
            vectors = [[0 if v == X else v for v in vec] for vec in res.sequence]
            assert fault in sim.run(vectors, [fault]).detected

    def test_unreachable_state_still_proven(self):
        cc = compile_circuit(and_loop_circuit())
        res = justify_state(cc, {"ff0": 1}, max_depth=8, limits=Limits(20000))
        assert res.status is JustifyStatus.EXHAUSTED

    def test_minimised_solution_requirement(self):
        cc = compile_circuit(and_loop_circuit())
        engine = PodemEngine(cc, targets={"ff0": 0})
        requirements = [
            sol.required_state for sol in engine.solutions(Limits(5000))
        ]
        assert {"ff1": 0} in requirements  # the minimal option must appear


class TestWindowEdgeSoundness:
    """An X-path dying at the window edge is not untestability (bug #1)."""

    def test_pi_fault_needing_two_frames(self):
        """s27's G2 s-a-0 propagates only through a flip-flop."""
        from repro.circuits import s27

        cc = compile_circuit(s27())
        engine1 = PodemEngine(cc, fault=Fault("G2", 0), num_frames=1)
        assert engine1.run(Limits(10_000)) is None
        assert engine1.window_hit, "the 1-frame failure must blame the window"
        engine2 = PodemEngine(cc, fault=Fault("G2", 0), num_frames=2)
        assert engine2.run(Limits(10_000)) is not None


class TestObservePpo:
    """Scan mode observes captured state (bug #3: X-path ignored PPOs)."""

    def _capture_only(self) -> Circuit:
        c = Circuit("capture_only")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("g", GateType.AND, ["a", "b"])
        c.add_gate("q", GateType.DFF, ["g"])
        c.add_gate("y", GateType.BUF, ["q"])
        c.add_output("y")
        return c

    def test_fault_on_d_cone_detectable_with_ppo(self):
        cc = compile_circuit(self._capture_only())
        fault = Fault("g", 0)
        blind = PodemEngine(cc, fault=fault, num_frames=1)
        assert blind.run(Limits(1000)) is None  # PO is one frame too late
        seeing = PodemEngine(cc, fault=fault, num_frames=1, observe_ppo=True)
        sol = seeing.run(Limits(1000))
        assert sol is not None
        assert sol.vectors[0] == [1, 1]
