"""Edge-case regressions for reverse-time justification.

The precision of :class:`~repro.atpg.justify.JustifyStatus` is load
bearing twice over: UNTESTABLE claims in the sequential engine trust
EXHAUSTED, and the knowledge store records proofs based on which failure
bit bit.  These tests pin the distinctions down:

* frame-limit exhaustion (BOUNDED) versus proven-unjustifiable
  (EXHAUSTED) — a state unreachable at *any* depth must not be reported
  as merely depth-bounded, and vice versa;
* enumeration truncation (``solutions_per_step``) is a budget effect —
  it may yield BOUNDED but must never be recorded as a depth proof;
* InputConstraints interaction — constraints can turn a justifiable
  state unjustifiable, and facts proven under constraints carry a
  different knowledge fingerprint.
"""

from repro.atpg.constraints import InputConstraints
from repro.atpg.justify import JustifyStatus, justify_state
from repro.atpg.podem import Limits
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import counter, two_stage_pipeline
from repro.knowledge import StateKnowledge, constraints_fingerprint, state_key
from repro.simulation.compiled import compile_circuit

from .test_justify import verify_justification


def stuck_pair() -> Circuit:
    """q1 and q2 always latch opposite values: (1, 1) is unreachable."""
    c = Circuit("stuck_pair")
    c.add_input("a")
    c.add_gate("q1", GateType.DFF, ["a"])
    c.add_gate("na", GateType.NOT, ["a"])
    c.add_gate("q2", GateType.DFF, ["na"])
    c.add_gate("y", GateType.XOR, ["q1", "q2"])
    c.add_output("y")
    return c


class TestExhaustedVersusBounded:
    def test_unreachable_state_is_exhausted_even_at_depth_one(self):
        """An absolute contradiction never blames the frame bound."""
        cc = compile_circuit(stuck_pair())
        for depth in (1, 3, 6):
            res = justify_state(cc, {"q1": 1, "q2": 1}, max_depth=depth,
                                limits=Limits(50_000))
            assert res.status is JustifyStatus.EXHAUSTED, depth

    def test_deep_state_at_shallow_bound_is_bounded_not_exhausted(self):
        """f2=1 needs two frames; depth 1 is a bound, not a proof."""
        cc = compile_circuit(two_stage_pipeline())
        res = justify_state(cc, {"f2": 1}, max_depth=1, limits=Limits())
        assert res.status is JustifyStatus.BOUNDED

    def test_backtrack_budget_is_limit_not_exhausted(self):
        cc = compile_circuit(counter(4))
        res = justify_state(cc, {"q3": 1}, max_depth=20,
                            limits=Limits(max_backtracks=0))
        assert res.status is not JustifyStatus.EXHAUSTED
        assert res.status is not JustifyStatus.JUSTIFIED


class TestKnowledgeRecordingSoundness:
    def _store(self, circuit: Circuit) -> StateKnowledge:
        return StateKnowledge(circuit=circuit.name)

    def test_exhausted_records_absolute_proof(self):
        circuit = stuck_pair()
        cc = compile_circuit(circuit)
        know = self._store(circuit)
        res = justify_state(cc, {"q1": 1, "q2": 1}, max_depth=6,
                            limits=Limits(50_000), knowledge=know)
        assert res.status is JustifyStatus.EXHAUSTED
        assert know.unjustifiable[state_key({"q1": 1, "q2": 1})] is None

    def test_exhausted_hit_short_circuits_second_query(self):
        circuit = stuck_pair()
        cc = compile_circuit(circuit)
        know = self._store(circuit)
        justify_state(cc, {"q1": 1, "q2": 1}, max_depth=6,
                      limits=Limits(50_000), knowledge=know)
        hits0 = know.stats["unjustifiable_hits"]
        # a *stricter* requirement (superset) is answered by subsumption
        res = justify_state(cc, {"q1": 1, "q2": 1}, max_depth=2,
                            limits=Limits(0), knowledge=know)
        assert res.status is JustifyStatus.EXHAUSTED
        assert know.stats["unjustifiable_hits"] == hits0 + 1

    def test_depth_bound_records_depth_limited_proof(self):
        circuit = two_stage_pipeline()
        cc = compile_circuit(circuit)
        know = self._store(circuit)
        res = justify_state(cc, {"f2": 1}, max_depth=1, limits=Limits(),
                            knowledge=know)
        assert res.status is JustifyStatus.BOUNDED
        assert know.unjustifiable[state_key({"f2": 1})] == 1
        # the depth-1 proof answers depth-1 queries but NOT deeper ones:
        # at depth 4 the search must run, succeed, and flip the fact
        res = justify_state(cc, {"f2": 1}, max_depth=4, limits=Limits(),
                            knowledge=know)
        assert res.success
        verify_justification(circuit, {"f2": 1}, res.vectors)
        assert state_key({"f2": 1}) not in know.unjustifiable
        assert know.lookup_justified({"f2": 1}) is not None

    def test_truncation_is_never_recorded_as_a_proof(self):
        """solutions_per_step cuts enumeration; that proves nothing."""
        circuit = counter(3)
        cc = compile_circuit(circuit)
        know = self._store(circuit)
        # q2=1 needs 4 enabled steps; depth 2 with a single alternative
        # per step fails through truncation + depth together
        res = justify_state(cc, {"q2": 1}, max_depth=2,
                            limits=Limits(50_000), solutions_per_step=1,
                            knowledge=know)
        assert res.status is JustifyStatus.BOUNDED
        assert state_key({"q2": 1}) not in know.unjustifiable

    def test_budget_abort_is_never_recorded(self):
        circuit = counter(4)
        cc = compile_circuit(circuit)
        know = self._store(circuit)
        justify_state(cc, {"q3": 1}, max_depth=20,
                      limits=Limits(max_backtracks=0), knowledge=know)
        assert state_key({"q3": 1}) not in know.unjustifiable

    def test_success_records_and_replays(self):
        circuit = two_stage_pipeline()
        cc = compile_circuit(circuit)
        know = self._store(circuit)
        first = justify_state(cc, {"f2": 1}, max_depth=4, limits=Limits(),
                              knowledge=know)
        assert first.success
        # second query answered from knowledge, even with a zero budget
        again = justify_state(cc, {"f2": 1}, max_depth=4,
                              limits=Limits(max_backtracks=0),
                              knowledge=know)
        assert again.success
        assert again.vectors == first.vectors
        verify_justification(circuit, {"f2": 1}, again.vectors)


class TestConstraintsInteraction:
    def test_fixed_pin_makes_state_unjustifiable(self):
        """pipe2 f1=1 needs a=1; fixing a=0 forbids it at any depth."""
        circuit = two_stage_pipeline()
        cc = compile_circuit(circuit)
        free = justify_state(cc, {"f1": 1}, max_depth=4, limits=Limits())
        assert free.success
        pinned = InputConstraints(fixed={"a": 0})
        res = justify_state(cc, {"f1": 1}, max_depth=4, limits=Limits(),
                            constraints=pinned)
        assert res.status is JustifyStatus.EXHAUSTED

    def test_constrained_proof_lands_in_the_right_fingerprint(self):
        """Facts proven under constraints must not leak to unconstrained."""
        pinned = InputConstraints(fixed={"a": 0})
        assert constraints_fingerprint(None) == "unconstrained"
        assert constraints_fingerprint(pinned) != "unconstrained"
        assert (constraints_fingerprint(pinned)
                == constraints_fingerprint(InputConstraints(fixed={"a": 0})))
        assert (constraints_fingerprint(InputConstraints(fixed={"a": 1}))
                != constraints_fingerprint(pinned))

    def test_hold_pin_still_justifiable_when_compatible(self):
        """Holding 'a' constant still reaches f1=1, f2=1 (a=1 held)."""
        circuit = two_stage_pipeline()
        cc = compile_circuit(circuit)
        held = InputConstraints(hold=frozenset({"a"}))
        res = justify_state(cc, {"f1": 1, "f2": 1}, max_depth=4,
                            limits=Limits(), constraints=held)
        assert res.success
        column = {vec[0] for vec in res.vectors if vec[0] in (0, 1)}
        assert len(column) <= 1  # the held pin never changes value
        verify_justification(circuit, {"f1": 1, "f2": 1}, res.vectors)
