"""Tests for the scan-based test generator."""

import pytest

from repro.analysis import evaluate_test_set
from repro.atpg.scan_atpg import ScanAtpgParams, ScanTestGenerator
from repro.circuits import gray_fsm, s27, two_stage_pipeline
from repro.faults.collapse import collapse_faults


class TestScanFlow:
    @pytest.fixture(scope="class")
    def result(self):
        gen = ScanTestGenerator(s27())
        return gen, gen.run(ScanAtpgParams())

    def test_full_classification_on_s27(self, result):
        gen, res = result
        stats = res.passes[-1]
        assert stats.detected + stats.untestable == res.total_faults
        assert stats.aborted == 0

    def test_claims_verified_by_resimulation(self, result):
        gen, res = result
        report = evaluate_test_set(
            gen.scanned, res.test_set, collapse_faults(gen.scanned)
        )
        assert set(report.detected) == set(res.detected)

    def test_tests_follow_the_scan_protocol(self, result):
        """Every block is load(n) + capture + unload(n) cycles."""
        gen, res = result
        expected = 2 * gen.chain.length + 1
        boundaries = res.blocks + [len(res.test_set)]
        for start, end in zip(boundaries, boundaries[1:]):
            assert (end - start) % expected == 0

    def test_scan_enable_driven_during_shift(self, result):
        gen, res = result
        se_pos = gen.scanned.inputs.index("scan_enable")
        first_block = res.test_set[: gen.chain.length]
        assert all(vec[se_pos] == 1 for vec in first_block)

    def test_generator_label(self, result):
        _, res = result
        assert res.generator == "SCAN"


class TestScanBeatsSequentialHardCases:
    def test_gray_fsm_reset_fault_becomes_classifiable(self):
        """rst s-a-0 is undetectable sequentially (X-lock); scan fixes it."""
        gen = ScanTestGenerator(gray_fsm())
        res = gen.run(ScanAtpgParams())
        from repro.faults.model import Fault

        assert Fault("rst", 0) in res.detected

    def test_pipeline(self):
        gen = ScanTestGenerator(two_stage_pipeline())
        res = gen.run(ScanAtpgParams())
        stats = res.passes[-1]
        assert stats.detected + stats.untestable == res.total_faults

    def test_time_limit_stops_early(self):
        gen = ScanTestGenerator(s27())
        res = gen.run(ScanAtpgParams(time_limit=0.0))
        assert res.test_set == []
