"""Tests for the unrolled time-frame model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.unrolled import UnrolledModel
from repro.atpg.values import D, DBAR, XX, good_of, is_d, make9
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import s27, two_stage_pipeline
from repro.faults.model import Fault
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import X

from ..conftest import random_circuits


class TestBasics:
    def test_initial_all_x(self):
        cc = compile_circuit(s27())
        model = UnrolledModel(cc, None, num_frames=2)
        for frame in range(2):
            for i in cc.pi:
                assert model.good(frame, i) == X

    def test_leaves(self):
        cc = compile_circuit(s27())
        model = UnrolledModel(cc, None, num_frames=2)
        pi = cc.pi[0]
        ff = cc.ff_out[0]
        assert model.is_leaf(0, pi) and model.is_leaf(1, pi)
        assert model.is_leaf(0, ff)
        assert not model.is_leaf(1, ff)  # frame-1 state comes from frame 0

    def test_assign_propagates(self):
        cc = compile_circuit(s27())
        model = UnrolledModel(cc, None, num_frames=1)
        # G14 = NOT(G0)
        model.assign(0, cc.index["G0"], 1)
        assert model.good(0, cc.index["G14"]) == 0

    def test_assign_non_leaf_rejected(self):
        cc = compile_circuit(s27())
        model = UnrolledModel(cc, None, num_frames=1)
        with pytest.raises(ValueError):
            model.assign(0, cc.index["G14"], 1)

    def test_frame_boundary_latching(self):
        cc = compile_circuit(two_stage_pipeline())
        model = UnrolledModel(cc, None, num_frames=3)
        model.assign(0, cc.index["a"], 1)
        # f1's frame-1 output equals a's frame-0 value, f2 lags one more
        assert model.good(1, cc.index["f1"]) == 1
        assert model.good(2, cc.index["f2"]) == 1
        assert model.good(1, cc.index["f2"]) == X


class TestUndo:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_unassign_restores_exact_state(self, data):
        circuit = data.draw(random_circuits(max_pi=3, max_ff=2, max_gates=8))
        cc = compile_circuit(circuit)
        model = UnrolledModel(cc, None, num_frames=2)
        snapshot = ([list(f) for f in model.v1], [list(f) for f in model.v0])
        leaves = [(f, i) for f in range(2) for i in cc.pi]
        leaves += [(0, i) for i in cc.ff_out]
        n = data.draw(st.integers(1, min(4, len(leaves))))
        undos = []
        for k in range(n):
            frame, idx = leaves[data.draw(st.integers(0, len(leaves) - 1))]
            if model.good(frame, idx) != X:
                continue
            undos.append(model.assign(frame, idx, data.draw(st.integers(0, 1))))
        for undo in reversed(undos):
            model.unassign(undo)
        assert model.v1 == snapshot[0]
        assert model.v0 == snapshot[1]


class TestFaultInjection:
    def test_stem_fault_shows_d_when_excited(self):
        cc = compile_circuit(s27())
        model = UnrolledModel(cc, Fault("G0", 0), num_frames=1)
        assert not model.fault_excited(0)
        model.assign(0, cc.index["G0"], 1)
        assert model.fault_excited(0)
        assert is_d(model.value(0, cc.index["G0"]))

    def test_excitation_impossible_when_site_fixed(self):
        cc = compile_circuit(s27())
        model = UnrolledModel(cc, Fault("G0", 1), num_frames=1)
        model.assign(0, cc.index["G0"], 1)
        assert not model.excitation_possible(0)

    def test_fault_present_in_every_frame(self):
        cc = compile_circuit(two_stage_pipeline())
        model = UnrolledModel(cc, Fault("a", 0), num_frames=2)
        model.assign(1, cc.index["a"], 1)
        assert is_d(model.value(1, cc.index["a"]))

    def test_branch_fault_only_affects_reader(self):
        c = Circuit("branch")
        c.add_input("a")
        c.add_gate("y1", GateType.BUF, ["a"])
        c.add_gate("y2", GateType.BUF, ["a"])
        c.add_output("y1")
        c.add_output("y2")
        cc = compile_circuit(c)
        model = UnrolledModel(cc, Fault("a", 0, gate="y1", pin=0), num_frames=1)
        model.assign(0, cc.index["a"], 1)
        assert is_d(model.value(0, cc.index["y1"]))
        assert model.good(0, cc.index["y2"]) == 1
        assert not is_d(model.value(0, cc.index["y2"]))


class TestQueries:
    def test_detection_at_po(self):
        c = Circuit("direct")
        c.add_input("a")
        c.add_gate("y", GateType.BUF, ["a"])
        c.add_output("y")
        cc = compile_circuit(c)
        model = UnrolledModel(cc, Fault("a", 0), num_frames=1)
        assert model.detected_at() is None
        model.assign(0, cc.index["a"], 1)
        assert model.detected_at() == (0, cc.index["y"])

    def test_d_frontier_and_x_path(self):
        c = Circuit("front")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.AND, ["a", "b"])
        c.add_output("y")
        cc = compile_circuit(c)
        model = UnrolledModel(cc, Fault("a", 0), num_frames=1)
        model.assign(0, cc.index["a"], 1)
        frontier = model.d_frontier()
        assert frontier == [(0, cc.gate_of[cc.index["y"]])]
        assert model.x_path_exists(frontier)
        # blocking side input kills the frontier
        undo = model.assign(0, cc.index["b"], 0)
        assert model.d_frontier() == []
        model.unassign(undo)
        model.assign(0, cc.index["b"], 1)
        assert model.detected_at() is not None

    def test_window_edge_detection(self):
        cc = compile_circuit(two_stage_pipeline())
        model = UnrolledModel(cc, Fault("a", 0), num_frames=1)
        model.assign(0, cc.index["a"], 1)
        # D sits at f1's D input (net a) — the window is the only obstacle
        assert model.d_reaches_window_edge()

    def test_required_state_extraction(self):
        cc = compile_circuit(s27())
        model = UnrolledModel(cc, None, num_frames=1)
        model.assign(0, cc.index["G5"], 1)
        model.assign(0, cc.index["G7"], 0)
        assert model.required_state() == {"G5": 1, "G7": 0}

    def test_extract_vectors(self):
        cc = compile_circuit(s27())
        model = UnrolledModel(cc, None, num_frames=2)
        model.assign(0, cc.index["G0"], 1)
        model.assign(1, cc.index["G3"], 0)
        vectors = model.extract_vectors(1)
        assert vectors[0][0] == 1 and vectors[1][3] == 0
        assert vectors[0][1] == X
