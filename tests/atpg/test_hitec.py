"""Tests for the sequential test generator (HITEC-style engine)."""

import pytest

from repro.atpg.hitec import SequentialTestGenerator
from repro.atpg.hitec import TestGenStatus as GenStatus
from repro.atpg.justify import JustifyResult, JustifyStatus, justify_state
from repro.atpg.podem import Limits
from repro.circuits import (
    REDUNDANT_FAULT,
    redundant_and,
    s27,
    two_stage_pipeline,
    untestable_stem,
)
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import X
from repro.simulation.fault_sim import FaultSimulator


def det_justifier(cc, depth=12, backtracks=20_000):
    def justify(required):
        return justify_state(cc, required, depth, Limits(backtracks))

    return justify


def refusing_justifier(required):
    """A justifier that always gives up (forces propagation backtracks)."""
    return JustifyResult(JustifyStatus.BOUNDED)


class TestGenerate:
    def test_all_s27_faults_detected(self):
        circuit = s27()
        cc = compile_circuit(circuit)
        gen = SequentialTestGenerator(cc, max_frames=8)
        sim = FaultSimulator(cc)
        for fault in collapse_faults(circuit):
            res = gen.generate(fault, det_justifier(cc), Limits(20_000))
            assert res.status is GenStatus.DETECTED, str(fault)
            vectors = [[0 if v == X else v for v in vec] for vec in res.sequence]
            check = sim.run(vectors, [fault])
            assert fault in check.detected, f"{fault}: sequence does not detect"

    def test_untestable_faults_proven(self):
        cc = compile_circuit(redundant_and())
        gen = SequentialTestGenerator(cc, max_frames=2)
        res = gen.generate(REDUNDANT_FAULT, det_justifier(cc), Limits(20_000))
        assert res.status is GenStatus.UNTESTABLE

        circuit, fault = untestable_stem()
        cc = compile_circuit(circuit)
        gen = SequentialTestGenerator(cc, max_frames=2)
        res = gen.generate(fault, det_justifier(cc), Limits(20_000))
        assert res.status is GenStatus.UNTESTABLE

    def test_zero_budget_aborts(self):
        circuit = s27()
        cc = compile_circuit(circuit)
        gen = SequentialTestGenerator(cc, max_frames=4)
        res = gen.generate(
            Fault("G10", 0), refusing_justifier, Limits(max_backtracks=0)
        )
        assert res.status in (GenStatus.ABORTED, GenStatus.DETECTED)

    def test_justification_prefix_recorded(self):
        circuit = two_stage_pipeline()
        cc = compile_circuit(circuit)
        gen = SequentialTestGenerator(cc, max_frames=4)
        # a s-a-0 on the pipeline input: no state requirement at all
        res = gen.generate(Fault("a", 0), det_justifier(cc), Limits(20_000))
        assert res.status is GenStatus.DETECTED
        assert res.justification_frames == 0

    def test_flow_counters_populated(self):
        circuit = s27()
        cc = compile_circuit(circuit)
        gen = SequentialTestGenerator(cc, max_frames=8)
        total = dict(excite=0, sols=0, jcalls=0)
        for fault in collapse_faults(circuit):
            res = gen.generate(fault, det_justifier(cc), Limits(20_000))
            total["excite"] += res.counters.excite_attempts
            total["sols"] += res.counters.propagation_solutions
            total["jcalls"] += res.counters.justify_calls
        assert total["excite"] > 0
        assert total["sols"] > 0
        assert total["jcalls"] > 0  # some faults needed state justification

    def test_refusing_justifier_never_detects_state_dependent_faults(self):
        circuit = s27()
        cc = compile_circuit(circuit)
        gen = SequentialTestGenerator(cc, max_frames=8)
        outcomes = set()
        for fault in collapse_faults(circuit):
            res = gen.generate(fault, refusing_justifier, Limits(5_000))
            outcomes.add(res.status)
            if res.status is GenStatus.DETECTED:
                # must have been detectable without any state requirement
                assert res.justification_frames == 0
        assert GenStatus.ABORTED in outcomes  # some faults need state
