"""Tests for environment-imposed input constraints (Section VI)."""

import random

import pytest

from repro.atpg.constraints import UNCONSTRAINED, InputConstraints
from repro.atpg.justify import justify_state
from repro.atpg.podem import Limits, PodemEngine, SearchStatus
from repro.circuits import s27
from repro.faults.model import Fault
from repro.ga.justification import GAJustifyParams, GAStateJustifier
from repro.hybrid import HybridTestGenerator, gahitec_schedule
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import X


class TestConstraintObject:
    def test_validation(self):
        with pytest.raises(ValueError):
            InputConstraints(fixed={"a": 2})
        with pytest.raises(ValueError):
            InputConstraints(fixed={"a": 1}, hold={"a"})
        InputConstraints(fixed={"G0": 1}).validate(s27())
        with pytest.raises(ValueError):
            InputConstraints(fixed={"nope": 1}).validate(s27())

    def test_trivial(self):
        assert UNCONSTRAINED.is_trivial
        assert not InputConstraints(fixed={"G0": 0}).is_trivial

    def test_satisfied_by_fixed(self):
        c = s27()
        cons = InputConstraints(fixed={"G0": 1})
        assert cons.satisfied_by(c, [[1, 0, 0, 0], [1, 1, 1, 1]])
        assert not cons.satisfied_by(c, [[1, 0, 0, 0], [0, 1, 1, 1]])

    def test_satisfied_by_hold(self):
        c = s27()
        cons = InputConstraints(hold={"G1"})
        assert cons.satisfied_by(c, [[0, 1, 0, 0], [1, 1, 1, 1]])
        assert not cons.satisfied_by(c, [[0, 1, 0, 0], [1, 0, 1, 1]])

    def test_apply_to_vectors(self):
        c = s27()
        cons = InputConstraints(fixed={"G0": 1}, hold={"G1"})
        vectors = [[0, 0, 0, 0], [0, 1, 1, 1]]
        cons.apply_to_vectors(c, vectors)
        assert [v[0] for v in vectors] == [1, 1]
        assert len({v[1] for v in vectors}) == 1
        assert cons.satisfied_by(c, vectors)


class TestPodemWithConstraints:
    def test_fixed_pin_preassigned(self):
        cc = compile_circuit(s27())
        cons = InputConstraints(fixed={"G0": 0})
        engine = PodemEngine(cc, fault=Fault("G5", 0), num_frames=4,
                             constraints=cons)
        sol = engine.run(Limits(10_000))
        if sol is not None:
            for vec in sol.vectors:
                assert vec[0] in (0, X)

    def test_fixed_pin_can_make_faults_unexcitable(self):
        cc = compile_circuit(s27())
        # G0 fixed to 1: the fault G0 s-a-1 can never be excited
        cons = InputConstraints(fixed={"G0": 1})
        engine = PodemEngine(cc, fault=Fault("G0", 1), num_frames=3,
                             constraints=cons)
        assert engine.run(Limits(10_000)) is None
        assert engine.status is SearchStatus.EXHAUSTED

    def test_hold_pin_mirrors_across_frames(self):
        cc = compile_circuit(s27())
        cons = InputConstraints(hold={"G0"})
        engine = PodemEngine(cc, fault=Fault("G8", 0), num_frames=4,
                             constraints=cons)
        sol = engine.run(Limits(10_000))
        assert sol is not None
        values = {vec[0] for vec in sol.vectors if vec[0] != X}
        assert len(values) <= 1

    def test_deterministic_justification_respects_fixed(self):
        cc = compile_circuit(s27())
        cons = InputConstraints(fixed={"G2": 1})
        # G7 <- G13 = NOR(G2, G12): with G2 forced to 1, G7=1 is impossible
        res = justify_state(cc, {"G7": 1}, max_depth=6,
                            limits=Limits(20_000), constraints=cons)
        assert not res.success


class TestGAWithConstraints:
    def test_decoded_sequences_satisfy_constraints(self):
        circuit = s27()
        cons = InputConstraints(fixed={"G3": 0}, hold={"G1"})
        j = GAStateJustifier(circuit, rng=random.Random(0), constraints=cons)
        for genome in (0, 0xFFFF_FFFF, 0x1234_5678):
            vectors = j.decode(genome, seq_len=4, n_vectors=4)
            assert cons.satisfied_by(circuit, vectors)

    def test_justification_result_satisfies_constraints(self):
        circuit = s27()
        cons = InputConstraints(hold={"G0"})
        j = GAStateJustifier(circuit, rng=random.Random(1), constraints=cons)
        res = j.justify({"G5": 0}, GAJustifyParams(seq_len=6,
                                                   population_size=32))
        if res.success and res.vectors:
            assert cons.satisfied_by(circuit, res.vectors)


class TestDriverWithConstraints:
    def test_all_emitted_vectors_satisfy_constraints(self):
        cons = InputConstraints(fixed={"G3": 0})
        driver = HybridTestGenerator(s27(), seed=1, constraints=cons)
        result = driver.run(
            gahitec_schedule(x=12, time_scale=None, backtrack_base=100)
        )
        assert result.test_set, "constrained run should still find tests"
        assert cons.satisfied_by(s27(), result.test_set)

    def test_constraints_reduce_coverage(self):
        """Tying a pin makes some faults untestable in-system."""
        free = HybridTestGenerator(s27(), seed=1).run(
            gahitec_schedule(x=12, time_scale=None, backtrack_base=100)
        )
        cons = InputConstraints(fixed={"G0": 0})
        tied = HybridTestGenerator(s27(), seed=1, constraints=cons).run(
            gahitec_schedule(x=12, time_scale=None, backtrack_base=100)
        )
        assert len(tied.detected) < len(free.detected)
        # e.g. G0 s-a-0 itself is now undetectable (never excited)
        assert all(f.net != "G0" or f.stuck != 0 for f in tied.detected)

    def test_unknown_constraint_pin_rejected(self):
        with pytest.raises(ValueError):
            HybridTestGenerator(
                s27(), constraints=InputConstraints(fixed={"zz": 1})
            )
