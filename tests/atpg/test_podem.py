"""Tests for the PODEM search engine (DETECT and JUSTIFY modes)."""

import pytest

from repro.atpg.podem import Limits, PodemEngine, SearchStatus
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuits import (
    REDUNDANT_FAULT,
    gray_fsm,
    redundant_and,
    s27,
    untestable_stem,
)
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault
from repro.simulation.compiled import compile_circuit
from repro.simulation.encoding import X, pack_const, unpack
from repro.simulation.fault_sim import FaultSimulator


def limits(backtracks=10_000):
    return Limits(max_backtracks=backtracks)


class TestDetectMode:
    def test_combinational_detection(self):
        c = Circuit("comb")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.AND, ["a", "b"])
        c.add_output("y")
        cc = compile_circuit(c)
        engine = PodemEngine(cc, fault=Fault("a", 0), num_frames=1)
        sol = engine.run(limits())
        assert sol is not None
        assert sol.vectors[0] == [1, 1]  # a=1 to excite, b=1 to propagate

    def test_every_s27_solution_really_detects(self):
        """Cross-validate PODEM solutions against the fault simulator."""
        circuit = s27()
        cc = compile_circuit(circuit)
        sim = FaultSimulator(cc)
        for fault in collapse_faults(circuit):
            engine = PodemEngine(cc, fault=fault, num_frames=6)
            sol = engine.run(limits())
            if sol is None:
                continue  # may need state justification; engine level only
            if sol.required_state:
                continue  # not a self-contained test
            vectors = [[0 if v == X else v for v in vec] for vec in sol.vectors]
            result = sim.run(vectors, [fault])
            assert fault in result.detected, f"{fault}: bogus solution"

    def test_redundant_fault_exhausts(self):
        cc = compile_circuit(redundant_and())
        engine = PodemEngine(cc, fault=REDUNDANT_FAULT, num_frames=1)
        assert engine.run(limits()) is None
        assert engine.status is SearchStatus.EXHAUSTED

    def test_constant_zero_fault_exhausts(self):
        circuit, fault = untestable_stem()
        cc = compile_circuit(circuit)
        engine = PodemEngine(cc, fault=fault, num_frames=2)
        assert engine.run(limits()) is None
        assert engine.status is SearchStatus.EXHAUSTED

    def test_backtrack_limit_reported(self):
        cc = compile_circuit(redundant_and())
        engine = PodemEngine(cc, fault=REDUNDANT_FAULT, num_frames=1)
        assert engine.run(Limits(max_backtracks=0)) is None
        assert engine.status is SearchStatus.LIMIT

    def test_multiple_solutions_are_distinct_assignments(self):
        c = Circuit("two_ways")
        c.add_input("a")
        c.add_input("b")
        c.add_input("c")
        c.add_gate("or1", GateType.OR, ["b", "c"])
        c.add_gate("y", GateType.AND, ["a", "or1"])
        c.add_output("y")
        cc = compile_circuit(c)
        engine = PodemEngine(cc, fault=Fault("a", 0), num_frames=1)
        sols = []
        for sol in engine.solutions(limits()):
            sols.append(tuple(sol.vectors[0]))
            if len(sols) >= 2:
                break
        assert len(sols) == 2 and sols[0] != sols[1]


class TestJustifyMode:
    def test_single_frame_justify(self):
        cc = compile_circuit(s27())
        # G7's D input is G13 = NOR(G2, G12); G7=1 needs G2=0 and G12=0
        engine = PodemEngine(cc, targets={"G7": 1})
        sol = engine.run(limits())
        assert sol is not None
        vec = sol.vectors[0]
        assert vec[2] == 0  # G2 must be 0

    def test_justify_impossible_value(self):
        c = Circuit("never")
        c.add_input("a")
        c.add_gate("zero", GateType.CONST0, [])
        c.add_gate("q", GateType.DFF, ["zero"])
        c.add_gate("y", GateType.BUF, ["q"])
        c.add_gate("k", GateType.AND, ["a", "y"])
        c.add_output("k")
        cc = compile_circuit(c)
        engine = PodemEngine(cc, targets={"q": 1})
        assert engine.run(limits()) is None
        assert engine.status is SearchStatus.EXHAUSTED

    def test_justify_carries_state_requirement(self):
        cc = compile_circuit(gray_fsm())
        # s1' = s0 (via BUF s0d): requiring s1=1 needs previous s0=1
        engine = PodemEngine(cc, targets={"s1": 1})
        sol = engine.run(limits())
        assert sol is not None
        assert sol.required_state == {"s0": 1}

    def test_mode_arguments_validated(self):
        cc = compile_circuit(s27())
        with pytest.raises(ValueError):
            PodemEngine(cc)  # neither fault nor targets
        with pytest.raises(ValueError):
            PodemEngine(cc, fault=Fault("G0", 0), targets={"G5": 1})
        with pytest.raises(ValueError):
            PodemEngine(cc, targets={"G14": 1})  # not a flip-flop
