"""Work-item execution: determinism, timeouts, and drift detection."""

from dataclasses import replace

import pytest

from repro.campaign import CampaignError, CampaignSpec, build_items, run_item


def spec(**overrides):
    base = dict(circuits=("s27",), seed=3, shard_size=8, passes=2)
    base.update(overrides)
    return CampaignSpec(**base)


_TIME_KEYS = {"cpu_time_s", "wall_time_s", "time_s"}


def _strip_times(value):
    """Remove wall/CPU duration fields (the only nondeterministic ones)."""
    if isinstance(value, dict):
        return {
            k: _strip_times(v)
            for k, v in value.items()
            if k not in _TIME_KEYS
        }
    if isinstance(value, list):
        return [_strip_times(v) for v in value]
    return value


class TestRunItem:
    def test_produces_detections_and_report(self):
        s = spec()
        outcome = run_item(s, build_items(s)[0])
        assert outcome.total_faults == 8
        assert outcome.detected
        assert outcome.vectors and outcome.blocks[0] == 0
        assert outcome.report["schema"] == "repro-run-report/v1"
        assert not outcome.timed_out

    def test_same_item_same_payload(self):
        s = spec()
        item = build_items(s)[0]
        a = _strip_times(run_item(s, item).to_dict())
        b = _strip_times(run_item(s, item).to_dict())
        assert a == b

    def test_seed_changes_payload_fields(self):
        s = spec()
        item = build_items(s)[0]
        other = replace(item, seed=item.seed + 1)
        assert run_item(s, item).seed != run_item(s, other).seed

    def test_fault_hash_drift_rejected(self):
        s = spec()
        item = replace(build_items(s)[0], fault_hash="0" * 12)
        with pytest.raises(CampaignError, match="drifted"):
            run_item(s, item)

    def test_timeout_with_fake_clock(self):
        s = spec(item_timeout_s=5.0)
        item = build_items(s)[0]
        ticks = [0.0]

        def clock():
            ticks[0] += 3.0  # two reads cross the 5 s deadline
            return ticks[0]

        outcome = run_item(s, item, clock=clock)
        assert outcome.timed_out

    def test_synthetic_drill_mode_skips_atpg(self):
        s = spec(synthetic_item_seconds=0.0)
        outcome = run_item(s, build_items(s)[0])
        assert outcome.vectors == [] and outcome.detected == []
        assert outcome.total_faults == 8
