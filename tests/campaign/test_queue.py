"""Work-item catalogue construction and queue state machine."""

import pytest

from repro.campaign import (
    CampaignError,
    CampaignSpec,
    ItemState,
    WorkQueue,
    build_items,
    seed_for_attempt,
    shard_faults,
)


def spec(**overrides):
    base = dict(circuits=("s27",), seed=5, shard_size=8)
    base.update(overrides)
    return CampaignSpec(**base)


class TestBuildItems:
    def test_shards_cover_fault_list(self):
        s = spec()
        items = build_items(s)
        faults = shard_faults(s, "s27")
        assert sum(i.count for i in items) == len(faults)
        assert [i.start for i in items] == list(
            range(0, len(faults), s.shard_size)
        )

    def test_item_ids_are_stable(self):
        assert [i.item_id for i in build_items(spec())][:2] == [
            "s27/000", "s27/001",
        ]

    def test_deterministic_catalogue(self):
        a, b = build_items(spec()), build_items(spec())
        assert a == b

    def test_seed_changes_with_spec_seed(self):
        a = build_items(spec(seed=1))[0]
        b = build_items(spec(seed=2))[0]
        assert a.seed != b.seed

    def test_fault_limit_caps_items(self):
        items = build_items(spec(fault_limit=3))
        assert len(items) == 1 and items[0].count == 3

    def test_empty_campaign_rejected(self):
        with pytest.raises(CampaignError):
            build_items(spec(fault_limit=0))


class TestSeedForAttempt:
    def test_first_attempt_keeps_item_seed(self):
        item = build_items(spec())[0]
        assert seed_for_attempt(item, 1) == item.seed

    def test_retries_perturb_deterministically(self):
        item = build_items(spec())[0]
        second = seed_for_attempt(item, 2)
        assert second != item.seed
        assert second == seed_for_attempt(item, 2)
        assert second != seed_for_attempt(item, 3)


class TestWorkQueue:
    def make(self, max_attempts=2):
        items = build_items(spec())
        return items, WorkQueue(items, max_attempts=max_attempts)

    def test_take_claims_each_item_once(self):
        items, queue = self.make()
        taken = []
        while True:
            item = queue.take()
            if item is None:
                break
            taken.append(item.item_id)
        assert taken == [i.item_id for i in items]

    def test_done_lifecycle(self):
        items, queue = self.make()
        item = queue.take()
        queue.mark_done(item.item_id)
        assert queue.state_of(item.item_id) is ItemState.DONE
        assert not queue.finished()  # other items still pending

    def test_failure_retries_with_new_seed(self):
        items, queue = self.make(max_attempts=2)
        first = queue.take()
        assert queue.mark_failed(first.item_id, "boom") is True
        # drain the other pending items so the retry surfaces
        seen = {}
        while True:
            item = queue.take()
            if item is None:
                break
            seen[item.item_id] = item
        retry = seen[first.item_id]
        assert retry.seed != first.seed
        assert queue.attempt_of(first.item_id) == 2

    def test_failure_exhausts_attempts(self):
        items, queue = self.make(max_attempts=1)
        item = queue.take()
        assert queue.mark_failed(item.item_id, "boom") is False
        assert queue.state_of(item.item_id) is ItemState.FAILED
        assert item.item_id in queue.failed_items()

    def test_interruption_preserves_seed_and_attempt(self):
        items, queue = self.make(max_attempts=1)
        first = queue.take()
        queue.mark_interrupted(first.item_id)
        assert queue.attempt_of(first.item_id) == 0
        seen = {}
        while True:
            item = queue.take()
            if item is None:
                break
            seen[item.item_id] = item
        assert seen[first.item_id].seed == first.seed

    def test_restore_done_removes_from_pending(self):
        items, queue = self.make()
        queue.restore_done(items[0].item_id)
        taken = []
        while True:
            item = queue.take()
            if item is None:
                break
            taken.append(item.item_id)
        assert items[0].item_id not in taken

    def test_restore_attempts_keeps_exhausted_failed(self):
        items, queue = self.make(max_attempts=2)
        queue.restore_attempts(items[0].item_id, 2)
        assert queue.state_of(items[0].item_id) is ItemState.FAILED
        queue.restore_attempts(items[1].item_id, 1)
        assert queue.state_of(items[1].item_id) is ItemState.PENDING
        assert queue.attempt_of(items[1].item_id) == 1

    def test_restore_unknown_item_rejected(self):
        _, queue = self.make()
        with pytest.raises(CampaignError):
            queue.restore_done("nope/000")
        with pytest.raises(CampaignError):
            queue.restore_attempts("nope/000", 1)

    def test_counts_and_finished(self):
        items, queue = self.make()
        assert queue.counts()["pending"] == len(items)
        while True:
            item = queue.take()
            if item is None:
                break
            queue.mark_done(item.item_id)
        assert queue.finished()
        assert queue.counts()["done"] == len(items)
