"""CampaignRunner.status on live, killed, and damaged journals."""

import json

import pytest

from repro.campaign import (
    JOURNAL_SCHEMA,
    CampaignError,
    CampaignRunner,
    CampaignSpec,
    Journal,
)


def spec(**overrides):
    base = dict(circuits=("s27",), name="status", seed=5, shard_size=8,
                passes=2)
    base.update(overrides)
    return CampaignSpec(**base)


def start_journal(path, s, items=("s27/000", "s27/001")):
    """A journal as a freshly started campaign would leave it."""
    journal = Journal(str(path))
    journal.append({
        "type": "campaign", "schema": JOURNAL_SCHEMA, "name": s.name,
        "spec": s.to_dict(), "spec_hash": s.spec_hash(),
        "items": len(items),
    })
    journal.append({
        "type": "items",
        "catalogue": [
            {"item": item, "faults": 8, "fault_hash": "abc"}
            for item in items
        ],
    })
    return journal


class TestCompletedCampaign:
    def test_status_after_run(self, tmp_path):
        journal = str(tmp_path / "done.jsonl")
        CampaignRunner(spec(), journal).run()
        status = CampaignRunner.status(journal)
        assert status["done"] == status["items"] > 0
        assert status["failed"] == 0
        assert status["in_flight"] == []
        assert status["merged"]["fault_coverage"] == 1.0
        assert status["spec_hash"] == spec().spec_hash()


class TestInFlightCampaign:
    def test_started_items_show_in_flight(self, tmp_path):
        s = spec()
        journal = start_journal(tmp_path / "live.jsonl", s)
        journal.append({"type": "item_started", "item": "s27/000",
                        "attempt": 1, "pid": 123, "worker": 0})
        journal.close()
        status = CampaignRunner.status(str(tmp_path / "live.jsonl"))
        assert status["in_flight"] == ["s27/000"]
        assert status["done"] == 0
        assert status["merged"] is None

    def test_done_item_leaves_in_flight(self, tmp_path):
        s = spec()
        journal = start_journal(tmp_path / "live.jsonl", s)
        journal.append({"type": "item_started", "item": "s27/000",
                        "attempt": 1, "pid": 1, "worker": 0})
        journal.append({"type": "item_done", "item": "s27/000",
                        "attempt": 1, "payload": {"x": 1}})
        journal.close()
        status = CampaignRunner.status(str(tmp_path / "live.jsonl"))
        assert status["in_flight"] == []
        assert status["done"] == 1

    def test_open_leases_do_not_count_as_in_flight(self, tmp_path):
        # a lease grants items to a worker; until the worker *starts* one
        # it is pending, not in flight — a killed pool must not report
        # leased-but-never-started items as running
        s = spec()
        journal = start_journal(tmp_path / "pool.jsonl", s)
        journal.append({"type": "lease", "worker": 0,
                        "items": ["s27/000", "s27/001"]})
        journal.append({"type": "item_started", "item": "s27/000",
                        "attempt": 1, "pid": 9, "worker": 0})
        journal.close()
        status = CampaignRunner.status(str(tmp_path / "pool.jsonl"))
        assert status["in_flight"] == ["s27/000"]

    def test_interrupted_item_leaves_in_flight(self, tmp_path):
        s = spec()
        journal = start_journal(tmp_path / "int.jsonl", s)
        journal.append({"type": "item_started", "item": "s27/000",
                        "attempt": 1, "pid": 9, "worker": 0})
        journal.append({"type": "item_interrupted", "item": "s27/000",
                        "attempt": 1, "worker": 0})
        journal.close()
        status = CampaignRunner.status(str(tmp_path / "int.jsonl"))
        assert status["in_flight"] == []


class TestKilledWriter:
    def test_torn_tail_mid_write_is_tolerated(self, tmp_path):
        s = spec()
        path = tmp_path / "torn.jsonl"
        journal = start_journal(path, s)
        journal.append({"type": "item_started", "item": "s27/000",
                        "attempt": 1, "pid": 1, "worker": 0})
        journal.close()
        with open(path, "a") as handle:  # SIGKILL mid-append
            handle.write('{"type": "item_done", "item": "s27/0')
        status = CampaignRunner.status(str(path))
        assert status["in_flight"] == ["s27/000"]
        assert status["done"] == 0

    def test_status_failed_counts(self, tmp_path):
        s = spec()
        journal = start_journal(tmp_path / "f.jsonl", s)
        for attempt in (1, 2, 3):
            journal.append({"type": "item_failed", "item": "s27/001",
                            "attempt": attempt, "error": "boom"})
        journal.close()
        status = CampaignRunner.status(str(tmp_path / "f.jsonl"))
        assert status["failed"] == 1


class TestDamagedJournals:
    def test_missing_journal_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            CampaignRunner.status(str(tmp_path / "absent.jsonl"))

    def test_headerless_journal_raises(self, tmp_path):
        path = tmp_path / "headerless.jsonl"
        path.write_text(json.dumps({"type": "item_started",
                                    "item": "s27/000"}) + "\n")
        with pytest.raises(CampaignError, match="no campaign header"):
            CampaignRunner.status(str(path))

    def test_corrupt_line_raises(self, tmp_path):
        s = spec()
        path = tmp_path / "corrupt.jsonl"
        journal = start_journal(path, s)
        journal.close()
        with open(path, "a") as handle:
            handle.write("garbage but newline-terminated\n")
        with pytest.raises(CampaignError, match="corrupt"):
            CampaignRunner.status(str(path))

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text(json.dumps({
            "type": "campaign", "schema": "someone-elses/v9",
            "spec": {"circuits": ["s27"]},
        }) + "\n")
        with pytest.raises(CampaignError, match="schema"):
            CampaignRunner.status(str(path))
