"""Tests for the campaign orchestration subsystem."""
