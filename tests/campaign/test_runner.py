"""CampaignRunner: inline and pooled execution, journaling, resume."""

import json

import pytest

from repro.campaign import (
    CampaignError,
    CampaignRunner,
    CampaignSpec,
    read_events,
)


def spec(**overrides):
    base = dict(circuits=("s27",), name="r", seed=3, shard_size=8, passes=2)
    base.update(overrides)
    return CampaignSpec(**base)


def run_campaign(tmp_path, s=None, name="j.jsonl", **runner_kwargs):
    journal = str(tmp_path / name)
    runner = CampaignRunner(s or spec(), journal, **runner_kwargs)
    return runner.run(), journal


class TestInlineRun:
    def test_completes_with_full_coverage(self, tmp_path):
        result, _ = run_campaign(tmp_path)
        assert result.items_failed == 0
        assert result.fault_coverage == 1.0
        assert result.circuits["s27"].vectors

    def test_journal_records_every_transition(self, tmp_path):
        result, journal = run_campaign(tmp_path)
        kinds = [e["type"] for e in read_events(journal)]
        assert kinds[0] == "campaign" and kinds[1] == "items"
        assert kinds[-1] == "merged"
        assert kinds.count("item_done") == result.items_done
        assert kinds.count("item_started") >= result.items_done

    def test_refuses_to_clobber_existing_journal(self, tmp_path):
        _, journal = run_campaign(tmp_path)
        with pytest.raises(CampaignError, match="resume"):
            CampaignRunner(spec(), journal).run()

    def test_report_carries_worker_count(self, tmp_path):
        result, _ = run_campaign(tmp_path)
        assert result.report.jobs == 1
        assert result.report.wall_time_s == result.wall_time_s


class TestTimeoutPolicy:
    def test_timeouts_retry_then_keep_final_partial(self, tmp_path):
        s = spec(item_timeout_s=1e-9, max_attempts=2, fault_limit=8)
        result, journal = run_campaign(tmp_path, s)
        events = read_events(journal)
        failed = [e for e in events if e["type"] == "item_failed"]
        done = [e for e in events if e["type"] == "item_done"]
        assert failed and all(e["error"] == "timeout" for e in failed)
        assert len(done) == 1  # final attempt keeps the partial result
        assert done[0]["attempt"] == 2
        assert result.items_failed == 0


class TestPooledRun:
    def test_matches_inline_results(self, tmp_path):
        inline, _ = run_campaign(tmp_path, name="inline.jsonl", workers=1)
        pooled, _ = run_campaign(tmp_path, name="pool.jsonl", workers=2)
        assert pooled.circuits["s27"].vectors == inline.circuits["s27"].vectors
        assert (pooled.circuits["s27"].detected
                == inline.circuits["s27"].detected)

    def test_hung_workers_are_killed_and_items_failed(self, tmp_path):
        s = spec(synthetic_item_seconds=2.0, fault_limit=2, shard_size=1,
                 max_attempts=1)
        journal = str(tmp_path / "hang.jsonl")
        runner = CampaignRunner(s, journal, workers=2,
                                heartbeat_interval=30.0, hang_timeout_s=0.2)
        result = runner.run()
        assert result.items_failed == 2
        errors = {e["error"] for e in read_events(journal)
                  if e["type"] == "item_failed"}
        assert errors == {"hung"}


class TestResume:
    def test_resume_equals_uninterrupted_run(self, tmp_path):
        reference, ref_journal = run_campaign(tmp_path, name="ref.jsonl")
        events = read_events(ref_journal)
        # keep the header, the catalogue, and only the first finished item
        prefix = [e for e in events if e["type"] in ("campaign", "items")]
        prefix += [e for e in events if e["type"] == "item_done"][:1]
        partial = tmp_path / "partial.jsonl"
        with open(partial, "w") as handle:
            for event in prefix:
                handle.write(json.dumps(event) + "\n")
            handle.write('{"type": "item_started", "item": "s27/001"')
        resumed = CampaignRunner.resume(str(partial))
        assert (resumed.circuits["s27"].vectors
                == reference.circuits["s27"].vectors)
        assert (resumed.circuits["s27"].detected
                == reference.circuits["s27"].detected)
        assert resumed.fault_coverage == reference.fault_coverage

    def test_resume_reruns_only_missing_items(self, tmp_path):
        _, ref_journal = run_campaign(tmp_path, name="ref.jsonl")
        events = read_events(ref_journal)
        prefix = [e for e in events if e["type"] in ("campaign", "items")]
        done = [e for e in events if e["type"] == "item_done"]
        prefix += done[:2]
        partial = tmp_path / "partial.jsonl"
        with open(partial, "w") as handle:
            for event in prefix:
                handle.write(json.dumps(event) + "\n")
        CampaignRunner.resume(str(partial))
        reruns = [e for e in read_events(str(partial))
                  if e["type"] == "item_started"]
        rerun_items = {e["item"] for e in reruns}
        assert rerun_items == {"s27/002", "s27/003"}

    def test_resume_rejects_spec_mismatch(self, tmp_path):
        _, journal = run_campaign(tmp_path)
        other = spec(seed=99)
        with pytest.raises(CampaignError, match="belongs to"):
            CampaignRunner(other, journal).run(resume=True)

    def test_resume_rejects_fault_drift(self, tmp_path):
        _, journal = run_campaign(tmp_path)
        events = read_events(journal)
        tampered = tmp_path / "tampered.jsonl"
        with open(tampered, "w") as handle:
            for event in events:
                if event["type"] == "items":
                    event["catalogue"][0]["fault_hash"] = "0" * 12
                if event["type"] in ("campaign", "items"):
                    handle.write(json.dumps(event) + "\n")
        with pytest.raises(CampaignError, match="drifted"):
            CampaignRunner.resume(str(tampered))


class TestStatus:
    def test_status_of_finished_campaign(self, tmp_path):
        result, journal = run_campaign(tmp_path)
        status = CampaignRunner.status(journal)
        assert status["done"] == result.items_done
        assert status["failed"] == 0
        assert status["merged"]["fault_coverage"] == 1.0

    def test_status_of_partial_journal(self, tmp_path):
        _, journal = run_campaign(tmp_path)
        events = read_events(journal)
        partial = tmp_path / "partial.jsonl"
        with open(partial, "w") as handle:
            for event in events:
                if event["type"] in ("campaign", "items"):
                    handle.write(json.dumps(event) + "\n")
            handle.write(json.dumps(
                {"type": "item_started", "item": "s27/000", "attempt": 1}
            ) + "\n")
        status = CampaignRunner.status(str(partial))
        assert status["done"] == 0
        assert status["in_flight"] == ["s27/000"]
        assert status["merged"] is None
