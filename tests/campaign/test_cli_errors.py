"""Campaign/report CLI error paths: one-line stderr, exit 2, no traceback."""

import json

from repro.campaign import CampaignSpec
from repro.cli import main


def run(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def assert_clean_failure(code, err):
    assert code == 2
    assert err.startswith("error: ")
    assert len(err.strip().splitlines()) == 1
    assert "Traceback" not in err


class TestStatusErrors:
    def test_missing_journal(self, tmp_path, capsys):
        code, _, err = run(capsys, [
            "campaign", "status", "--journal", str(tmp_path / "no.jsonl"),
        ])
        assert_clean_failure(code, err)
        assert "no.jsonl" in err

    def test_corrupt_journal(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("definitely not json\n")
        code, _, err = run(capsys, [
            "campaign", "status", "--journal", str(path),
        ])
        assert_clean_failure(code, err)
        assert "corrupt" in err

    def test_headerless_journal(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        path.write_text(json.dumps({"type": "item_done"}) + "\n")
        code, _, err = run(capsys, [
            "campaign", "status", "--journal", str(path),
        ])
        assert_clean_failure(code, err)


class TestResumeErrors:
    def test_missing_journal(self, tmp_path, capsys):
        code, _, err = run(capsys, [
            "campaign", "resume", "--journal", str(tmp_path / "no.jsonl"),
        ])
        assert_clean_failure(code, err)

    def test_spec_hash_mismatch(self, tmp_path, capsys):
        journal = str(tmp_path / "j.jsonl")
        assert main([
            "campaign", "run", "s27", "--name", "orig", "--seed", "1",
            "--shard-size", "8", "--passes", "2", "--journal", journal,
        ]) == 0
        capsys.readouterr()
        other = CampaignSpec(circuits=("s27",), name="other", seed=99)
        spec_file = tmp_path / "other.json"
        other.save(str(spec_file))
        code, _, err = run(capsys, [
            "campaign", "resume", "--journal", journal,
            "--spec", str(spec_file),
        ])
        assert_clean_failure(code, err)
        assert "does not match" in err

    def test_matching_spec_resumes_fine(self, tmp_path, capsys):
        spec = CampaignSpec(circuits=("s27",), name="match", seed=2,
                            shard_size=8, passes=2)
        spec_file = tmp_path / "spec.json"
        spec.save(str(spec_file))
        journal = str(tmp_path / "j.jsonl")
        assert main([
            "campaign", "run", "--spec", str(spec_file),
            "--journal", journal,
        ]) == 0
        capsys.readouterr()
        code, out, err = run(capsys, [
            "campaign", "resume", "--journal", journal,
            "--spec", str(spec_file),
        ])
        assert code == 0 and err == ""
        assert "coverage" in out


class TestRunErrors:
    def test_existing_journal_refused_without_traceback(
        self, tmp_path, capsys
    ):
        journal = str(tmp_path / "j.jsonl")
        argv = [
            "campaign", "run", "s27", "--name", "c", "--seed", "1",
            "--shard-size", "8", "--passes", "2", "--journal", journal,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        code, _, err = run(capsys, argv)
        assert_clean_failure(code, err)
        assert "resume" in err

    def test_unwritable_journal_path(self, tmp_path, capsys):
        code, _, err = run(capsys, [
            "campaign", "run", "s27",
            "--journal", str(tmp_path / "no-dir" / "j.jsonl"),
        ])
        assert_clean_failure(code, err)


class TestReportErrors:
    def test_missing_report(self, tmp_path, capsys):
        code, _, err = run(capsys, ["report", str(tmp_path / "no.json")])
        assert_clean_failure(code, err)

    def test_invalid_json_report(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        code, _, err = run(capsys, ["report", str(path)])
        assert_clean_failure(code, err)

    def test_wrong_schema_report(self, tmp_path, capsys):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"schema": "other/v1"}))
        code, _, err = run(capsys, ["report", str(path)])
        assert_clean_failure(code, err)
